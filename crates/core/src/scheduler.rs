//! Interference-aware query scheduling (§7.3).
//!
//! "The enemy of sustained performance in this environment is
//! interference." The scheduler holds the fabric-wide picture of which
//! links active queries stream over. At admission it walks a query's
//! ranked plan variants (produced by the optimizer, §7.3's "several data
//! path alternatives") and picks the best variant whose links are below the
//! saturation threshold; if every variant contends, it admits the best one
//! *rate-limited* to its fair share — the "rate-limiting DMA engines"
//! mechanism.
//!
//! [`flow_pipeline`]/[`flow_pipelines`] map a physical plan onto the flow
//! simulator's stage model by compiling it to the [`PipelineGraph`] IR and
//! deriving specs from the graph — which is how experiment E13 replays
//! scheduling decisions (including join-shaped plans) in simulated time.

use std::collections::HashMap;
use std::sync::Arc;

use df_fabric::flow::PipelineSpec;
use df_fabric::{DeviceId, LinkId, Topology};
use df_sim::Bandwidth;

use crate::error::{EngineError, Result};
use crate::optimizer::{Profiles, RankedPlan};
use crate::physical::{PhysNode, PhysicalPlan};
use crate::pipeline::{PipelineGraph, DEFAULT_QUEUE_CAPACITY};

/// Handle for releasing an admission's reservations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReservationHandle(u64);

/// The scheduler's decision for one query.
#[derive(Debug)]
pub struct Admission {
    /// Index into the variant list that was chosen.
    pub variant_index: usize,
    /// DMA rate limit to apply, if the fabric is contended.
    pub rate_limit: Option<Bandwidth>,
    /// Release this when the query finishes.
    pub handle: ReservationHandle,
}

/// Tracks link reservations of active queries.
pub struct Scheduler {
    topology: Arc<Topology>,
    /// Where query results are consumed (the session CPU).
    consumer: DeviceId,
    /// Streams currently reserved per link.
    streams: HashMap<LinkId, u32>,
    active: HashMap<ReservationHandle, Vec<LinkId>>,
    next_handle: u64,
    /// How many concurrent full-rate streams a link tolerates before the
    /// scheduler avoids or rate-limits it.
    pub streams_per_link: u32,
}

impl Scheduler {
    /// A scheduler over a topology; `consumer` is where results land
    /// (plans whose root is remote still stream over the final hop).
    pub fn new(topology: Arc<Topology>, consumer: DeviceId) -> Scheduler {
        Scheduler {
            topology,
            consumer,
            streams: HashMap::new(),
            active: HashMap::new(),
            next_handle: 0,
            streams_per_link: 1,
        }
    }

    /// Links a plan's cross-device edges stream over.
    pub fn links_of(&self, plan: &PhysicalPlan) -> Vec<LinkId> {
        let mut out = Vec::new();
        collect_links(&plan.root, Some(self.consumer), &self.topology, &mut out);
        out.sort();
        out.dedup();
        out
    }

    /// Current stream count on a link.
    pub fn link_streams(&self, link: LinkId) -> u32 {
        self.streams.get(&link).copied().unwrap_or(0)
    }

    /// Admit a query given its ranked variants. Chooses the first
    /// (best-cost) variant whose links are uncontended; if none exists,
    /// admits the overall best with a rate limit of its bottleneck link's
    /// fair share.
    pub fn admit(&mut self, variants: &[RankedPlan]) -> Result<Admission> {
        if variants.is_empty() {
            return Err(EngineError::Placement("no variants to admit".into()));
        }
        let choice = variants.iter().position(|v| {
            self.links_of(&v.plan)
                .iter()
                .all(|l| self.link_streams(*l) < self.streams_per_link)
        });
        let (variant_index, rate_limit) = match choice {
            Some(i) => (i, None),
            None => {
                // Everything contends: take the best variant, rate-limited
                // to a fair share of its most contended link.
                let links = self.links_of(&variants[0].plan);
                let worst = links.iter().max_by_key(|l| self.link_streams(**l)).copied();
                let limit = worst.map(|l| {
                    let sharers = self.link_streams(l) + 1;
                    self.topology
                        .link(l)
                        .tech
                        .bandwidth()
                        .scaled(1.0 / f64::from(sharers))
                });
                (0, limit)
            }
        };
        let links = self.links_of(&variants[variant_index].plan);
        for l in &links {
            *self.streams.entry(*l).or_insert(0) += 1;
        }
        let handle = ReservationHandle(self.next_handle);
        self.next_handle += 1;
        self.active.insert(handle, links);
        Ok(Admission {
            variant_index,
            rate_limit,
            handle,
        })
    }

    /// Release a finished query's reservations.
    pub fn release(&mut self, handle: ReservationHandle) {
        if let Some(links) = self.active.remove(&handle) {
            for l in links {
                if let Some(count) = self.streams.get_mut(&l) {
                    *count = count.saturating_sub(1);
                }
            }
        }
    }

    /// Number of active admissions.
    pub fn active_queries(&self) -> usize {
        self.active.len()
    }
}

fn collect_links(
    node: &PhysNode,
    parent: Option<DeviceId>,
    topology: &Topology,
    out: &mut Vec<LinkId>,
) {
    let device = node.device();
    if let (Some(d), Some(p)) = (device, parent) {
        if d != p {
            if let Some(route) = topology.route(d, p) {
                out.extend(route.links);
            }
        }
    }
    let children: Vec<&PhysNode> = match node {
        PhysNode::StorageScan { .. } | PhysNode::Values { .. } | PhysNode::StreamScan { .. } => {
            vec![]
        }
        PhysNode::Filter { input, .. }
        | PhysNode::Project { input, .. }
        | PhysNode::Aggregate { input, .. }
        | PhysNode::WindowAggregate { input, .. }
        | PhysNode::Sort { input, .. }
        | PhysNode::TopK { input, .. }
        | PhysNode::Limit { input, .. } => vec![input],
        PhysNode::HashJoin { build, probe, .. } => vec![build, probe],
        PhysNode::Exchange { inputs, .. } => inputs.iter().collect(),
    };
    for c in children {
        collect_links(c, device.or(parent), topology, out);
    }
}

/// Map a physical plan onto flow-simulator pipelines by compiling it to
/// the [`PipelineGraph`] IR, verifying the graph, and deriving one spec
/// per spine: the first spec is the probe/output spine, followed by one
/// `{name}.buildN` spec per hash-join build side. Stage selectivities
/// come from the cost model's estimates carried on the graph; the source
/// size is the bytes each spine's scan touches. `default_device` hosts
/// unplaced stages. A graph that fails verification returns
/// [`EngineError::Verify`] instead of silently producing specs.
pub fn flow_pipelines(
    plan: &PhysicalPlan,
    profiles: &Profiles,
    default_device: DeviceId,
    name: impl Into<String>,
) -> Result<Vec<PipelineSpec>> {
    let graph = PipelineGraph::compile(plan, Some(profiles), None, DEFAULT_QUEUE_CAPACITY);
    graph.to_flow_specs(default_device, &name.into())
}

/// Per-tenant credit accounting for the multi-query scheduler.
///
/// The single-query [`Scheduler`] reserves *links*; when several queries are
/// in flight at once the unit of arbitration becomes the *credit*: the right
/// to push one batch through a pipeline (§7.1 applied across queries). Every
/// credit a tenant receives is recorded here at grant time and again when it
/// comes back — consumed at a batch boundary, yielded on preemption, or
/// released when the query finishes or aborts. The two counters are the
/// conservation invariant the serving layer's fault-injection suite checks:
/// once no query is running, `granted == returned` for every tenant.
#[derive(Debug, Default, Clone)]
pub struct CreditLedger {
    accounts: std::collections::BTreeMap<String, CreditAccount>,
}

/// One tenant's row in the [`CreditLedger`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CreditAccount {
    /// Credits ever granted to the tenant.
    pub granted: u64,
    /// Credits returned (consumed, yielded, or released).
    pub returned: u64,
}

impl CreditAccount {
    /// Credits currently held by the tenant's in-flight queries.
    pub fn outstanding(&self) -> u64 {
        self.granted - self.returned
    }
}

impl CreditLedger {
    /// An empty ledger.
    pub fn new() -> CreditLedger {
        CreditLedger::default()
    }

    /// Record `n` credits granted to `tenant`.
    pub fn grant(&mut self, tenant: &str, n: u64) {
        self.accounts.entry(tenant.to_string()).or_default().granted += n;
    }

    /// Record `n` credits coming back from `tenant` (consumed at a batch
    /// boundary, yielded on preemption, or released at query end).
    ///
    /// # Panics
    /// Returning more credits than were granted is a scheduler bug and
    /// panics — conservation must never go negative.
    pub fn repay(&mut self, tenant: &str, n: u64) {
        let account = self.accounts.entry(tenant.to_string()).or_default();
        account.returned += n;
        assert!(
            account.returned <= account.granted,
            "credit ledger for tenant `{tenant}`: returned {} > granted {}",
            account.returned,
            account.granted
        );
    }

    /// Credits ever granted to `tenant` (0 for unknown tenants).
    pub fn granted(&self, tenant: &str) -> u64 {
        self.accounts.get(tenant).map_or(0, |a| a.granted)
    }

    /// Credits currently held by `tenant`'s queries.
    pub fn outstanding(&self, tenant: &str) -> u64 {
        self.accounts.get(tenant).map_or(0, |a| a.outstanding())
    }

    /// Credits held across all tenants.
    pub fn total_outstanding(&self) -> u64 {
        self.accounts.values().map(|a| a.outstanding()).sum()
    }

    /// Iterate `(tenant, account)` rows in tenant-name order.
    pub fn accounts(&self) -> impl Iterator<Item = (&str, &CreditAccount)> {
        self.accounts.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Check conservation: with no query in flight every tenant must have
    /// gotten back exactly what it was granted. Returns the offending
    /// tenants (name, outstanding) otherwise.
    pub fn check_balanced(&self) -> std::result::Result<(), Vec<(String, u64)>> {
        let leaks: Vec<(String, u64)> = self
            .accounts
            .iter()
            .filter(|(_, a)| a.outstanding() != 0)
            .map(|(t, a)| (t.clone(), a.outstanding()))
            .collect();
        if leaks.is_empty() {
            Ok(())
        } else {
            Err(leaks)
        }
    }
}

/// The primary (probe/output) flow pipeline of a plan. For join plans the
/// build-side spines are dropped — use [`flow_pipelines`] to replay the
/// whole graph.
pub fn flow_pipeline(
    plan: &PhysicalPlan,
    profiles: &Profiles,
    default_device: DeviceId,
    name: impl Into<String>,
) -> Result<PipelineSpec> {
    flow_pipelines(plan, profiles, default_device, name)?
        .into_iter()
        .next()
        .ok_or_else(|| EngineError::Internal("verified graph yielded no root spine".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::logical::LogicalPlan;
    use crate::optimizer::{Optimizer, Profiles, TableProfile};
    use df_data::{DataType, Field, Schema};
    use df_fabric::flow::FlowSim;
    use df_fabric::topology::DisaggregatedConfig;

    fn topo() -> Arc<Topology> {
        Arc::new(Topology::disaggregated(&DisaggregatedConfig::default()))
    }

    fn table_schema() -> df_data::SchemaRef {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("v", DataType::Float64),
        ])
        .into_ref()
    }

    fn profiles() -> Profiles {
        let mut p = Profiles::new();
        p.insert(
            "t".to_string(),
            TableProfile {
                rows: 1_000_000,
                stored_bytes: 16_000_000,
                zones: vec![
                    Some(df_storage::zonemap::ZoneMap::of(
                        &df_data::Column::from_i64(vec![0, 999_999]),
                    )),
                    None,
                ],
                schema: table_schema().as_ref().clone(),
            },
        );
        p
    }

    fn query() -> LogicalPlan {
        LogicalPlan::scan("t", table_schema())
            .filter(col("id").lt(lit(100_000)))
            .unwrap()
    }

    #[test]
    fn admission_prefers_best_then_avoids_contention() {
        let t = topo();
        let optimizer = Optimizer::new(t.clone()).unwrap();
        let variants = optimizer.variants(&query(), &profiles()).unwrap();
        let mut scheduler = Scheduler::new(t, optimizer.site().cpu);
        let first = scheduler.admit(&variants).unwrap();
        assert_eq!(first.variant_index, 0, "uncontended: best variant");
        assert!(first.rate_limit.is_none());
        // Second identical query: the storage path is now contended; the
        // scheduler either picks another variant or rate-limits.
        let second = scheduler.admit(&variants).unwrap();
        assert!(
            second.variant_index != 0 || second.rate_limit.is_some(),
            "second admission must react to contention"
        );
        assert_eq!(scheduler.active_queries(), 2);
        scheduler.release(first.handle);
        scheduler.release(second.handle);
        assert_eq!(scheduler.active_queries(), 0);
        // Released: the next admission is unconstrained again.
        let third = scheduler.admit(&variants).unwrap();
        assert_eq!(third.variant_index, 0);
        assert!(third.rate_limit.is_none());
    }

    #[test]
    fn release_is_idempotent() {
        let t = topo();
        let optimizer = Optimizer::new(t.clone()).unwrap();
        let variants = optimizer.variants(&query(), &profiles()).unwrap();
        let mut scheduler = Scheduler::new(t, optimizer.site().cpu);
        let a = scheduler.admit(&variants).unwrap();
        scheduler.release(a.handle);
        scheduler.release(a.handle);
        assert_eq!(scheduler.active_queries(), 0);
    }

    #[test]
    fn flow_mapping_runs_in_simulator() {
        let t = topo();
        let optimizer = Optimizer::new(t.clone()).unwrap();
        let best = optimizer.best(&query(), &profiles()).unwrap();
        let spec = flow_pipeline(&best.plan, &profiles(), optimizer.site().cpu, "q1").unwrap();
        assert!(spec.source_bytes > 1_000_000);
        let mut sim = FlowSim::new(Topology::disaggregated(&DisaggregatedConfig::default()));
        sim.add_pipeline(spec);
        let report = sim.run();
        assert!(report.pipelines[0].duration().nanos() > 0);
        // The pushdown variant delivers only the filtered fraction.
        let delivered = report.pipelines[0].bytes_delivered as f64;
        assert!(delivered < 0.2 * report.pipelines[0].stages[0].bytes_in as f64);
    }

    #[test]
    fn join_plans_admitted_by_flow_mapping() {
        // Regression: before the pipeline-graph IR, flow mapping rejected
        // any plan with a hash join. Now the join's build side becomes its
        // own spine and the whole graph replays in the flow simulator.
        let t = topo();
        let build_schema = Schema::new(vec![Field::new("bk", DataType::Int64)]).into_ref();
        let logical = LogicalPlan::scan("s", build_schema.clone())
            .join(LogicalPlan::scan("t", table_schema()), vec![("bk", "id")])
            .unwrap();
        let mut profiles = profiles();
        profiles.insert(
            "s".to_string(),
            TableProfile {
                rows: 10_000,
                stored_bytes: 80_000,
                zones: vec![None],
                schema: build_schema.as_ref().clone(),
            },
        );
        let optimizer = Optimizer::new(t).unwrap();
        let best = optimizer.best(&logical, &profiles).unwrap();
        let specs = flow_pipelines(&best.plan, &profiles, optimizer.site().cpu, "j").unwrap();
        assert_eq!(specs.len(), 2, "probe spine + one build spine");
        assert_eq!(specs[1].name, "j.build0");
        let mut sim = FlowSim::new(Topology::disaggregated(&DisaggregatedConfig::default()));
        for spec in specs {
            sim.add_pipeline(spec);
        }
        let report = sim.run();
        assert_eq!(report.pipelines.len(), 2);
        for p in &report.pipelines {
            assert!(p.duration().nanos() > 0, "{} must make progress", p.name);
            assert!(p.stages[0].bytes_in > 0, "{} must ingest bytes", p.name);
        }
        // The probe spine delivers join output; the build spine terminates
        // at the hash table (its JoinBuild stage absorbs every byte).
        assert!(report.pipelines[0].bytes_delivered > 0);
        assert_eq!(report.pipelines[1].bytes_delivered, 0);
    }

    #[test]
    fn flow_specs_match_legacy_chain_walk_on_linear_plans() {
        // The graph-derived derivation must be field-identical to the
        // retired hand-rolled chain walk for every linear plan variant.
        use crate::optimizer::cost::{estimate_node, node_input_bytes, op_class_of, reduction_of};
        use df_fabric::flow::StageSpec;

        fn legacy(
            plan: &PhysicalPlan,
            profiles: &Profiles,
            default_device: DeviceId,
        ) -> PipelineSpec {
            let mut chain: Vec<&PhysNode> = Vec::new();
            let mut node = &plan.root;
            loop {
                chain.push(node);
                node = match node {
                    PhysNode::StorageScan { .. }
                    | PhysNode::Values { .. }
                    | PhysNode::StreamScan { .. } => break,
                    PhysNode::Filter { input, .. }
                    | PhysNode::Project { input, .. }
                    | PhysNode::Aggregate { input, .. }
                    | PhysNode::WindowAggregate { input, .. }
                    | PhysNode::Sort { input, .. }
                    | PhysNode::TopK { input, .. }
                    | PhysNode::Limit { input, .. } => input,
                    PhysNode::HashJoin { .. } | PhysNode::Exchange { .. } => {
                        unreachable!("linear plans only")
                    }
                };
            }
            chain.reverse();
            let leaf = chain[0];
            let source_bytes = node_input_bytes(leaf, profiles).max(1.0) as u64;
            let mut stages = Vec::with_capacity(chain.len());
            for n in &chain {
                let device = n.device().unwrap_or(default_device);
                let op = op_class_of(n);
                let selectivity = if std::ptr::eq(*n, leaf) {
                    let (_, out_bytes) = estimate_node(n, profiles);
                    (out_bytes / source_bytes as f64).clamp(0.0, 1.0)
                } else {
                    reduction_of(n, profiles)
                };
                stages.push(StageSpec::new(device, op, selectivity));
            }
            PipelineSpec::new("q", stages, source_bytes)
        }

        let t = topo();
        let optimizer = Optimizer::new(t).unwrap();
        let profiles = profiles();
        let variants = optimizer.variants(&query(), &profiles).unwrap();
        assert!(!variants.is_empty());
        for (i, v) in variants.iter().enumerate() {
            let expect = legacy(&v.plan, &profiles, optimizer.site().cpu);
            let got = flow_pipeline(&v.plan, &profiles, optimizer.site().cpu, "q").unwrap();
            assert_eq!(got.source_bytes, expect.source_bytes, "variant {i}");
            assert_eq!(got.stages.len(), expect.stages.len(), "variant {i}");
            for (g, e) in got.stages.iter().zip(&expect.stages) {
                assert_eq!(g.device, e.device, "variant {i}");
                assert_eq!(g.op, e.op, "variant {i}");
                assert!(
                    (g.selectivity - e.selectivity).abs() < 1e-12,
                    "variant {i}: {} vs {}",
                    g.selectivity,
                    e.selectivity
                );
                assert_eq!(g.queue_capacity, e.queue_capacity, "variant {i}");
            }
        }
    }

    #[test]
    fn links_of_covers_scan_to_cpu_route() {
        let t = topo();
        let optimizer = Optimizer::new(t.clone()).unwrap();
        let variants = optimizer.variants(&query(), &profiles()).unwrap();
        let scheduler = Scheduler::new(t.clone(), optimizer.site().cpu);
        let links = scheduler.links_of(&variants[0].plan);
        // storage.ssd -> cpu crosses 4 links in this topology.
        assert!(links.len() >= 4, "links: {links:?}");
    }

    #[test]
    fn credit_ledger_balances_and_reports_leaks() {
        let mut ledger = CreditLedger::new();
        ledger.grant("a", 5);
        ledger.grant("b", 2);
        ledger.repay("a", 3);
        assert_eq!(ledger.outstanding("a"), 2);
        assert_eq!(ledger.granted("a"), 5);
        assert_eq!(ledger.total_outstanding(), 4);
        let leaks = ledger.check_balanced().unwrap_err();
        assert_eq!(leaks, vec![("a".to_string(), 2), ("b".to_string(), 2)]);
        ledger.repay("a", 2);
        ledger.repay("b", 2);
        assert!(ledger.check_balanced().is_ok());
        assert_eq!(ledger.outstanding("missing"), 0);
    }

    #[test]
    #[should_panic(expected = "returned")]
    fn credit_ledger_rejects_over_repay() {
        let mut ledger = CreditLedger::new();
        ledger.grant("a", 1);
        ledger.repay("a", 2);
    }
}
