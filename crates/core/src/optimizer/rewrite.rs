//! Logical rewrites: filter merging and projection pruning.
//!
//! These run before placement so every physical variant starts from the
//! same minimal logical plan: adjacent filters merged into one conjunction
//! (so pushdown can split it per-conjunct), and scans annotated with the
//! exact column set the query needs (so storage-side projection has
//! something to push).

use crate::error::Result;
use crate::expr::Expr;
use crate::logical::LogicalPlan;

/// Apply all rewrites.
pub fn rewrite(plan: LogicalPlan) -> Result<LogicalPlan> {
    let plan = merge_filters(plan);
    prune(plan, None)
}

/// Collapse `Filter(Filter(x, a), b)` into `Filter(x, b AND a)`.
pub fn merge_filters(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = merge_filters(*input);
            if let LogicalPlan::Filter {
                input: inner,
                predicate: inner_pred,
            } = input
            {
                LogicalPlan::Filter {
                    input: inner,
                    predicate: predicate.and(inner_pred),
                }
            } else {
                LogicalPlan::Filter {
                    input: Box::new(input),
                    predicate,
                }
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(merge_filters(*input)),
            exprs,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(merge_filters(*input)),
            group_by,
            aggs,
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(merge_filters(*left)),
            right: Box::new(merge_filters(*right)),
            on,
            join_type,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(merge_filters(*input)),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(merge_filters(*input)),
            n,
        },
        leaf => leaf,
    }
}

/// Projection pruning: thread the set of required columns down the tree and
/// narrow every `Scan` to exactly what is needed. `required = None` means
/// "everything" (the root).
fn prune(plan: LogicalPlan, required: Option<Vec<String>>) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Scan { table, schema, .. } => {
            match required {
                None => LogicalPlan::Scan {
                    table,
                    projection: None,
                    schema,
                },
                Some(mut names) => {
                    // A query that needs no columns (COUNT(*)) still needs
                    // one to carry row counts: pick the narrowest.
                    if names.is_empty() {
                        if let Some(f) = schema
                            .fields()
                            .iter()
                            .min_by_key(|f| f.dtype.fixed_width().unwrap_or(16))
                        {
                            names.push(f.name.clone());
                        }
                    }
                    names.sort_by_key(|n| schema.index_of(n).unwrap_or(usize::MAX));
                    names.dedup();
                    // Keep only names that exist (validation happened at
                    // plan build; unknown names here would be a bug).
                    let idx: Vec<usize> = names
                        .iter()
                        .filter_map(|n| schema.index_of(n).ok())
                        .collect();
                    if idx.len() == schema.len() {
                        LogicalPlan::Scan {
                            table,
                            projection: None,
                            schema,
                        }
                    } else {
                        let projected = schema.project(&idx).into_ref();
                        LogicalPlan::Scan {
                            table,
                            projection: Some(
                                idx.iter().map(|&i| schema.field(i).name.clone()).collect(),
                            ),
                            schema: projected,
                        }
                    }
                }
            }
        }
        LogicalPlan::Values { batches, schema } => LogicalPlan::Values { batches, schema },
        LogicalPlan::Filter { input, predicate } => {
            let child_required = required.map(|mut r| {
                r.extend(predicate.columns());
                r
            });
            LogicalPlan::Filter {
                input: Box::new(prune(*input, child_required)?),
                predicate,
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            // Drop output expressions nobody upstream needs.
            let kept: Vec<(Expr, String)> = match &required {
                None => exprs,
                Some(r) => {
                    let kept: Vec<_> = exprs
                        .into_iter()
                        .filter(|(_, name)| r.contains(name))
                        .collect();
                    if kept.is_empty() {
                        // Keep at least one column for a valid batch shape.
                        return Err(crate::error::EngineError::Internal(
                            "projection pruning removed every column".into(),
                        ));
                    }
                    kept
                }
            };
            let child_required: Vec<String> = kept.iter().flat_map(|(e, _)| e.columns()).collect();
            let input = prune(*input, Some(child_required))?;
            if kept.len() == schema.len() {
                LogicalPlan::Project {
                    input: Box::new(input),
                    exprs: kept,
                    schema,
                }
            } else {
                input.project_exprs(kept)?
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            schema,
        } => {
            let mut child_required = group_by.clone();
            child_required.extend(aggs.iter().filter_map(|a| a.column.clone()));
            LogicalPlan::Aggregate {
                input: Box::new(prune(*input, Some(child_required))?),
                group_by,
                aggs,
                schema,
            }
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
            schema,
        } => {
            let left_schema = left.schema();
            let right_schema = right.schema();
            let nleft = left_schema.len();
            // Map required output positions back to the input sides.
            let (mut left_req, mut right_req) = match &required {
                None => (
                    left_schema
                        .fields()
                        .iter()
                        .map(|f| f.name.clone())
                        .collect::<Vec<_>>(),
                    right_schema
                        .fields()
                        .iter()
                        .map(|f| f.name.clone())
                        .collect::<Vec<_>>(),
                ),
                Some(r) => {
                    let mut lr = Vec::new();
                    let mut rr = Vec::new();
                    for name in r {
                        if let Ok(pos) = schema.index_of(name) {
                            if pos < nleft {
                                lr.push(left_schema.field(pos).name.clone());
                            } else {
                                rr.push(right_schema.field(pos - nleft).name.clone());
                            }
                        }
                    }
                    (lr, rr)
                }
            };
            for (l, r) in &on {
                left_req.push(l.clone());
                right_req.push(r.clone());
            }
            let left = prune(*left, Some(left_req))?;
            let right = prune(*right, Some(right_req))?;
            // Rebuild so the joined schema reflects pruned inputs.
            let on_refs: Vec<(&str, &str)> =
                on.iter().map(|(l, r)| (l.as_str(), r.as_str())).collect();
            left.join_with(right, on_refs, join_type)?
        }
        LogicalPlan::Sort { input, keys } => {
            let child_required = required.map(|mut r| {
                r.extend(keys.iter().map(|(k, _)| k.clone()));
                r
            });
            LogicalPlan::Sort {
                input: Box::new(prune(*input, child_required)?),
                keys,
            }
        }
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(prune(*input, required)?),
            n,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::logical::{AggCall, AggFn};
    use df_data::{DataType, Field, Schema};

    fn wide_schema() -> df_data::SchemaRef {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("c", DataType::Utf8),
            Field::new("d", DataType::Float64),
        ])
        .into_ref()
    }

    #[test]
    fn filters_merge_into_conjunction() {
        let plan = LogicalPlan::scan("t", wide_schema())
            .filter(col("a").gt(lit(1)))
            .unwrap()
            .filter(col("b").lt(lit(9)))
            .unwrap();
        let merged = merge_filters(plan);
        match merged {
            LogicalPlan::Filter { predicate, input } => {
                assert!(matches!(*input, LogicalPlan::Scan { .. }));
                assert!(matches!(predicate, Expr::And(v) if v.len() == 2));
            }
            other => panic!("expected filter, got {other}"),
        }
    }

    #[test]
    fn scan_pruned_to_needed_columns() {
        let plan = LogicalPlan::scan("t", wide_schema())
            .filter(col("b").gt(lit(0)))
            .unwrap()
            .aggregate(vec!["c".into()], vec![AggCall::new(AggFn::Sum, "a", "s")])
            .unwrap();
        let rewritten = rewrite(plan).unwrap();
        fn find_scan(p: &LogicalPlan) -> &LogicalPlan {
            match p {
                LogicalPlan::Scan { .. } => p,
                LogicalPlan::Filter { input, .. }
                | LogicalPlan::Aggregate { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Limit { input, .. }
                | LogicalPlan::Project { input, .. } => find_scan(input),
                _ => panic!("no scan"),
            }
        }
        match find_scan(&rewritten) {
            LogicalPlan::Scan {
                projection: Some(cols),
                schema,
                ..
            } => {
                // Needs a (agg), b (filter), c (group) — not d.
                assert_eq!(cols, &vec!["a".to_string(), "b".into(), "c".into()]);
                assert_eq!(schema.len(), 3);
            }
            other => panic!("scan not pruned: {other}"),
        }
        // The rewritten plan still validates and keeps its output schema.
        assert_eq!(rewritten.schema().len(), 2);
    }

    #[test]
    fn root_scan_keeps_all_columns() {
        let plan = LogicalPlan::scan("t", wide_schema());
        let rewritten = rewrite(plan).unwrap();
        assert!(matches!(
            rewritten,
            LogicalPlan::Scan {
                projection: None,
                ..
            }
        ));
    }

    #[test]
    fn unused_projection_exprs_dropped() {
        let plan = LogicalPlan::scan("t", wide_schema())
            .project_exprs(vec![
                (col("a"), "a".into()),
                (col("b").mul(lit(2)), "bb".into()),
                (col("d"), "d".into()),
            ])
            .unwrap()
            .aggregate(vec![], vec![AggCall::new(AggFn::Sum, "a", "s")])
            .unwrap();
        let rewritten = rewrite(plan).unwrap();
        fn find_project(p: &LogicalPlan) -> Option<&LogicalPlan> {
            match p {
                LogicalPlan::Project { .. } => Some(p),
                LogicalPlan::Aggregate { input, .. } => find_project(input),
                _ => None,
            }
        }
        match find_project(&rewritten) {
            Some(LogicalPlan::Project { exprs, .. }) => {
                assert_eq!(exprs.len(), 1);
                assert_eq!(exprs[0].1, "a");
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn join_prunes_both_sides() {
        let left = LogicalPlan::scan("l", wide_schema());
        let right_schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("x", DataType::Utf8),
            Field::new("y", DataType::Float64),
        ])
        .into_ref();
        let right = LogicalPlan::scan("r", right_schema);
        let plan = left
            .join(right, vec![("a", "k")])
            .unwrap()
            .aggregate(vec!["x".into()], vec![AggCall::new(AggFn::Sum, "b", "s")])
            .unwrap();
        let rewritten = rewrite(plan).unwrap();
        fn scans(p: &LogicalPlan, out: &mut Vec<Vec<String>>) {
            match p {
                LogicalPlan::Scan {
                    projection, schema, ..
                } => {
                    out.push(projection.clone().unwrap_or_else(|| {
                        schema.fields().iter().map(|f| f.name.clone()).collect()
                    }))
                }
                LogicalPlan::Filter { input, .. }
                | LogicalPlan::Aggregate { input, .. }
                | LogicalPlan::Project { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Limit { input, .. } => scans(input, out),
                LogicalPlan::Join { left, right, .. } => {
                    scans(left, out);
                    scans(right, out);
                }
                LogicalPlan::Values { .. } => {}
            }
        }
        let mut seen = Vec::new();
        scans(&rewritten, &mut seen);
        assert_eq!(seen[0], vec!["a".to_string(), "b".into()]); // left: key + agg input
        assert_eq!(seen[1], vec!["k".to_string(), "x".into()]); // right: key + group
    }
}
