//! The movement-aware cost model (§1: "optimizers will need to consider
//! data movement cost in a disaggregated setting as a first-class concern
//! when ranking query plans").
//!
//! A physical plan is costed as a streaming pipeline: every operator is a
//! stage with a service time (input bytes / device rate) and every
//! placement boundary is a transfer (bytes / bottleneck route bandwidth).
//! Throughput of a pipeline is set by its slowest stage, so the *time*
//! estimate is `max(stage times) + sum(route latencies)`; `moved_bytes`
//! is kept separately because the paper treats it as its own objective
//! (it is also what the datacenter bills for).

use df_fabric::{DeviceId, OpClass, Topology};
use df_sim::SimDuration;
use df_storage::predicate::StoragePredicate;
use df_storage::zonemap::CmpOp;

use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::ops::AggMode;
use crate::optimizer::stats::{avg_row_width, selectivity, Profiles, TableProfile};
use crate::physical::PhysNode;
use crate::pipeline::ExchangeKind;

/// Cost of a plan variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCost {
    /// Estimated completion time (pipeline bottleneck + latencies).
    pub time: SimDuration,
    /// Bytes crossing device boundaries.
    pub moved_bytes: u64,
    /// Sum of compute stage times (resource consumption, not wall time).
    pub compute: SimDuration,
    /// The single slowest stage's time (the bottleneck).
    pub bottleneck: SimDuration,
}

impl PlanCost {
    fn zero() -> PlanCost {
        PlanCost {
            time: SimDuration::ZERO,
            moved_bytes: 0,
            compute: SimDuration::ZERO,
            bottleneck: SimDuration::ZERO,
        }
    }
}

struct CostAcc {
    stage_times: Vec<SimDuration>,
    latency: SimDuration,
    moved_bytes: u64,
    compute: SimDuration,
}

/// Selectivity of a storage predicate (mirrors the expression estimator).
pub fn storage_selectivity(pred: &StoragePredicate, profile: Option<&TableProfile>) -> f64 {
    match pred {
        StoragePredicate::True => 1.0,
        StoragePredicate::And(children) => children
            .iter()
            .map(|c| storage_selectivity(c, profile))
            .product(),
        StoragePredicate::Or(children) => {
            1.0 - children
                .iter()
                .map(|c| 1.0 - storage_selectivity(c, profile))
                .product::<f64>()
        }
        StoragePredicate::Not(inner) => 1.0 - storage_selectivity(inner, profile),
        StoragePredicate::Cmp {
            column,
            op,
            literal,
        } => {
            // Route through the expression estimator for one source of truth.
            let expr = crate::expr::col(column.clone()).cmp(*op, Expr::Lit(literal.clone()));
            selectivity(&expr, profile)
        }
        StoragePredicate::Between { column, low, high } => {
            let expr = Expr::Between {
                expr: Box::new(crate::expr::col(column.clone())),
                low: low.clone(),
                high: high.clone(),
            };
            selectivity(&expr, profile)
        }
        StoragePredicate::Like { column, pattern } => {
            let expr = crate::expr::col(column.clone()).like(pattern.clone());
            selectivity(&expr, profile)
        }
        StoragePredicate::IsNull { column, negated } => {
            let expr = Expr::IsNull {
                expr: Box::new(crate::expr::col(column.clone())),
                negated: *negated,
            };
            selectivity(&expr, profile)
        }
    }
}

/// The table profile a physical subtree scans, if exactly one.
fn scan_profile<'a>(node: &PhysNode, profiles: &'a Profiles) -> Option<&'a TableProfile> {
    match node {
        PhysNode::StorageScan { table, .. } => profiles.get(table),
        PhysNode::Filter { input, .. }
        | PhysNode::Project { input, .. }
        | PhysNode::Aggregate { input, .. }
        | PhysNode::WindowAggregate { input, .. }
        | PhysNode::Sort { input, .. }
        | PhysNode::TopK { input, .. }
        | PhysNode::Limit { input, .. } => scan_profile(input, profiles),
        _ => None,
    }
}

/// Estimated output (rows, bytes) of a physical node.
pub fn estimate_node(node: &PhysNode, profiles: &Profiles) -> (f64, f64) {
    match node {
        PhysNode::StorageScan {
            table,
            request,
            schema,
            ..
        } => {
            let profile = profiles.get(table);
            let rows = profile.map_or(10_000.0, |p| p.rows as f64);
            let sel = storage_selectivity(&request.predicate, profile);
            let mut rows = rows * sel;
            if request.preagg.is_some() {
                rows = rows.sqrt().max(1.0);
            }
            if let Some(limit) = request.limit {
                rows = rows.min(limit as f64);
            }
            (rows, rows * avg_row_width(schema) as f64)
        }
        PhysNode::Values {
            batches, schema, ..
        } => {
            let rows: usize = batches.iter().map(df_data::Batch::rows).sum();
            (rows as f64, rows as f64 * avg_row_width(schema) as f64)
        }
        PhysNode::StreamScan { spec, schema, .. } => {
            // Unbounded sources are priced at the spec's horizon (or the
            // default pricing horizon): sustained-rate demand, not totals.
            let rows = (spec.priced_batches() * spec.rows_per_batch.max(1) as u64) as f64;
            (rows, rows * avg_row_width(schema) as f64)
        }
        PhysNode::Filter {
            input, predicate, ..
        } => {
            let (rows, bytes) = estimate_node(input, profiles);
            let sel = selectivity(predicate, scan_profile(input, profiles));
            (rows * sel, bytes * sel)
        }
        PhysNode::Project { input, schema, .. } => {
            let (rows, _) = estimate_node(input, profiles);
            (rows, rows * avg_row_width(schema) as f64)
        }
        PhysNode::Aggregate {
            input,
            group_by,
            mode,
            final_schema,
            ..
        } => {
            let (in_rows, _) = estimate_node(input, profiles);
            let groups = if group_by.is_empty() {
                1.0
            } else {
                in_rows.sqrt().max(1.0).min(in_rows)
            };
            let rows = match mode {
                // Partial stages may flush several copies of a group.
                AggMode::Partial { .. } => (groups * 1.5).min(in_rows.max(1.0)),
                _ => groups,
            };
            (rows, rows * avg_row_width(final_schema) as f64)
        }
        PhysNode::WindowAggregate {
            input,
            group_by,
            mode,
            final_schema,
            ..
        } => {
            // Same group-cardinality heuristic as Aggregate; the wstart
            // column multiplies groups by the open-window count, which the
            // sqrt heuristic already absorbs at estimate precision.
            let (in_rows, _) = estimate_node(input, profiles);
            let groups = if group_by.is_empty() {
                1.0
            } else {
                in_rows.sqrt().max(1.0).min(in_rows)
            };
            let rows = match mode {
                AggMode::Partial { .. } => (groups * 1.5).min(in_rows.max(1.0)),
                _ => groups,
            };
            (rows, rows * avg_row_width(final_schema) as f64)
        }
        PhysNode::HashJoin {
            build,
            probe,
            schema,
            ..
        } => {
            let (b, _) = estimate_node(build, profiles);
            let (p, _) = estimate_node(probe, profiles);
            let rows = b.max(p);
            (rows, rows * avg_row_width(schema) as f64)
        }
        PhysNode::Sort { input, .. } => estimate_node(input, profiles),
        PhysNode::TopK { input, k, .. } => {
            let (rows, bytes) = estimate_node(input, profiles);
            let capped = rows.min(*k as f64);
            let frac = if rows > 0.0 { capped / rows } else { 1.0 };
            (capped, bytes * frac)
        }
        PhysNode::Limit { input, n } => {
            let (rows, bytes) = estimate_node(input, profiles);
            let capped = rows.min(*n as f64);
            let frac = if rows > 0.0 { capped / rows } else { 1.0 };
            (capped, bytes * frac)
        }
        PhysNode::Exchange {
            kind,
            parts,
            inputs,
            schema,
            ..
        } => {
            // One fragment sees its share of the combined producer
            // output. Fragments that do not carry the producer subtrees
            // (`inputs` empty) fall back to a one-row floor — graph-level
            // pricing in `to_flow_specs` resolves the real share.
            let (in_rows, in_bytes) = inputs.iter().fold((0.0, 0.0), |(r, b), n| {
                let (nr, nb) = estimate_node(n, profiles);
                (r + nr, b + nb)
            });
            let share = match kind {
                ExchangeKind::Hash { .. } => 1.0 / (*parts).max(1) as f64,
                ExchangeKind::Broadcast | ExchangeKind::Gather => 1.0,
            };
            let rows = (in_rows * share).max(1.0);
            let bytes = (in_bytes * share).max(avg_row_width(schema) as f64);
            (rows, bytes)
        }
    }
}

/// The fabric op class a physical node maps to (drives device service
/// rates and placement legality).
pub fn op_class_of(node: &PhysNode) -> OpClass {
    match node {
        PhysNode::StorageScan { request, .. } => {
            let has_like = predicate_has_like(&request.predicate);
            if has_like {
                OpClass::Regex
            } else if request.preagg.is_some() {
                OpClass::AggregatePartial
            } else if !matches!(request.predicate, StoragePredicate::True) {
                OpClass::Filter
            } else {
                OpClass::Scan
            }
        }
        PhysNode::Values { .. } => OpClass::Scan,
        // A stream source is the *ingest point* of a continuous query —
        // the rows arrive at the device (NIC-Rx, storage feed) rather than
        // being read from it, so it prices and places as `Ingest`.
        PhysNode::StreamScan { .. } => OpClass::Ingest,
        PhysNode::Filter { predicate, .. } => {
            if expr_has_like(predicate) {
                OpClass::Regex
            } else {
                OpClass::Filter
            }
        }
        PhysNode::Project { .. } => OpClass::Project,
        PhysNode::Aggregate {
            group_by,
            aggs,
            mode,
            ..
        } => {
            // §4.4: a pure COUNT keeps no group state — it can terminate
            // in-path on stream-only devices (the NIC's count engine).
            if group_by.is_empty()
                && aggs
                    .iter()
                    .all(|a| matches!(a.func, crate::logical::AggFn::Count))
            {
                OpClass::Count
            } else {
                match mode {
                    AggMode::Partial { .. } => OpClass::AggregatePartial,
                    _ => OpClass::AggregateFinal,
                }
            }
        }
        PhysNode::WindowAggregate { mode, .. } => match mode {
            AggMode::Partial { .. } => OpClass::AggregatePartial,
            _ => OpClass::AggregateFinal,
        },
        PhysNode::HashJoin { .. } => OpClass::JoinProbe,
        PhysNode::Sort { .. } | PhysNode::TopK { .. } => OpClass::Sort,
        PhysNode::Limit { .. } => OpClass::Project,
        PhysNode::Exchange { .. } => OpClass::Partition,
    }
}

fn predicate_has_like(p: &StoragePredicate) -> bool {
    match p {
        StoragePredicate::Like { .. } => true,
        StoragePredicate::And(v) | StoragePredicate::Or(v) => v.iter().any(predicate_has_like),
        StoragePredicate::Not(inner) => predicate_has_like(inner),
        _ => false,
    }
}

fn expr_has_like(e: &Expr) -> bool {
    match e {
        Expr::Like { .. } => true,
        Expr::And(v) | Expr::Or(v) => v.iter().any(expr_has_like),
        Expr::Not(inner) => expr_has_like(inner),
        Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
            expr_has_like(left) || expr_has_like(right)
        }
        _ => false,
    }
}

/// Cost a physical plan against a topology. `default_device` stands in for
/// unplaced nodes (the session's CPU).
pub fn cost_plan(
    root: &PhysNode,
    topology: &Topology,
    profiles: &Profiles,
    default_device: DeviceId,
) -> Result<PlanCost> {
    let mut acc = CostAcc {
        stage_times: Vec::new(),
        latency: SimDuration::ZERO,
        moved_bytes: 0,
        compute: SimDuration::ZERO,
    };
    // Results are consumed at the default (CPU) device: the final hop
    // from the root's placement to the consumer counts too.
    walk(
        root,
        topology,
        profiles,
        default_device,
        Some(default_device),
        &mut acc,
    )?;
    if acc.stage_times.is_empty() {
        return Ok(PlanCost::zero());
    }
    let bottleneck = acc
        .stage_times
        .iter()
        .copied()
        .max()
        .unwrap_or(SimDuration::ZERO);
    Ok(PlanCost {
        time: bottleneck + acc.latency,
        moved_bytes: acc.moved_bytes,
        compute: acc.compute,
        bottleneck,
    })
}

fn children_of(node: &PhysNode) -> Vec<&PhysNode> {
    match node {
        PhysNode::StorageScan { .. } | PhysNode::Values { .. } | PhysNode::StreamScan { .. } => {
            vec![]
        }
        PhysNode::Filter { input, .. }
        | PhysNode::Project { input, .. }
        | PhysNode::Aggregate { input, .. }
        | PhysNode::WindowAggregate { input, .. }
        | PhysNode::Sort { input, .. }
        | PhysNode::TopK { input, .. }
        | PhysNode::Limit { input, .. } => vec![input],
        PhysNode::HashJoin { build, probe, .. } => vec![build, probe],
        PhysNode::Exchange { inputs, .. } => inputs.iter().collect(),
    }
}

fn walk(
    node: &PhysNode,
    topology: &Topology,
    profiles: &Profiles,
    default_device: DeviceId,
    parent_device: Option<DeviceId>,
    acc: &mut CostAcc,
) -> Result<()> {
    let device = node.device().unwrap_or(default_device);
    // Input bytes the stage processes = sum of child outputs (scan: stored
    // bytes it touches).
    let input_bytes = node_input_bytes(node, profiles);
    let op = op_class_of(node);
    let profile = &topology.device(device).profile;
    let service = profile
        .service_time(op, input_bytes.max(0.0) as u64)
        .ok_or_else(|| {
            EngineError::Placement(format!(
                "device '{}' cannot run {op}",
                topology.device(device).name
            ))
        })?;
    acc.stage_times.push(service);
    acc.compute += service;

    // Transfer to the parent.
    if let Some(parent) = parent_device {
        if parent != device {
            let (_, out_bytes) = estimate_node(node, profiles);
            let route = topology.route(device, parent).ok_or_else(|| {
                EngineError::Placement(format!(
                    "no route from {} to {}",
                    topology.device(device).name,
                    topology.device(parent).name
                ))
            })?;
            let bytes = out_bytes.max(0.0) as u64;
            if let Some(bw) = topology.route_bandwidth(&route) {
                acc.stage_times.push(bw.time_for_bytes(bytes));
            }
            acc.latency += topology.route_latency(&route);
            acc.moved_bytes += bytes;
        }
    }

    for child in children_of(node) {
        walk(child, topology, profiles, default_device, Some(device), acc)?;
    }
    Ok(())
}

/// Bytes a node consumes: for scans, the projected fraction of stored
/// bytes; otherwise the sum of child output estimates.
pub fn node_input_bytes(node: &PhysNode, profiles: &Profiles) -> f64 {
    match node {
        PhysNode::StorageScan { table, request, .. } => {
            // Bytes scanned: projected fraction of the stored bytes.
            let profile = profiles.get(table);
            let stored = profile.map_or(1 << 20, |p| p.stored_bytes) as f64;
            let frac = match (&request.projection, profile) {
                (Some(cols), Some(p)) if !p.schema.is_empty() => {
                    cols.len() as f64 / p.schema.len() as f64
                }
                _ => 1.0,
            };
            stored * frac
        }
        other => children_of(other)
            .iter()
            .map(|c| estimate_node(c, profiles).1)
            .sum(),
    }
}

/// Selectivity helper exposed for the flow-mapping layer: output bytes /
/// input bytes of one node.
pub fn reduction_of(node: &PhysNode, profiles: &Profiles) -> f64 {
    let (_, out_bytes) = estimate_node(node, profiles);
    let in_bytes: f64 = node_input_bytes(node, profiles);
    if matches!(node, PhysNode::Values { .. }) {
        return 1.0; // in-memory sources have no meaningful input size
    }
    if in_bytes <= 0.0 {
        1.0
    } else {
        (out_bytes / in_bytes).clamp(0.0, 10.0)
    }
}

/// Build a comparison predicate selectivity for tests.
#[doc(hidden)]
pub fn test_cmp_sel(column: &str, op: CmpOp, lit: i64, profile: &TableProfile) -> f64 {
    storage_selectivity(&StoragePredicate::cmp(column, op, lit), Some(profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_data::{Column, DataType, Field, Schema};
    use df_fabric::topology::DisaggregatedConfig;
    use df_storage::smart::ScanRequest;
    use df_storage::zonemap::ZoneMap;

    fn profile(rows: u64) -> TableProfile {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("grp", DataType::Utf8),
            Field::new("v", DataType::Float64),
        ]);
        TableProfile {
            rows,
            stored_bytes: rows * 24,
            zones: vec![
                Some(ZoneMap::of(&Column::from_i64(vec![0, rows as i64 - 1]))),
                None,
                None,
            ],
            schema,
        }
    }

    fn profiles(rows: u64) -> Profiles {
        let mut p = Profiles::new();
        p.insert("t".to_string(), profile(rows));
        p
    }

    fn scan(device: Option<DeviceId>, request: ScanRequest) -> PhysNode {
        PhysNode::StorageScan {
            table: "t".into(),
            schema: profile(1).schema.clone().into_ref(),
            request,
            device,
        }
    }

    #[test]
    fn pushdown_moves_fewer_bytes_than_ship_all() {
        let topo = Topology::disaggregated(&DisaggregatedConfig::default());
        let ssd = topo.expect_device("storage.ssd");
        let cpu = topo.expect_device("compute0.cpu");
        let profiles = profiles(1_000_000);

        // Ship-all: scan at storage, filter at CPU.
        let ship_all = PhysNode::Filter {
            input: Box::new(scan(Some(ssd), ScanRequest::full())),
            predicate: crate::expr::col("id").lt(crate::expr::lit(10_000)),
            device: Some(cpu),
            use_kernel: false,
        };
        // Pushdown: filter inside the scan request.
        let pushdown = scan(
            Some(ssd),
            ScanRequest::full().filter(StoragePredicate::cmp("id", CmpOp::Lt, 10_000i64)),
        );
        let pushdown = PhysNode::Project {
            exprs: vec![(crate::expr::col("id"), "id".into())],
            schema: Schema::new(vec![Field::new("id", DataType::Int64)]).into_ref(),
            input: Box::new(pushdown),
            device: Some(cpu),
        };

        let cost_ship = cost_plan(&ship_all, &topo, &profiles, cpu).unwrap();
        let cost_push = cost_plan(&pushdown, &topo, &profiles, cpu).unwrap();
        assert!(
            cost_push.moved_bytes * 10 < cost_ship.moved_bytes,
            "push {} !<< ship {}",
            cost_push.moved_bytes,
            cost_ship.moved_bytes
        );
        assert!(cost_push.time < cost_ship.time);
    }

    #[test]
    fn unsupported_placement_is_an_error() {
        let topo = Topology::disaggregated(&DisaggregatedConfig {
            smart_storage: false,
            ..DisaggregatedConfig::default()
        });
        let ssd = topo.expect_device("storage.ssd");
        let cpu = topo.expect_device("compute0.cpu");
        // Plain storage cannot run a filter.
        let plan = scan(
            Some(ssd),
            ScanRequest::full().filter(StoragePredicate::cmp("id", CmpOp::Lt, 1i64)),
        );
        assert!(matches!(
            cost_plan(&plan, &topo, &profiles(1000), cpu),
            Err(EngineError::Placement(_))
        ));
    }

    #[test]
    fn estimates_respond_to_selectivity() {
        let profiles = profiles(1_000_000);
        let node = scan(
            None,
            ScanRequest::full().filter(StoragePredicate::cmp("id", CmpOp::Lt, 100_000i64)),
        );
        let (rows, _) = estimate_node(&node, &profiles);
        assert!((rows - 100_000.0).abs() / 100_000.0 < 0.05, "rows={rows}");
    }

    #[test]
    fn preagg_scan_shrinks_estimate() {
        let profiles = profiles(1_000_000);
        let plain = scan(None, ScanRequest::full());
        let agg = scan(
            None,
            ScanRequest::full().pre_aggregate(df_storage::smart::PreAggSpec {
                group_by: vec!["grp".into()],
                aggs: vec![(df_storage::smart::AggFunc::Count, "id".into())],
                max_groups: 1024,
            }),
        );
        let (plain_rows, _) = estimate_node(&plain, &profiles);
        let (agg_rows, _) = estimate_node(&agg, &profiles);
        assert!(agg_rows * 100.0 < plain_rows);
    }

    #[test]
    fn like_costs_as_regex() {
        let node = PhysNode::Filter {
            input: Box::new(scan(None, ScanRequest::full())),
            predicate: crate::expr::col("grp").like("a%"),
            device: None,
            use_kernel: false,
        };
        assert_eq!(op_class_of(&node), OpClass::Regex);
    }

    #[test]
    fn reduction_of_filter_matches_selectivity() {
        let profiles = profiles(1_000_000);
        let node = PhysNode::Filter {
            input: Box::new(scan(None, ScanRequest::full())),
            predicate: crate::expr::col("id").lt(crate::expr::lit(100_000)),
            device: None,
            use_kernel: false,
        };
        let r = reduction_of(&node, &profiles);
        assert!((r - 0.1).abs() < 0.02, "r={r}");
    }
}
