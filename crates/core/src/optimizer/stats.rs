//! Cardinality and selectivity estimation.
//!
//! The cost model's inputs: table profiles built from segment footers (row
//! counts and whole-table zone maps — the statistics cloud-native engines
//! actually have, §3.1), plus standard selectivity heuristics with zone-map
//! range interpolation.

use std::collections::HashMap;

use df_data::{Scalar, Schema};
use df_storage::table::TableStats;
use df_storage::zonemap::{CmpOp, ZoneMap};

use crate::expr::Expr;
use crate::logical::LogicalPlan;

/// Statistics for one table.
#[derive(Debug, Clone)]
pub struct TableProfile {
    /// Total rows.
    pub rows: u64,
    /// Stored (encoded) bytes.
    pub stored_bytes: u64,
    /// Whole-table zone map per column, aligned with the schema.
    pub zones: Vec<Option<ZoneMap>>,
    /// The table schema.
    pub schema: Schema,
}

impl TableProfile {
    /// Build from storage-layer stats.
    pub fn from_stats(stats: &TableStats, schema: Schema) -> TableProfile {
        TableProfile {
            rows: stats.rows,
            stored_bytes: stats.stored_bytes,
            zones: stats.column_zones.clone(),
            schema,
        }
    }

    fn zone_for(&self, column: &str) -> Option<&ZoneMap> {
        self.schema
            .index_of(column)
            .ok()
            .and_then(|i| self.zones.get(i).and_then(Option::as_ref))
    }
}

/// Average in-memory width of a row under a schema, in bytes.
pub fn avg_row_width(schema: &Schema) -> u64 {
    schema
        .fields()
        .iter()
        .map(|f| match f.dtype.fixed_width() {
            Some(w) => w as u64,
            None => 16, // strings: offsets + typical payload
        })
        .sum::<u64>()
        .max(1)
}

/// Default selectivities when nothing better is known.
mod defaults {
    pub const EQ: f64 = 0.05;
    pub const RANGE: f64 = 0.3;
    pub const LIKE_PREFIX: f64 = 0.05;
    pub const LIKE_CONTAINS: f64 = 0.1;
    pub const NULL_FRAC: f64 = 0.02;
}

/// Estimated selectivity of a predicate over a table profile (or defaults
/// when `profile` is `None`).
pub fn selectivity(expr: &Expr, profile: Option<&TableProfile>) -> f64 {
    let s = match expr {
        Expr::Lit(Scalar::Bool(true)) => 1.0,
        Expr::Lit(Scalar::Bool(false)) => 0.0,
        Expr::And(children) => children.iter().map(|c| selectivity(c, profile)).product(),
        Expr::Or(children) => {
            // Inclusion-exclusion under independence.
            1.0 - children
                .iter()
                .map(|c| 1.0 - selectivity(c, profile))
                .product::<f64>()
        }
        Expr::Not(inner) => 1.0 - selectivity(inner, profile),
        Expr::Cmp { op, left, right } => match (left.as_ref(), right.as_ref()) {
            (Expr::Col(c), Expr::Lit(v)) => cmp_selectivity(c, *op, v, profile),
            (Expr::Lit(v), Expr::Col(c)) => {
                let flipped = match op {
                    CmpOp::Lt => CmpOp::Gt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Ge => CmpOp::Le,
                    other => *other,
                };
                cmp_selectivity(c, flipped, v, profile)
            }
            _ => defaults::RANGE,
        },
        Expr::Between { expr, low, high } => match expr.as_ref() {
            Expr::Col(c) => {
                let ge = cmp_selectivity(c, CmpOp::Ge, low, profile);
                let le = cmp_selectivity(c, CmpOp::Le, high, profile);
                (ge + le - 1.0).max(0.001)
            }
            _ => defaults::RANGE,
        },
        Expr::Like { pattern, .. } => {
            if pattern.starts_with('%') {
                defaults::LIKE_CONTAINS
            } else {
                defaults::LIKE_PREFIX
            }
        }
        Expr::IsNull { negated, .. } => {
            if *negated {
                1.0 - defaults::NULL_FRAC
            } else {
                defaults::NULL_FRAC
            }
        }
        _ => defaults::RANGE,
    };
    s.clamp(0.0, 1.0)
}

fn cmp_selectivity(
    column: &str,
    op: CmpOp,
    literal: &Scalar,
    profile: Option<&TableProfile>,
) -> f64 {
    let Some(profile) = profile else {
        return default_for_op(op);
    };
    let Some(zone) = profile.zone_for(column) else {
        return default_for_op(op);
    };
    // Zone-map proof of emptiness.
    if zone.can_skip(op, literal) {
        return 0.0;
    }
    let (Some(min), Some(max)) = (&zone.min, &zone.max) else {
        return default_for_op(op);
    };
    // Numeric interpolation on the [min, max] range.
    let interp = match (
        min.as_float_lossy(),
        max.as_float_lossy(),
        literal.as_float_lossy(),
    ) {
        (Some(lo), Some(hi), Some(v)) if hi > lo => Some(((v - lo) / (hi - lo)).clamp(0.0, 1.0)),
        _ => None,
    };
    match (op, interp) {
        (CmpOp::Eq, _) => {
            // Distinct-value estimate: integer span or row count.
            let ndv = match (min, max) {
                (Scalar::Int(a), Scalar::Int(b)) => {
                    ((b - a).unsigned_abs() + 1).min(profile.rows.max(1))
                }
                _ => (profile.rows as f64).sqrt().max(2.0) as u64,
            };
            1.0 / ndv.max(1) as f64
        }
        (CmpOp::Ne, _) => 1.0 - cmp_selectivity(column, CmpOp::Eq, literal, Some(profile)),
        (CmpOp::Lt, Some(f)) | (CmpOp::Le, Some(f)) => f.max(0.001),
        (CmpOp::Gt, Some(f)) | (CmpOp::Ge, Some(f)) => (1.0 - f).max(0.001),
        (op, None) => default_for_op(op),
    }
}

fn default_for_op(op: CmpOp) -> f64 {
    match op {
        CmpOp::Eq => defaults::EQ,
        CmpOp::Ne => 1.0 - defaults::EQ,
        _ => defaults::RANGE,
    }
}

/// Estimated rows and bytes of a plan node's output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Output rows.
    pub rows: f64,
    /// Output bytes (in-memory batch size).
    pub bytes: f64,
}

/// Table profiles by name.
pub type Profiles = HashMap<String, TableProfile>;

/// Estimate a logical plan's output cardinality bottom-up.
pub fn estimate(plan: &LogicalPlan, profiles: &Profiles) -> Estimate {
    match plan {
        LogicalPlan::Scan { table, schema, .. } => {
            let rows = profiles.get(table).map_or(10_000.0, |p| p.rows as f64);
            Estimate {
                rows,
                bytes: rows * avg_row_width(schema) as f64,
            }
        }
        LogicalPlan::Values { batches, schema } => {
            let rows: usize = batches.iter().map(df_data::Batch::rows).sum();
            Estimate {
                rows: rows as f64,
                bytes: rows as f64 * avg_row_width(schema) as f64,
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let inp = estimate(input, profiles);
            let profile = scan_profile_of(input, profiles);
            let sel = selectivity(predicate, profile);
            Estimate {
                rows: inp.rows * sel,
                bytes: inp.bytes * sel,
            }
        }
        LogicalPlan::Project { input, schema, .. } => {
            let inp = estimate(input, profiles);
            let in_width = avg_row_width(&input.schema()) as f64;
            let out_width = avg_row_width(schema) as f64;
            Estimate {
                rows: inp.rows,
                bytes: inp.bytes * (out_width / in_width).min(1.5),
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            schema,
            ..
        } => {
            let inp = estimate(input, profiles);
            let groups = if group_by.is_empty() {
                1.0
            } else {
                // Square-root rule per key, capped by input.
                inp.rows.sqrt().max(1.0).min(inp.rows)
            };
            Estimate {
                rows: groups,
                bytes: groups * avg_row_width(schema) as f64,
            }
        }
        LogicalPlan::Join {
            left,
            right,
            schema,
            ..
        } => {
            let l = estimate(left, profiles);
            let r = estimate(right, profiles);
            // FK-join heuristic: output ≈ the larger side.
            let rows = l.rows.max(r.rows);
            Estimate {
                rows,
                bytes: rows * avg_row_width(schema) as f64,
            }
        }
        LogicalPlan::Sort { input, .. } => estimate(input, profiles),
        LogicalPlan::Limit { input, n } => {
            let inp = estimate(input, profiles);
            let rows = inp.rows.min(*n as f64);
            let frac = if inp.rows > 0.0 { rows / inp.rows } else { 1.0 };
            Estimate {
                rows,
                bytes: inp.bytes * frac,
            }
        }
    }
}

/// The profile of the underlying scan, if the subtree bottoms out in one
/// table (used to ground filter selectivities in zone maps).
pub fn scan_profile_of<'a>(plan: &LogicalPlan, profiles: &'a Profiles) -> Option<&'a TableProfile> {
    match plan {
        LogicalPlan::Scan { table, .. } => profiles.get(table),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Aggregate { input, .. } => scan_profile_of(input, profiles),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use df_data::DataType;
    use df_data::{Column, Field};

    fn profile(rows: u64, lo: i64, hi: i64) -> TableProfile {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]);
        let zone = ZoneMap::of(&Column::from_i64(vec![lo, hi]));
        TableProfile {
            rows,
            stored_bytes: rows * 20,
            zones: vec![Some(ZoneMap { rows, ..zone }), None],
            schema,
        }
    }

    #[test]
    fn range_interpolation() {
        let p = profile(1000, 0, 999);
        // id < 100 over [0, 999]: about 10%.
        let s = selectivity(&col("id").lt(lit(100)), Some(&p));
        assert!((s - 0.1).abs() < 0.01, "s={s}");
        let s_hi = selectivity(&col("id").gt(lit(899)), Some(&p));
        assert!((s_hi - 0.1).abs() < 0.01, "s={s_hi}");
    }

    #[test]
    fn zone_proven_empty_is_zero() {
        let p = profile(1000, 0, 999);
        assert_eq!(selectivity(&col("id").gt(lit(5000)), Some(&p)), 0.0);
        assert_eq!(selectivity(&col("id").eq(lit(-1)), Some(&p)), 0.0);
    }

    #[test]
    fn eq_uses_integer_span_ndv() {
        let p = profile(1000, 0, 99); // 100 distinct values possible
        let s = selectivity(&col("id").eq(lit(50)), Some(&p));
        assert!((s - 0.01).abs() < 1e-9, "s={s}");
    }

    #[test]
    fn and_or_compose() {
        let p = profile(1000, 0, 999);
        let a = col("id").lt(lit(500)); // ~0.5
        let b = col("id").ge(lit(500)); // ~0.5
        let and = selectivity(&a.clone().and(b.clone()), Some(&p));
        assert!((and - 0.25).abs() < 0.01);
        let or = selectivity(&a.or(b), Some(&p));
        assert!((or - 0.75).abs() < 0.01);
    }

    #[test]
    fn between_is_range_difference() {
        let p = profile(1000, 0, 999);
        let s = selectivity(&col("id").between(100, 299), Some(&p));
        assert!((s - 0.2).abs() < 0.02, "s={s}");
    }

    #[test]
    fn like_defaults() {
        let prefix = selectivity(&col("name").like("abc%"), None);
        let contains = selectivity(&col("name").like("%abc%"), None);
        assert!(prefix < contains);
    }

    #[test]
    fn plan_estimation_composes() {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ])
        .into_ref();
        let mut profiles = Profiles::new();
        profiles.insert("t".to_string(), profile(10_000, 0, 9_999));
        let plan = LogicalPlan::scan("t", schema)
            .filter(col("id").lt(lit(1_000)))
            .unwrap()
            .aggregate(
                vec!["name".into()],
                vec![crate::logical::AggCall::count_star("n")],
            )
            .unwrap();
        let est = estimate(&plan, &profiles);
        // filter ≈ 1000 rows; groups ≈ sqrt(1000) ≈ 32.
        assert!(est.rows > 10.0 && est.rows < 100.0, "rows={}", est.rows);
    }

    #[test]
    fn limit_caps_rows() {
        let schema = Schema::new(vec![Field::new("id", DataType::Int64)]).into_ref();
        let mut profiles = Profiles::new();
        profiles.insert("t".to_string(), profile(10_000, 0, 9_999));
        let plan = LogicalPlan::scan("t", schema).limit(5);
        assert_eq!(estimate(&plan, &profiles).rows, 5.0);
    }

    #[test]
    fn row_width() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Utf8),
            Field::new("c", DataType::Bool),
        ]);
        assert_eq!(avg_row_width(&schema), 8 + 16 + 1);
    }
}
