//! The optimizer: rewrites, placement enumeration, and variant ranking.
//!
//! §7.3 requires that "query plans in this architecture should contain
//! several data path alternatives ... a plan that uses every available
//! accelerator on the data path and a plan entirely executed on a compute
//! node". [`Optimizer::variants`] produces exactly that spectrum — every
//! *applicable* offload combination, costed by the movement-aware model and
//! ranked — for the scheduler to choose among at runtime.

pub mod cost;
pub mod rewrite;
pub mod stats;

use std::sync::Arc;

use df_data::{Field, Schema};
use df_fabric::{DeviceId, DeviceKind, Topology};
use df_storage::predicate::StoragePredicate;
use df_storage::smart::{AggFunc, PreAggSpec, ScanRequest};

use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::kernel::{to_storage_predicate, Program};
use crate::logical::{AggCall, AggFn, LogicalPlan};
use crate::ops::AggMode;
use crate::physical::{PhysNode, PhysicalPlan};

pub use cost::PlanCost;
pub use stats::{Profiles, TableProfile};

/// Where the interesting devices of the session's platform live.
#[derive(Debug, Clone, Copy)]
pub struct SiteMap {
    /// The storage controller serving table scans.
    pub storage: DeviceId,
    /// Whether it can execute pushed-down kernels.
    pub storage_is_smart: bool,
    /// The compute node's NIC, if smart.
    pub smart_nic: Option<DeviceId>,
    /// The near-memory accelerator, if present.
    pub near_mem: Option<DeviceId>,
    /// The CPU every plan can fall back to.
    pub cpu: DeviceId,
}

impl SiteMap {
    /// Discover a site map from a topology by device kinds, preferring the
    /// conventional names of [`Topology::disaggregated`].
    pub fn discover(topology: &Topology) -> Result<SiteMap> {
        let by_kind = |pred: &dyn Fn(&DeviceKind) -> bool| {
            topology
                .devices()
                .iter()
                .find(|d| pred(&d.profile.kind))
                .map(|d| d.id)
        };
        let storage =
            by_kind(&|k| matches!(k, DeviceKind::SmartStorage | DeviceKind::PlainStorage))
                .ok_or_else(|| EngineError::Placement("topology has no storage device".into()))?;
        let storage_is_smart = matches!(
            topology.device(storage).profile.kind,
            DeviceKind::SmartStorage
        );
        let cpu = by_kind(&|k| matches!(k, DeviceKind::Cpu { .. }))
            .ok_or_else(|| EngineError::Placement("topology has no CPU".into()))?;
        // Prefer the compute-side NIC (closest to the CPU) over storage's.
        let smart_nic = topology
            .device_by_name("compute0.nic")
            .filter(|&d| matches!(topology.device(d).profile.kind, DeviceKind::SmartNic))
            .or_else(|| by_kind(&|k| matches!(k, DeviceKind::SmartNic)));
        let near_mem = by_kind(&|k| matches!(k, DeviceKind::NearMemAccel));
        Ok(SiteMap {
            storage,
            storage_is_smart,
            smart_nic,
            near_mem,
            cpu,
        })
    }
}

/// How far a variant offloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OffloadPolicy {
    name: &'static str,
    /// Push projection into the scan request.
    projection: bool,
    /// Push offloadable filter conjuncts into the scan request.
    filter: bool,
    /// Push partial aggregation into the scan request.
    preagg: bool,
    /// Run the residual filter on the smart NIC via a kernel.
    nic_filter: bool,
    /// Run the residual filter on the near-memory accelerator.
    near_mem_filter: bool,
}

const POLICIES: [OffloadPolicy; 5] = [
    OffloadPolicy {
        name: "cpu-only",
        projection: true,
        filter: false,
        preagg: false,
        nic_filter: false,
        near_mem_filter: false,
    },
    OffloadPolicy {
        name: "storage-pushdown",
        projection: true,
        filter: true,
        preagg: false,
        nic_filter: false,
        near_mem_filter: false,
    },
    OffloadPolicy {
        name: "nic-filter",
        projection: true,
        filter: false,
        preagg: false,
        nic_filter: true,
        near_mem_filter: false,
    },
    OffloadPolicy {
        name: "near-mem-filter",
        projection: true,
        filter: false,
        preagg: false,
        nic_filter: false,
        near_mem_filter: true,
    },
    OffloadPolicy {
        name: "full-dataflow",
        projection: true,
        filter: true,
        preagg: true,
        nic_filter: true,
        near_mem_filter: false,
    },
];

/// A costed plan alternative.
#[derive(Debug, Clone)]
pub struct RankedPlan {
    /// The physical plan.
    pub plan: PhysicalPlan,
    /// Its estimated cost.
    pub cost: PlanCost,
}

/// The optimizer, bound to a topology.
pub struct Optimizer {
    topology: Arc<Topology>,
    site: SiteMap,
}

impl Optimizer {
    /// Create for a topology (discovers the site map).
    pub fn new(topology: Arc<Topology>) -> Result<Optimizer> {
        let site = SiteMap::discover(&topology)?;
        Ok(Optimizer { topology, site })
    }

    /// The discovered site map.
    pub fn site(&self) -> &SiteMap {
        &self.site
    }

    /// Produce ranked plan variants for a logical plan: rewritten,
    /// physically placed under each applicable offload policy, costed, and
    /// sorted best-first. Always contains at least the CPU-only variant.
    pub fn variants(&self, logical: &LogicalPlan, profiles: &Profiles) -> Result<Vec<RankedPlan>> {
        let rewritten = rewrite::rewrite(logical.clone())?;
        let mut out: Vec<RankedPlan> = Vec::new();
        for policy in POLICIES {
            if (policy.filter || policy.preagg) && !self.site.storage_is_smart {
                continue;
            }
            if policy.nic_filter && self.site.smart_nic.is_none() {
                continue;
            }
            if policy.near_mem_filter && self.site.near_mem.is_none() {
                continue;
            }
            let Some(root) = self.build(&rewritten, policy)? else {
                continue; // policy not applicable to this plan shape
            };
            // Skip duplicates (a policy that changed nothing vs another).
            let explain = root.explain();
            if out.iter().any(|r| r.plan.root.explain() == explain) {
                continue;
            }
            let cost = match cost::cost_plan(&root, &self.topology, profiles, self.site.cpu) {
                Ok(c) => c,
                // The policy produced an illegal placement (e.g. a regex
                // filter on a device without a pattern matcher): not an
                // error, just not a viable variant.
                Err(EngineError::Placement(_)) => continue,
                Err(other) => return Err(other),
            };
            out.push(RankedPlan {
                plan: PhysicalPlan::new(root, policy.name),
                cost,
            });
        }
        if out.is_empty() {
            return Err(EngineError::Placement(
                "no plan variant could be constructed".into(),
            ));
        }
        out.sort_by(|a, b| {
            a.cost
                .time
                .cmp(&b.cost.time)
                .then(a.cost.moved_bytes.cmp(&b.cost.moved_bytes))
        });
        Ok(out)
    }

    /// Best variant only.
    pub fn best(&self, logical: &LogicalPlan, profiles: &Profiles) -> Result<RankedPlan> {
        Ok(self.variants(logical, profiles)?.remove(0))
    }

    /// Build a physical plan for one policy. `Ok(None)` means the policy
    /// does not change anything applicable and should be skipped (except
    /// cpu-only, which always applies).
    fn build(&self, plan: &LogicalPlan, policy: OffloadPolicy) -> Result<Option<PhysNode>> {
        Ok(Some(match plan {
            LogicalPlan::Scan {
                table, projection, ..
            } => {
                let mut request = ScanRequest::full();
                if policy.projection {
                    if let Some(cols) = projection {
                        request.projection = Some(cols.clone());
                    }
                }
                PhysNode::StorageScan {
                    table: table.clone(),
                    schema: plan.schema(),
                    request,
                    device: Some(self.site.storage),
                }
            }
            LogicalPlan::Values { batches, schema } => PhysNode::Values {
                batches: batches.clone(),
                schema: schema.clone(),
                device: None,
            },
            LogicalPlan::Filter { input, predicate } => {
                // Try to push conjuncts into a directly-underlying scan.
                if let LogicalPlan::Scan { .. } = input.as_ref() {
                    let Some(scan_node) = self.build(input, policy)? else {
                        return Ok(None);
                    };
                    return self.place_filter(scan_node, predicate, policy).map(Some);
                }
                let Some(child) = self.build(input, policy)? else {
                    return Ok(None);
                };
                PhysNode::Filter {
                    input: Box::new(child),
                    predicate: predicate.clone(),
                    device: Some(self.site.cpu),
                    use_kernel: false,
                }
            }
            LogicalPlan::Project {
                input,
                exprs,
                schema,
            } => {
                let Some(child) = self.build(input, policy)? else {
                    return Ok(None);
                };
                PhysNode::Project {
                    input: Box::new(child),
                    exprs: exprs.clone(),
                    schema: schema.clone(),
                    device: Some(self.site.cpu),
                }
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                schema,
            } => {
                // Full pushdown: scan (+fully pushed filter) + pre-agg at
                // storage, merge at CPU.
                if policy.preagg {
                    if let Some(node) =
                        self.try_pushdown_aggregate(input, group_by, aggs, schema)?
                    {
                        return Ok(Some(node));
                    }
                }
                let Some(child) = self.build(input, policy)? else {
                    return Ok(None);
                };
                PhysNode::Aggregate {
                    input: Box::new(child),
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                    mode: AggMode::Final,
                    final_schema: schema.clone(),
                    device: Some(self.site.cpu),
                }
            }
            LogicalPlan::Join {
                left,
                right,
                on,
                join_type,
                schema,
            } => {
                let Some(build) = self.build(left, policy)? else {
                    return Ok(None);
                };
                let Some(probe) = self.build(right, policy)? else {
                    return Ok(None);
                };
                PhysNode::HashJoin {
                    build: Box::new(build),
                    probe: Box::new(probe),
                    on: on.clone(),
                    join_type: *join_type,
                    schema: schema.clone(),
                    device: Some(self.site.cpu),
                }
            }
            LogicalPlan::Sort { input, keys } => {
                let Some(child) = self.build(input, policy)? else {
                    return Ok(None);
                };
                PhysNode::Sort {
                    input: Box::new(child),
                    keys: keys.clone(),
                    device: Some(self.site.cpu),
                }
            }
            LogicalPlan::Limit { input, n } => {
                // Sort directly under Limit fuses into bounded-state TopK.
                if let LogicalPlan::Sort {
                    input: sort_input,
                    keys,
                } = input.as_ref()
                {
                    let Some(child) = self.build(sort_input, policy)? else {
                        return Ok(None);
                    };
                    return Ok(Some(PhysNode::TopK {
                        input: Box::new(child),
                        keys: keys.clone(),
                        k: *n,
                        device: Some(self.site.cpu),
                    }));
                }
                let Some(child) = self.build(input, policy)? else {
                    return Ok(None);
                };
                PhysNode::Limit {
                    input: Box::new(child),
                    n: *n,
                }
            }
        }))
    }

    /// Place a filter over a freshly built scan node according to policy:
    /// push what lowers to the storage language, then place the residual.
    fn place_filter(
        &self,
        scan: PhysNode,
        predicate: &Expr,
        policy: OffloadPolicy,
    ) -> Result<PhysNode> {
        let conjuncts: Vec<Expr> = match predicate {
            Expr::And(children) => children.clone(),
            other => vec![other.clone()],
        };
        let mut pushed: Vec<StoragePredicate> = Vec::new();
        let mut residual: Vec<Expr> = Vec::new();
        for c in conjuncts {
            match to_storage_predicate(&c) {
                Some(p) if policy.filter && self.site.storage_is_smart => pushed.push(p),
                _ => residual.push(c),
            }
        }
        let node = if pushed.is_empty() {
            scan
        } else {
            match scan {
                PhysNode::StorageScan {
                    table,
                    mut request,
                    schema,
                    device,
                } => {
                    request.predicate = if pushed.len() == 1 {
                        pushed.pop().expect("len checked")
                    } else {
                        StoragePredicate::And(pushed)
                    };
                    PhysNode::StorageScan {
                        table,
                        request,
                        schema,
                        device,
                    }
                }
                other => other,
            }
        };
        if residual.is_empty() {
            return Ok(node);
        }
        let residual_pred = if residual.len() == 1 {
            residual.pop().expect("len checked")
        } else {
            Expr::And(residual)
        };
        // Residual placement: NIC or near-memory accelerator when the
        // policy asks for it and the kernel compiles; otherwise CPU.
        let offloadable = Program::compile_predicate(&residual_pred).is_ok();
        let (device, use_kernel) = if policy.nic_filter && offloadable {
            (self.site.smart_nic, true)
        } else if policy.near_mem_filter && offloadable {
            (self.site.near_mem, true)
        } else {
            (Some(self.site.cpu), false)
        };
        Ok(PhysNode::Filter {
            input: Box::new(node),
            predicate: residual_pred,
            device,
            use_kernel,
        })
    }

    /// Try to push an aggregate down to storage as bounded pre-aggregation.
    fn try_pushdown_aggregate(
        &self,
        input: &LogicalPlan,
        group_by: &[String],
        aggs: &[AggCall],
        final_schema: &df_data::SchemaRef,
    ) -> Result<Option<PhysNode>> {
        // The input must be Scan or Filter(Scan) with a fully pushable
        // predicate.
        let (scan, filter) = match input {
            LogicalPlan::Scan { .. } => (input, None),
            LogicalPlan::Filter {
                input: scan,
                predicate,
            } => {
                if !matches!(scan.as_ref(), LogicalPlan::Scan { .. }) {
                    return Ok(None);
                }
                match to_storage_predicate(predicate) {
                    Some(p) => (scan.as_ref(), Some(p)),
                    None => return Ok(None),
                }
            }
            _ => return Ok(None),
        };
        let input_schema = scan.schema();
        // Map AggCalls to storage functions (positional contract).
        let mut storage_aggs: Vec<(AggFunc, String)> = Vec::new();
        for call in aggs {
            match (&call.func, &call.column) {
                (AggFn::Count, Some(c)) => storage_aggs.push((AggFunc::Count, c.clone())),
                (AggFn::Count, None) => {
                    // COUNT(*) needs a non-nullable column to count.
                    let Some(field) = input_schema.fields().iter().find(|f| !f.nullable) else {
                        return Ok(None);
                    };
                    storage_aggs.push((AggFunc::Count, field.name.clone()));
                }
                (AggFn::Sum, Some(c)) => storage_aggs.push((AggFunc::Sum, c.clone())),
                (AggFn::Min, Some(c)) => storage_aggs.push((AggFunc::Min, c.clone())),
                (AggFn::Max, Some(c)) => storage_aggs.push((AggFunc::Max, c.clone())),
                (AggFn::Avg, Some(c)) => {
                    // AVG decomposes positionally into (sum, count).
                    storage_aggs.push((AggFunc::Sum, c.clone()));
                    storage_aggs.push((AggFunc::Count, c.clone()));
                }
                _ => return Ok(None),
            }
        }
        let LogicalPlan::Scan { table, .. } = scan else {
            return Ok(None);
        };
        let mut request = ScanRequest::full().pre_aggregate(PreAggSpec {
            group_by: group_by.to_vec(),
            aggs: storage_aggs,
            max_groups: 1 << 16,
        });
        if let Some(p) = filter {
            request.predicate = p;
        }
        // The scan's output schema is the storage partial layout; the Merge
        // aggregate consumes it positionally. Build a representative schema
        // for the physical node (names follow the storage convention).
        let mut fields = Vec::new();
        for g in group_by {
            fields.push(input_schema.field_by_name(g)?.clone());
        }
        for (func, col) in &request.preagg.as_ref().expect("just set").aggs {
            let dtype = match func {
                AggFunc::Count => df_data::DataType::Int64,
                _ => input_schema.field_by_name(col)?.dtype,
            };
            fields.push(Field::nullable(format!("{}_{col}", func.prefix()), dtype));
        }
        // Positional partial columns may collide by name (e.g. AVG over the
        // same column as a SUM); disambiguate with an index suffix.
        let mut seen = std::collections::HashSet::new();
        for (i, f) in fields.iter_mut().enumerate() {
            if !seen.insert(f.name.clone()) {
                f.name = format!("{}__{i}", f.name);
                seen.insert(f.name.clone());
            }
        }
        let scan_schema = Schema::new(fields).into_ref();
        Ok(Some(PhysNode::Aggregate {
            input: Box::new(PhysNode::StorageScan {
                table: table.clone(),
                request,
                schema: scan_schema,
                device: Some(self.site.storage),
            }),
            group_by: group_by.to_vec(),
            aggs: aggs.to_vec(),
            mode: AggMode::Merge,
            final_schema: final_schema.clone(),
            device: Some(self.site.cpu),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use df_data::DataType;
    use df_fabric::topology::DisaggregatedConfig;

    fn topo() -> Arc<Topology> {
        Arc::new(Topology::disaggregated(&DisaggregatedConfig::default()))
    }

    fn table_schema() -> df_data::SchemaRef {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("grp", DataType::Utf8),
            Field::new("v", DataType::Float64),
            Field::new("note", DataType::Utf8),
        ])
        .into_ref()
    }

    fn profiles() -> Profiles {
        let mut p = Profiles::new();
        p.insert(
            "t".to_string(),
            TableProfile {
                rows: 1_000_000,
                stored_bytes: 40_000_000,
                zones: vec![
                    Some(df_storage::zonemap::ZoneMap::of(
                        &df_data::Column::from_i64(vec![0, 999_999]),
                    )),
                    None,
                    None,
                    None,
                ],
                schema: table_schema().as_ref().clone(),
            },
        );
        p
    }

    fn selective_query() -> LogicalPlan {
        LogicalPlan::scan("t", table_schema())
            .filter(col("id").lt(lit(1000)))
            .unwrap()
            .project(&["id", "v"])
            .unwrap()
    }

    #[test]
    fn site_discovery() {
        let t = topo();
        let site = SiteMap::discover(&t).unwrap();
        assert!(site.storage_is_smart);
        assert!(site.smart_nic.is_some());
        assert!(site.near_mem.is_some());
    }

    #[test]
    fn variants_include_cpu_only_and_pushdown() {
        let optimizer = Optimizer::new(topo()).unwrap();
        let variants = optimizer.variants(&selective_query(), &profiles()).unwrap();
        let names: Vec<&str> = variants.iter().map(|v| v.plan.variant.as_str()).collect();
        assert!(names.contains(&"cpu-only"), "{names:?}");
        assert!(names.contains(&"storage-pushdown"), "{names:?}");
        assert!(names.len() >= 3, "{names:?}");
    }

    #[test]
    fn pushdown_wins_for_selective_queries() {
        let optimizer = Optimizer::new(topo()).unwrap();
        let best = optimizer.best(&selective_query(), &profiles()).unwrap();
        assert_eq!(best.plan.variant, "storage-pushdown");
        // And its cost is strictly better than cpu-only.
        let variants = optimizer.variants(&selective_query(), &profiles()).unwrap();
        let cpu_only = variants
            .iter()
            .find(|v| v.plan.variant == "cpu-only")
            .unwrap();
        assert!(best.cost.moved_bytes < cpu_only.cost.moved_bytes);
        assert!(best.cost.time < cpu_only.cost.time);
    }

    #[test]
    fn dumb_storage_disables_pushdown_variants() {
        let t = Arc::new(Topology::disaggregated(&DisaggregatedConfig {
            smart_storage: false,
            smart_nics: false,
            near_memory_accel: false,
            ..DisaggregatedConfig::default()
        }));
        let optimizer = Optimizer::new(t).unwrap();
        let variants = optimizer.variants(&selective_query(), &profiles()).unwrap();
        for v in &variants {
            assert_eq!(v.plan.variant, "cpu-only", "unexpected {}", v.plan.variant);
        }
    }

    #[test]
    fn aggregate_pushes_to_preagg() {
        let optimizer = Optimizer::new(topo()).unwrap();
        let plan = LogicalPlan::scan("t", table_schema())
            .aggregate(
                vec!["grp".into()],
                vec![
                    crate::logical::AggCall::new(AggFn::Sum, "v", "sv"),
                    crate::logical::AggCall::new(AggFn::Avg, "v", "av"),
                ],
            )
            .unwrap();
        let variants = optimizer.variants(&plan, &profiles()).unwrap();
        let full = variants
            .iter()
            .find(|v| v.plan.variant == "full-dataflow")
            .expect("full-dataflow variant exists");
        let text = full.plan.explain();
        assert!(text.contains("preagg"), "{text}");
        assert!(text.contains("Aggregate[merge]"), "{text}");
        // Pre-aggregation moves far fewer bytes than cpu-only.
        let cpu_only = variants
            .iter()
            .find(|v| v.plan.variant == "cpu-only")
            .unwrap();
        assert!(full.cost.moved_bytes < cpu_only.cost.moved_bytes / 10);
    }

    #[test]
    fn arithmetic_residual_stays_on_cpu() {
        let optimizer = Optimizer::new(topo()).unwrap();
        let plan = LogicalPlan::scan("t", table_schema())
            .filter(
                col("id")
                    .add(lit(1))
                    .gt(lit(100))
                    .and(col("id").lt(lit(50))),
            )
            .unwrap();
        let variants = optimizer.variants(&plan, &profiles()).unwrap();
        let pushdown = variants
            .iter()
            .find(|v| v.plan.variant == "storage-pushdown")
            .unwrap();
        let text = pushdown.plan.explain();
        // Pushable conjunct went down; arithmetic one stayed as a Filter.
        assert!(text.contains("pushdown-filter"), "{text}");
        assert!(text.contains("Filter: ((id + 1) > 100)"), "{text}");
    }

    #[test]
    fn nic_filter_variant_places_kernel_on_nic() {
        let optimizer = Optimizer::new(topo()).unwrap();
        let variants = optimizer.variants(&selective_query(), &profiles()).unwrap();
        let nic = variants
            .iter()
            .find(|v| v.plan.variant == "nic-filter")
            .expect("nic-filter variant");
        let text = nic.plan.explain();
        assert!(text.contains("[kernel]"), "{text}");
    }

    #[test]
    fn variants_sorted_by_cost() {
        let optimizer = Optimizer::new(topo()).unwrap();
        let variants = optimizer.variants(&selective_query(), &profiles()).unwrap();
        for pair in variants.windows(2) {
            assert!(pair[0].cost.time <= pair[1].cost.time);
        }
    }
}
