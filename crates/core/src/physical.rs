//! Physical plans: operator trees annotated with device placement.
//!
//! A physical node is a logical operator plus the decision of *where* it
//! runs ([`DeviceId`] in a fabric [`df_fabric::Topology`]) and *how*
//! (native vs kernel-interpreted). The executor charges every batch that
//! crosses between differently-placed nodes to the movement ledger.

use df_data::{Batch, SchemaRef};
use df_fabric::DeviceId;
use df_storage::smart::ScanRequest;

use crate::expr::Expr;
use crate::logical::AggCall;
use crate::ops::AggMode;
use crate::pipeline::ExchangeKind;
use crate::streaming::{StreamSourceSpec, WindowSpec};

/// A physical operator tree.
#[derive(Debug, Clone)]
pub enum PhysNode {
    /// Scan a stored table with an optional pushed-down request (the
    /// request executes *at the storage device*).
    StorageScan {
        /// Table name.
        table: String,
        /// Pushed-down projection/predicate/pre-aggregation.
        request: ScanRequest,
        /// Output schema of the request.
        schema: SchemaRef,
        /// Placement (the storage controller, smart or plain).
        device: Option<DeviceId>,
    },
    /// In-memory batches.
    Values {
        /// The data.
        batches: Vec<Batch>,
        /// Shared schema.
        schema: SchemaRef,
        /// Placement.
        device: Option<DeviceId>,
    },
    /// A seed-deterministic streaming source (unbounded when the spec's
    /// `batches` is `None`); emits punctuation the graph's edges carry.
    StreamScan {
        /// Generator parameters (seed, rate, horizon, punctuation cadence).
        spec: StreamSourceSpec,
        /// Output schema ([`StreamSourceSpec::schema`]).
        schema: SchemaRef,
        /// Placement (the device ingesting the stream, e.g. the NIC Rx).
        device: Option<DeviceId>,
    },
    /// Row filter.
    Filter {
        /// Input.
        input: Box<PhysNode>,
        /// Predicate.
        predicate: Expr,
        /// Placement.
        device: Option<DeviceId>,
        /// Evaluate via the kernel VM (accelerator emulation) instead of
        /// the native vectorized path.
        use_kernel: bool,
    },
    /// Expression projection.
    Project {
        /// Input.
        input: Box<PhysNode>,
        /// `(expr, name)` pairs.
        exprs: Vec<(Expr, String)>,
        /// Output schema.
        schema: SchemaRef,
        /// Placement.
        device: Option<DeviceId>,
    },
    /// Hash aggregation (partial, final, or merge).
    Aggregate {
        /// Input (raw rows for Partial/Final, partials for Merge).
        input: Box<PhysNode>,
        /// Group-by columns.
        group_by: Vec<String>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
        /// Mode.
        mode: AggMode,
        /// The *final* output schema of the logical aggregate.
        final_schema: SchemaRef,
        /// Placement.
        device: Option<DeviceId>,
    },
    /// Event-time windowed hash aggregation: rows are routed to
    /// tumbling/sliding windows over `ts_col`, each window aggregates
    /// independently, and a window only emits once the input frontier
    /// passes its end bound (punctuation-gated in streaming execution,
    /// end-of-input in batch execution — same output either way).
    WindowAggregate {
        /// Input (raw timestamped rows for Partial/Final; `wstart`-tagged
        /// partials for Merge).
        input: Box<PhysNode>,
        /// Timestamp column (`Int64`) windows are assigned over.
        ts_col: String,
        /// Window size/slide.
        window: WindowSpec,
        /// Group-by columns within each window.
        group_by: Vec<String>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
        /// Mode.
        mode: AggMode,
        /// Final output schema of the inner aggregate (sans `wstart`).
        final_schema: SchemaRef,
        /// Placement.
        device: Option<DeviceId>,
    },
    /// Hash join: `build` is consumed first.
    HashJoin {
        /// Build side.
        build: Box<PhysNode>,
        /// Probe side.
        probe: Box<PhysNode>,
        /// `(build column, probe column)` pairs.
        on: Vec<(String, String)>,
        /// Inner or left-outer.
        join_type: crate::logical::JoinType,
        /// Joined schema.
        schema: SchemaRef,
        /// Placement.
        device: Option<DeviceId>,
    },
    /// Sort.
    Sort {
        /// Input.
        input: Box<PhysNode>,
        /// `(column, ascending)` keys.
        keys: Vec<(String, bool)>,
        /// Placement.
        device: Option<DeviceId>,
    },
    /// Row limit.
    Limit {
        /// Input.
        input: Box<PhysNode>,
        /// Cap.
        n: u64,
    },
    /// Fused sort+limit with bounded state.
    TopK {
        /// Input.
        input: Box<PhysNode>,
        /// `(column, ascending)` keys.
        keys: Vec<(String, bool)>,
        /// Rows kept.
        k: u64,
        /// Placement.
        device: Option<DeviceId>,
    },
    /// One consumer fragment of a scale-out exchange: rows from every
    /// producer subtree are redistributed across `parts` consumer
    /// fragments (hash-partitioned, broadcast, or gathered). All fragments
    /// of one exchange share a `group`; the producer subtrees are carried
    /// by the first-compiled fragment (`inputs` empty on the others) and
    /// compiled exactly once.
    Exchange {
        /// Exchange group id; every fragment of one exchange shares it.
        group: usize,
        /// How rows are redistributed across consumers.
        kind: ExchangeKind,
        /// Which consumer fragment this node is (`0..parts`).
        index: usize,
        /// Number of consumer fragments.
        parts: usize,
        /// Producer subtrees (populated on exactly one fragment per
        /// group — conventionally index 0; empty on the others).
        inputs: Vec<PhysNode>,
        /// Schema of the redistributed stream (= producer output schema).
        schema: SchemaRef,
        /// Consumer-side placement where this fragment's partitions land.
        device: Option<DeviceId>,
    },
}

impl PhysNode {
    /// The node's output schema.
    pub fn schema(&self) -> SchemaRef {
        match self {
            PhysNode::StorageScan { schema, .. }
            | PhysNode::Values { schema, .. }
            | PhysNode::StreamScan { schema, .. }
            | PhysNode::Project { schema, .. }
            | PhysNode::HashJoin { schema, .. }
            | PhysNode::Exchange { schema, .. } => schema.clone(),
            PhysNode::WindowAggregate {
                input,
                group_by,
                aggs,
                mode,
                final_schema,
                ..
            } => crate::streaming::window_output_schema(
                group_by,
                aggs,
                *mode,
                &input.schema(),
                final_schema,
            )
            .expect("validated at plan build"),
            PhysNode::Filter { input, .. }
            | PhysNode::Sort { input, .. }
            | PhysNode::TopK { input, .. }
            | PhysNode::Limit { input, .. } => input.schema(),
            PhysNode::Aggregate {
                input,
                group_by,
                aggs,
                mode,
                final_schema,
                ..
            } => match mode {
                AggMode::Partial { .. } => {
                    crate::ops::aggregate::partial_schema(group_by, aggs, &input.schema())
                        .expect("validated at plan build")
                        .into_ref()
                }
                _ => final_schema.clone(),
            },
        }
    }

    /// The node's direct children (empty for leaves).
    pub fn children(&self) -> Vec<&PhysNode> {
        match self {
            PhysNode::StorageScan { .. }
            | PhysNode::Values { .. }
            | PhysNode::StreamScan { .. } => Vec::new(),
            PhysNode::Filter { input, .. }
            | PhysNode::Project { input, .. }
            | PhysNode::Aggregate { input, .. }
            | PhysNode::WindowAggregate { input, .. }
            | PhysNode::Sort { input, .. }
            | PhysNode::TopK { input, .. }
            | PhysNode::Limit { input, .. } => vec![input],
            PhysNode::HashJoin { build, probe, .. } => vec![build, probe],
            PhysNode::Exchange { inputs, .. } => inputs.iter().collect(),
        }
    }

    /// The node's placement (None = unplaced, treated as the local CPU).
    pub fn device(&self) -> Option<DeviceId> {
        match self {
            PhysNode::StorageScan { device, .. }
            | PhysNode::Values { device, .. }
            | PhysNode::StreamScan { device, .. }
            | PhysNode::Filter { device, .. }
            | PhysNode::Project { device, .. }
            | PhysNode::Aggregate { device, .. }
            | PhysNode::WindowAggregate { device, .. }
            | PhysNode::HashJoin { device, .. }
            | PhysNode::TopK { device, .. }
            | PhysNode::Sort { device, .. }
            | PhysNode::Exchange { device, .. } => *device,
            PhysNode::Limit { input, .. } => input.device(),
        }
    }

    /// Indented explain text with placements.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn dev_str(device: &Option<DeviceId>) -> String {
        match device {
            Some(d) => format!(" @{d}"),
            None => String::new(),
        }
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            PhysNode::StorageScan {
                table,
                request,
                device,
                ..
            } => {
                let mut parts = vec![format!("{pad}StorageScan: {table}")];
                if let Some(p) = &request.projection {
                    parts.push(format!("projection=[{}]", p.join(",")));
                }
                if request.preagg.is_some() {
                    parts.push("preagg".into());
                }
                if !matches!(
                    request.predicate,
                    df_storage::predicate::StoragePredicate::True
                ) {
                    parts.push("pushdown-filter".into());
                }
                out.push_str(&parts.join(" "));
                out.push_str(&Self::dev_str(device));
                out.push('\n');
            }
            PhysNode::Values {
                batches, device, ..
            } => {
                let rows: usize = batches.iter().map(Batch::rows).sum();
                out.push_str(&format!(
                    "{pad}Values: {rows} rows{}\n",
                    Self::dev_str(device)
                ));
            }
            PhysNode::StreamScan { spec, device, .. } => {
                let horizon = match spec.batches {
                    Some(n) => format!("{n} batches"),
                    None => "unbounded".into(),
                };
                out.push_str(&format!(
                    "{pad}StreamScan: seed={} {}x{} rows {horizon} punct-every={}{}\n",
                    spec.seed,
                    spec.rows_per_batch,
                    spec.sensors,
                    spec.punct_every,
                    Self::dev_str(device)
                ));
            }
            PhysNode::WindowAggregate {
                input,
                ts_col,
                window,
                group_by,
                mode,
                device,
                ..
            } => {
                let mode_str = match mode {
                    AggMode::Partial { max_groups } => format!("partial(max={max_groups})"),
                    AggMode::Final => "final".to_string(),
                    AggMode::Merge => "merge".to_string(),
                };
                out.push_str(&format!(
                    "{pad}WindowAggregate[{mode_str}]: ts={ts_col} size={} slide={} group=[{}]{}\n",
                    window.size,
                    window.slide,
                    group_by.join(","),
                    Self::dev_str(device)
                ));
                input.explain_into(out, depth + 1);
            }
            PhysNode::Filter {
                input,
                predicate,
                device,
                use_kernel,
            } => {
                let how = if *use_kernel { " [kernel]" } else { "" };
                out.push_str(&format!(
                    "{pad}Filter: {predicate}{how}{}\n",
                    Self::dev_str(device)
                ));
                input.explain_into(out, depth + 1);
            }
            PhysNode::Project {
                input,
                exprs,
                device,
                ..
            } => {
                let items: Vec<String> = exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                out.push_str(&format!(
                    "{pad}Project: {}{}\n",
                    items.join(", "),
                    Self::dev_str(device)
                ));
                input.explain_into(out, depth + 1);
            }
            PhysNode::Aggregate {
                input,
                group_by,
                mode,
                device,
                ..
            } => {
                let mode_str = match mode {
                    AggMode::Partial { max_groups } => format!("partial(max={max_groups})"),
                    AggMode::Final => "final".to_string(),
                    AggMode::Merge => "merge".to_string(),
                };
                out.push_str(&format!(
                    "{pad}Aggregate[{mode_str}]: group=[{}]{}\n",
                    group_by.join(","),
                    Self::dev_str(device)
                ));
                input.explain_into(out, depth + 1);
            }
            PhysNode::HashJoin {
                build,
                probe,
                on,
                join_type,
                device,
                ..
            } => {
                let keys: Vec<String> = on.iter().map(|(l, r)| format!("{l}={r}")).collect();
                out.push_str(&format!(
                    "{pad}HashJoin[{}]: [{}]{}\n",
                    join_type.name(),
                    keys.join(","),
                    Self::dev_str(device)
                ));
                build.explain_into(out, depth + 1);
                probe.explain_into(out, depth + 1);
            }
            PhysNode::Sort {
                input,
                keys,
                device,
            } => {
                let items: Vec<String> = keys
                    .iter()
                    .map(|(k, asc)| format!("{k} {}", if *asc { "ASC" } else { "DESC" }))
                    .collect();
                out.push_str(&format!(
                    "{pad}Sort: {}{}\n",
                    items.join(", "),
                    Self::dev_str(device)
                ));
                input.explain_into(out, depth + 1);
            }
            PhysNode::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit: {n}\n"));
                input.explain_into(out, depth + 1);
            }
            PhysNode::TopK {
                input,
                keys,
                k,
                device,
            } => {
                let items: Vec<String> = keys
                    .iter()
                    .map(|(c, asc)| format!("{c} {}", if *asc { "ASC" } else { "DESC" }))
                    .collect();
                out.push_str(&format!(
                    "{pad}TopK({k}): {}{}\n",
                    items.join(", "),
                    Self::dev_str(device)
                ));
                input.explain_into(out, depth + 1);
            }
            PhysNode::Exchange {
                group,
                kind,
                index,
                parts,
                inputs,
                device,
                ..
            } => {
                let how = match kind {
                    ExchangeKind::Hash { keys, .. } => format!("hash[{}]", keys.join(",")),
                    ExchangeKind::Broadcast => "broadcast".into(),
                    ExchangeKind::Gather => "gather".into(),
                };
                out.push_str(&format!(
                    "{pad}Exchange#{group}[{how}] {index}/{parts}{}\n",
                    Self::dev_str(device)
                ));
                for input in inputs {
                    input.explain_into(out, depth + 1);
                }
            }
        }
    }
}

/// A complete physical plan, named for the variant it represents (§7.3:
/// plans carry several data-path alternatives).
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// Root node.
    pub root: PhysNode,
    /// Variant label, e.g. `"cpu-only"`, `"storage-pushdown"`.
    pub variant: String,
}

impl PhysicalPlan {
    /// Wrap a root with a variant label.
    pub fn new(root: PhysNode, variant: impl Into<String>) -> PhysicalPlan {
        PhysicalPlan {
            root,
            variant: variant.into(),
        }
    }

    /// Output schema.
    pub fn schema(&self) -> SchemaRef {
        self.root.schema()
    }

    /// Explain text.
    pub fn explain(&self) -> String {
        format!("variant: {}\n{}", self.variant, self.root.explain())
    }
}
