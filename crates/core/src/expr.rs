//! Expressions with vectorized evaluation over batches.
//!
//! Expressions are what the user writes; the kernel compiler (in
//! [`crate::kernel`]) lowers the offloadable subset into device programs,
//! and the host operators evaluate the rest with the vectorized paths here.
//! NULL semantics follow SQL: comparisons and arithmetic over NULL yield
//! NULL; predicates collapse NULL to "no match".

use std::fmt;

use df_data::{Batch, Bitmap, Column, ColumnBuilder, DataType, Scalar, Schema};
use df_storage::pattern::LikePattern;
use df_storage::zonemap::CmpOp;

use crate::error::{EngineError, Result};

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division for two Int64 operands).
    Div,
}

impl ArithOp {
    /// SQL symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference by name.
    Col(String),
    /// A literal value.
    Lit(Scalar),
    /// Binary comparison producing a boolean.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Binary arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Conjunction (empty = TRUE).
    And(Vec<Expr>),
    /// Disjunction (empty = FALSE).
    Or(Vec<Expr>),
    /// Negation with SQL NULL semantics.
    Not(Box<Expr>),
    /// `expr LIKE 'pattern'`.
    Like {
        /// String operand.
        expr: Box<Expr>,
        /// LIKE pattern.
        pattern: String,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// `true` for IS NOT NULL.
        negated: bool,
    },
    /// `expr BETWEEN low AND high` (inclusive; bounds are literals).
    Between {
        /// Operand.
        expr: Box<Expr>,
        /// Lower bound.
        low: Scalar,
        /// Upper bound.
        high: Scalar,
    },
}

/// Shorthand: a column reference.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Col(name.into())
}

/// Shorthand: a literal.
pub fn lit(value: impl Into<Scalar>) -> Expr {
    Expr::Lit(value.into())
}

impl Expr {
    /// `self OP other` comparison.
    pub fn cmp(self, op: CmpOp, other: Expr) -> Expr {
        Expr::Cmp {
            op,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Eq, other)
    }

    /// `self <> other`.
    pub fn ne(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Ne, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Lt, other)
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Le, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Gt, other)
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Ge, other)
    }

    /// `self AND other` (flattens nested ANDs).
    pub fn and(self, other: Expr) -> Expr {
        match (self, other) {
            (Expr::And(mut a), Expr::And(b)) => {
                a.extend(b);
                Expr::And(a)
            }
            (Expr::And(mut a), b) => {
                a.push(b);
                Expr::And(a)
            }
            (a, Expr::And(mut b)) => {
                b.insert(0, a);
                Expr::And(b)
            }
            (a, b) => Expr::And(vec![a, b]),
        }
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        match (self, other) {
            (Expr::Or(mut a), Expr::Or(b)) => {
                a.extend(b);
                Expr::Or(a)
            }
            (Expr::Or(mut a), b) => {
                a.push(b);
                Expr::Or(a)
            }
            (a, b) => Expr::Or(vec![a, b]),
        }
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self + other`.
    #[allow(clippy::should_implement_trait)] // builder on owned Expr, not ops
    pub fn add(self, other: Expr) -> Expr {
        Expr::Arith {
            op: ArithOp::Add,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Arith {
            op: ArithOp::Sub,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self * other`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Arith {
            op: ArithOp::Mul,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self / other`.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Expr {
        Expr::Arith {
            op: ArithOp::Div,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self LIKE pattern`.
    pub fn like(self, pattern: impl Into<String>) -> Expr {
        Expr::Like {
            expr: Box::new(self),
            pattern: pattern.into(),
        }
    }

    /// `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull {
            expr: Box::new(self),
            negated: false,
        }
    }

    /// `self IS NOT NULL`.
    pub fn is_not_null(self) -> Expr {
        Expr::IsNull {
            expr: Box::new(self),
            negated: true,
        }
    }

    /// `self BETWEEN low AND high`.
    pub fn between(self, low: impl Into<Scalar>, high: impl Into<Scalar>) -> Expr {
        Expr::Between {
            expr: Box::new(self),
            low: low.into(),
            high: high.into(),
        }
    }

    /// Column names the expression reads (sorted, deduplicated).
    pub fn columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Col(name) => out.push(name.clone()),
            Expr::Lit(_) => {}
            Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::And(children) | Expr::Or(children) => {
                for c in children {
                    c.collect_columns(out);
                }
            }
            Expr::Not(inner) => inner.collect_columns(out),
            Expr::Like { expr, .. } | Expr::IsNull { expr, .. } | Expr::Between { expr, .. } => {
                expr.collect_columns(out)
            }
        }
    }

    /// Infer the output type against a schema.
    pub fn data_type(&self, schema: &Schema) -> Result<DataType> {
        Ok(match self {
            Expr::Col(name) => schema.field_by_name(name)?.dtype,
            Expr::Lit(s) => s.data_type().unwrap_or(DataType::Int64),
            Expr::Cmp { .. }
            | Expr::And(_)
            | Expr::Or(_)
            | Expr::Not(_)
            | Expr::Like { .. }
            | Expr::IsNull { .. }
            | Expr::Between { .. } => DataType::Bool,
            Expr::Arith { op, left, right } => {
                let l = left.data_type(schema)?;
                let r = right.data_type(schema)?;
                match (l, r) {
                    // Int/Int stays Int (SQL integer division included).
                    (DataType::Int64, DataType::Int64) => DataType::Int64,
                    (DataType::Float64, DataType::Int64)
                    | (DataType::Int64, DataType::Float64)
                    | (DataType::Float64, DataType::Float64) => DataType::Float64,
                    (l, r) => {
                        return Err(EngineError::Plan(format!(
                            "cannot apply {} to {l} and {r}",
                            op.symbol()
                        )))
                    }
                }
            }
        })
    }

    /// Evaluate against a single row of scalars — the tuple-at-a-time path
    /// the Volcano baseline uses (§1's "pull-based Volcano model"). Boolean
    /// NULLs come back as `Scalar::Null`.
    pub fn eval_row(&self, schema: &Schema, row: &[Scalar]) -> Result<Scalar> {
        Ok(match self {
            Expr::Col(name) => row[schema.index_of(name)?].clone(),
            Expr::Lit(v) => v.clone(),
            Expr::Cmp { op, left, right } => {
                let l = left.eval_row(schema, row)?;
                let r = right.eval_row(schema, row)?;
                if l.is_null() || r.is_null() {
                    Scalar::Null
                } else {
                    Scalar::Bool(op.matches(l.total_cmp(&r)))
                }
            }
            Expr::Arith { op, left, right } => {
                let l = left.eval_row(schema, row)?;
                let r = right.eval_row(schema, row)?;
                if l.is_null() || r.is_null() {
                    return Ok(Scalar::Null);
                }
                match (l.data_type(), r.data_type()) {
                    (Some(DataType::Int64), Some(DataType::Int64)) => {
                        let (x, y) = (l.as_int().unwrap(), r.as_int().unwrap());
                        match op {
                            ArithOp::Add => Scalar::Int(x.wrapping_add(y)),
                            ArithOp::Sub => Scalar::Int(x.wrapping_sub(y)),
                            ArithOp::Mul => Scalar::Int(x.wrapping_mul(y)),
                            ArithOp::Div if y == 0 => Scalar::Null,
                            ArithOp::Div => Scalar::Int(x.wrapping_div(y)),
                        }
                    }
                    _ => {
                        let (x, y) = (
                            l.as_float_lossy().ok_or_else(|| {
                                EngineError::Plan("non-numeric arithmetic".into())
                            })?,
                            r.as_float_lossy().ok_or_else(|| {
                                EngineError::Plan("non-numeric arithmetic".into())
                            })?,
                        );
                        match op {
                            ArithOp::Add => Scalar::Float(x + y),
                            ArithOp::Sub => Scalar::Float(x - y),
                            ArithOp::Mul => Scalar::Float(x * y),
                            ArithOp::Div if y == 0.0 => Scalar::Null,
                            ArithOp::Div => Scalar::Float(x / y),
                        }
                    }
                }
            }
            Expr::And(children) => {
                let mut any_null = false;
                for c in children {
                    match c.eval_row(schema, row)? {
                        Scalar::Bool(false) => return Ok(Scalar::Bool(false)),
                        Scalar::Bool(true) => {}
                        Scalar::Null => any_null = true,
                        other => {
                            return Err(EngineError::Plan(format!("AND over non-boolean {other}")))
                        }
                    }
                }
                if any_null {
                    Scalar::Null
                } else {
                    Scalar::Bool(true)
                }
            }
            Expr::Or(children) => {
                let mut any_null = false;
                for c in children {
                    match c.eval_row(schema, row)? {
                        Scalar::Bool(true) => return Ok(Scalar::Bool(true)),
                        Scalar::Bool(false) => {}
                        Scalar::Null => any_null = true,
                        other => {
                            return Err(EngineError::Plan(format!("OR over non-boolean {other}")))
                        }
                    }
                }
                if any_null {
                    Scalar::Null
                } else {
                    Scalar::Bool(false)
                }
            }
            Expr::Not(inner) => match inner.eval_row(schema, row)? {
                Scalar::Bool(b) => Scalar::Bool(!b),
                Scalar::Null => Scalar::Null,
                other => return Err(EngineError::Plan(format!("NOT over non-boolean {other}"))),
            },
            Expr::Like { expr, pattern } => match expr.eval_row(schema, row)? {
                Scalar::Null => Scalar::Null,
                Scalar::Str(s) => Scalar::Bool(LikePattern::compile(pattern).matches(&s)),
                other => return Err(EngineError::Plan(format!("LIKE over {other}"))),
            },
            Expr::IsNull { expr, negated } => {
                let v = expr.eval_row(schema, row)?;
                Scalar::Bool(v.is_null() != *negated)
            }
            Expr::Between { expr, low, high } => {
                let v = expr.eval_row(schema, row)?;
                if v.is_null() || low.is_null() || high.is_null() {
                    Scalar::Null
                } else {
                    Scalar::Bool(
                        v.total_cmp(low) != std::cmp::Ordering::Less
                            && v.total_cmp(high) != std::cmp::Ordering::Greater,
                    )
                }
            }
        })
    }

    /// Evaluate to a column of `batch.rows()` values.
    pub fn eval(&self, batch: &Batch) -> Result<Column> {
        match self {
            Expr::Col(name) => Ok(batch.column_by_name(name)?.clone()),
            Expr::Lit(value) => {
                let dtype = value.data_type().unwrap_or(DataType::Int64);
                let mut b = ColumnBuilder::new(dtype, batch.rows());
                for _ in 0..batch.rows() {
                    b.push(value.clone())?;
                }
                Ok(b.finish())
            }
            Expr::Arith { op, left, right } => {
                let l = left.eval(batch)?;
                let r = right.eval(batch)?;
                eval_arith(*op, &l, &r)
            }
            // Boolean-valued expressions evaluate via the predicate path;
            // rows where the result is NULL become NULL booleans.
            _ => {
                let (bits, valid) = self.eval_predicate_3v(batch)?;
                let mut b = ColumnBuilder::new(DataType::Bool, batch.rows());
                for i in 0..batch.rows() {
                    if valid.get(i) {
                        b.push(Scalar::Bool(bits.get(i)))?;
                    } else {
                        b.push_null();
                    }
                }
                Ok(b.finish())
            }
        }
    }

    /// Evaluate as a predicate: NULL collapses to false (SQL WHERE).
    pub fn eval_predicate(&self, batch: &Batch) -> Result<Bitmap> {
        let (bits, valid) = self.eval_predicate_3v(batch)?;
        Ok(bits.and(&valid))
    }

    /// Three-valued evaluation: `(truth, known)`. A row matches iff
    /// `truth & known`; it is NULL iff `!known`.
    fn eval_predicate_3v(&self, batch: &Batch) -> Result<(Bitmap, Bitmap)> {
        let rows = batch.rows();
        match self {
            Expr::Lit(Scalar::Bool(b)) => Ok((
                if *b {
                    Bitmap::ones(rows)
                } else {
                    Bitmap::zeros(rows)
                },
                Bitmap::ones(rows),
            )),
            Expr::Lit(Scalar::Null) => Ok((Bitmap::zeros(rows), Bitmap::zeros(rows))),
            Expr::Col(_) => {
                let c = self.eval(batch)?;
                let values = c.bool_values()?.clone();
                let valid = c.validity().cloned().unwrap_or_else(|| Bitmap::ones(rows));
                Ok((values, valid))
            }
            Expr::Cmp { op, left, right } => {
                let l = left.eval(batch)?;
                let r = right.eval(batch)?;
                if l.len() != r.len() {
                    return Err(EngineError::Internal("cmp length mismatch".into()));
                }
                let mut truth = Bitmap::zeros(rows);
                let mut known = Bitmap::ones(rows);
                for i in 0..rows {
                    let (a, b) = (l.scalar_at(i), r.scalar_at(i));
                    if a.is_null() || b.is_null() {
                        known.clear(i);
                    } else if op.matches(a.total_cmp(&b)) {
                        truth.set(i);
                    }
                }
                Ok((truth, known))
            }
            Expr::And(children) => {
                // Kleene AND: false dominates NULL.
                let mut truth = Bitmap::ones(rows);
                let mut known_false = Bitmap::zeros(rows);
                let mut any_unknown = Bitmap::zeros(rows);
                for c in children {
                    let (t, k) = c.eval_predicate_3v(batch)?;
                    known_false = known_false.or(&t.not().and(&k));
                    any_unknown = any_unknown.or(&k.not());
                    truth = truth.and(&t.and(&k));
                }
                let known = known_false.or(&any_unknown.not());
                Ok((truth, known))
            }
            Expr::Or(children) => {
                // Kleene OR: true dominates NULL.
                let mut truth = Bitmap::zeros(rows);
                let mut any_unknown = Bitmap::zeros(rows);
                for c in children {
                    let (t, k) = c.eval_predicate_3v(batch)?;
                    truth = truth.or(&t.and(&k));
                    any_unknown = any_unknown.or(&k.not());
                }
                let known = truth.or(&any_unknown.not());
                Ok((truth, known))
            }
            Expr::Not(inner) => {
                let (t, k) = inner.eval_predicate_3v(batch)?;
                Ok((t.not().and(&k), k))
            }
            Expr::Like { expr, pattern } => {
                let c = expr.eval(batch)?;
                if c.data_type() != DataType::Utf8 {
                    return Err(EngineError::Plan(format!(
                        "LIKE requires utf8, got {}",
                        c.data_type()
                    )));
                }
                let compiled = LikePattern::compile(pattern);
                let mut truth = Bitmap::zeros(rows);
                let mut known = Bitmap::ones(rows);
                for i in 0..rows {
                    if c.is_null(i) {
                        known.clear(i);
                    } else if compiled.matches(c.str_at(i)) {
                        truth.set(i);
                    }
                }
                Ok((truth, known))
            }
            Expr::IsNull { expr, negated } => {
                let c = expr.eval(batch)?;
                let truth = Bitmap::from_iter((0..rows).map(|i| c.is_null(i) != *negated));
                Ok((truth, Bitmap::ones(rows)))
            }
            Expr::Between { expr, low, high } => {
                let c = expr.eval(batch)?;
                let mut truth = Bitmap::zeros(rows);
                let mut known = Bitmap::ones(rows);
                for i in 0..rows {
                    let v = c.scalar_at(i);
                    if v.is_null() || low.is_null() || high.is_null() {
                        known.clear(i);
                    } else if v.total_cmp(low) != std::cmp::Ordering::Less
                        && v.total_cmp(high) != std::cmp::Ordering::Greater
                    {
                        truth.set(i);
                    }
                }
                Ok((truth, known))
            }
            Expr::Lit(other) => Err(EngineError::Plan(format!(
                "literal {other} is not a predicate"
            ))),
            Expr::Arith { .. } => Err(EngineError::Plan(
                "arithmetic expression used as predicate".into(),
            )),
        }
    }
}

fn eval_arith(op: ArithOp, l: &Column, r: &Column) -> Result<Column> {
    use DataType::*;
    let rows = l.len();
    let out_type = match (l.data_type(), r.data_type()) {
        (Int64, Int64) => Int64,
        (Int64, Float64) | (Float64, Int64) | (Float64, Float64) => Float64,
        (a, b) => {
            return Err(EngineError::Plan(format!(
                "cannot apply {} to {a} and {b}",
                op.symbol()
            )))
        }
    };
    let mut builder = ColumnBuilder::new(out_type, rows);
    for i in 0..rows {
        let (a, b) = (l.scalar_at(i), r.scalar_at(i));
        if a.is_null() || b.is_null() {
            builder.push_null();
            continue;
        }
        match out_type {
            Int64 => {
                let (x, y) = (a.as_int().unwrap(), b.as_int().unwrap());
                let v = match op {
                    ArithOp::Add => x.wrapping_add(y),
                    ArithOp::Sub => x.wrapping_sub(y),
                    ArithOp::Mul => x.wrapping_mul(y),
                    ArithOp::Div => {
                        if y == 0 {
                            builder.push_null(); // SQL: division by zero -> NULL
                            continue;
                        }
                        x.wrapping_div(y)
                    }
                };
                builder.push(Scalar::Int(v))?;
            }
            Float64 => {
                let (x, y) = (a.as_float_lossy().unwrap(), b.as_float_lossy().unwrap());
                let v = match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => {
                        if y == 0.0 {
                            builder.push_null();
                            continue;
                        }
                        x / y
                    }
                };
                builder.push(Scalar::Float(v))?;
            }
            _ => unreachable!(),
        }
    }
    Ok(builder.finish())
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(name) => write!(f, "{name}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Cmp { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Arith { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::And(children) => {
                write!(f, "(")?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Expr::Or(children) => {
                write!(f, "(")?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Expr::Not(inner) => write!(f, "(NOT {inner})"),
            Expr::Like { expr, pattern } => write!(f, "({expr} LIKE '{pattern}')"),
            Expr::IsNull { expr, negated } => {
                if *negated {
                    write!(f, "({expr} IS NOT NULL)")
                } else {
                    write!(f, "({expr} IS NULL)")
                }
            }
            Expr::Between { expr, low, high } => {
                write!(f, "({expr} BETWEEN {low} AND {high})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_data::batch::batch_of;

    fn sample() -> Batch {
        batch_of(vec![
            ("a", Column::from_i64(vec![1, 2, 3, 4])),
            (
                "b",
                Column::from_opt_i64(&[Some(10), None, Some(30), Some(40)]),
            ),
            ("s", Column::from_strs(&["foo", "bar", "foobar", "baz"])),
            ("f", Column::from_f64(vec![0.5, 1.5, 2.5, 3.5])),
        ])
    }

    fn matches(e: &Expr) -> Vec<usize> {
        e.eval_predicate(&sample()).unwrap().iter_ones().collect()
    }

    #[test]
    fn comparisons() {
        assert_eq!(matches(&col("a").gt(lit(2))), vec![2, 3]);
        assert_eq!(matches(&col("a").eq(lit(1))), vec![0]);
        assert_eq!(matches(&col("a").le(col("b").div(lit(10)))), vec![0, 2, 3]);
    }

    #[test]
    fn null_collapses_to_false() {
        // b is NULL in row 1: neither b > 0 nor NOT(b > 0) matches it.
        assert_eq!(matches(&col("b").gt(lit(0))), vec![0, 2, 3]);
        assert_eq!(matches(&col("b").gt(lit(0)).not()), vec![]);
        assert_eq!(matches(&col("b").is_null()), vec![1]);
        assert_eq!(matches(&col("b").is_not_null()), vec![0, 2, 3]);
    }

    #[test]
    fn kleene_and_or() {
        // (b > 100) is false,false(null),false,false -> AND with anything false.
        let p = col("b").gt(lit(100)).and(col("a").gt(lit(0)));
        assert_eq!(matches(&p), vec![]);
        // OR: true dominates NULL: a>3 OR b>0 -> row3 true, row1 has null b but a=2<3 -> null -> false.
        let q = col("a").gt(lit(3)).or(col("b").gt(lit(0)));
        assert_eq!(matches(&q), vec![0, 2, 3]);
    }

    #[test]
    fn arithmetic_types_and_nulls() {
        let c = col("a").add(col("b")).eval(&sample()).unwrap();
        assert_eq!(c.data_type(), DataType::Int64);
        assert_eq!(c.scalar_at(0), Scalar::Int(11));
        assert!(c.is_null(1));
        let f = col("a").mul(col("f")).eval(&sample()).unwrap();
        assert_eq!(f.data_type(), DataType::Float64);
        assert_eq!(f.scalar_at(3), Scalar::Float(14.0));
    }

    #[test]
    fn division_by_zero_is_null() {
        let c = col("a").div(lit(0)).eval(&sample()).unwrap();
        assert_eq!(c.null_count(), 4);
        let f = col("f").div(lit(0.0)).eval(&sample()).unwrap();
        assert_eq!(f.null_count(), 4);
    }

    #[test]
    fn like_and_between() {
        assert_eq!(matches(&col("s").like("foo%")), vec![0, 2]);
        assert_eq!(matches(&col("a").between(2, 3)), vec![1, 2]);
    }

    #[test]
    fn boolean_expr_as_column_keeps_nulls() {
        let c = col("b").gt(lit(0)).eval(&sample()).unwrap();
        assert_eq!(c.data_type(), DataType::Bool);
        assert_eq!(c.scalar_at(0), Scalar::Bool(true));
        assert!(c.is_null(1), "NULL comparison must stay NULL as a value");
    }

    #[test]
    fn type_inference() {
        let schema = sample().schema().clone();
        assert_eq!(
            col("a").add(lit(1)).data_type(&schema).unwrap(),
            DataType::Int64
        );
        assert_eq!(
            col("a").add(col("f")).data_type(&schema).unwrap(),
            DataType::Float64
        );
        assert_eq!(
            col("a").gt(lit(0)).data_type(&schema).unwrap(),
            DataType::Bool
        );
        assert!(col("s").add(lit(1)).data_type(&schema).is_err());
        assert!(col("ghost").data_type(&schema).is_err());
    }

    #[test]
    fn columns_collected_sorted() {
        let e = col("z").gt(lit(0)).and(col("a").eq(col("m")));
        assert_eq!(e.columns(), vec!["a", "m", "z"]);
    }

    #[test]
    fn display_roundtrippable_text() {
        let e = col("a").gt(lit(2)).and(col("s").like("f%"));
        assert_eq!(e.to_string(), "((a > 2) AND (s LIKE 'f%'))");
    }

    #[test]
    fn and_flattening() {
        let e = col("a")
            .gt(lit(0))
            .and(col("a").lt(lit(9)))
            .and(col("a").ne(lit(5)));
        match e {
            Expr::And(children) => assert_eq!(children.len(), 3),
            other => panic!("expected flat AND, got {other}"),
        }
    }
}
