//! The placed pipeline-graph IR: one compilation substrate between
//! planning and every execution/simulation path.
//!
//! A [`PhysicalPlan`] compiles into a [`PipelineGraph`]: pipelines are
//! maximal streaming chains, cut at pipeline breakers (final/merge
//! aggregation, sort, top-k, join build) and at device-placement
//! boundaries. Every node carries its placement, an instantiable
//! [`OperatorSpec`], the fabric [`OpClass`] it maps to, and the cost
//! model's estimated selectivity. Edges are typed: a [`EdgeKind::Local`]
//! handoff stays a function call inside one driver, while a
//! [`EdgeKind::Fabric`] edge crosses devices — real execution moves
//! batches through a credit-bounded channel (`queue_capacity` chunks,
//! §7.1) and the flow simulator replays the same stage chain in simulated
//! time via [`PipelineGraph::to_flow_specs`].
//!
//! The push executor, the morsel-parallel driver, `scheduler::flow_pipeline`
//! and the bench experiments all consume this graph instead of re-walking
//! `PhysNode` trees.

pub mod verify;

pub use verify::VerifyError;

use df_codec::edge::EdgeEncoding;
use df_data::{Batch, SchemaRef};
use df_fabric::flow::{PipelineSpec, StageSpec};
use df_fabric::topology::Route;
use df_fabric::{DeviceId, OpClass, Topology};
use df_storage::smart::ScanRequest;

use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::logical::{AggCall, JoinType};
use crate::ops::{
    AggMode, FilterOp, HashAggOp, HashJoinOp, LimitOp, Operator, ProjectOp, SortOp, TopKOp,
};
use crate::optimizer::cost::{estimate_node, node_input_bytes, op_class_of, reduction_of};
use crate::optimizer::Profiles;
use crate::physical::{PhysNode, PhysicalPlan};
use crate::streaming::{StreamSourceSpec, WindowAggOp, WindowSpec};

/// Default credit budget of a pipeline edge, in chunks (§7.1). Matches the
/// flow simulator's default stage queue.
pub const DEFAULT_QUEUE_CAPACITY: usize = 4;

/// An instantiable description of one streaming operator. This is the
/// single place operator instantiation lives: every executor builds its
/// operators from these specs.
#[derive(Debug, Clone)]
pub enum OperatorSpec {
    /// Row filter.
    Filter {
        /// Predicate over the input schema.
        predicate: Expr,
        /// Evaluate via the kernel VM instead of the native path.
        use_kernel: bool,
        /// Input schema.
        input_schema: SchemaRef,
    },
    /// Expression projection.
    Project {
        /// `(expr, name)` pairs.
        exprs: Vec<(Expr, String)>,
        /// Output schema.
        schema: SchemaRef,
    },
    /// Hash aggregation.
    Aggregate {
        /// Group-by columns.
        group_by: Vec<String>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
        /// Partial, final, or merge.
        mode: AggMode,
        /// Input schema.
        input_schema: SchemaRef,
        /// Final output schema of the logical aggregate.
        final_schema: SchemaRef,
    },
    /// Full sort (a pipeline breaker).
    Sort {
        /// `(column, ascending)` keys.
        keys: Vec<(String, bool)>,
        /// Input schema.
        input_schema: SchemaRef,
    },
    /// Fused sort+limit.
    TopK {
        /// `(column, ascending)` keys.
        keys: Vec<(String, bool)>,
        /// Rows kept.
        k: u64,
        /// Input schema.
        input_schema: SchemaRef,
    },
    /// Row limit.
    Limit {
        /// Cap.
        n: u64,
        /// Input schema.
        input_schema: SchemaRef,
    },
    /// Event-time windowed hash aggregation: rows land in tumbling or
    /// sliding windows keyed by an `Int64` timestamp column; a window only
    /// drains when the input frontier passes its bound (punctuation-gated,
    /// so it is *not* a pipeline breaker — it streams closed windows).
    WindowAggregate {
        /// Timestamp column the windows are keyed on (ignored in
        /// [`AggMode::Merge`], where the input leads with `wstart`).
        ts_col: String,
        /// Tumbling or sliding window extent.
        window: WindowSpec,
        /// Group-by columns (within each window).
        group_by: Vec<String>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
        /// Partial, final, or merge.
        mode: AggMode,
        /// Input schema.
        input_schema: SchemaRef,
        /// Final per-window output schema of the logical aggregate,
        /// *without* the `wstart` column the operator prepends.
        final_schema: SchemaRef,
    },
    /// The probe side of a hash join; the build side arrives over the
    /// node's `build_edge`.
    JoinProbe {
        /// `(build column, probe column)` pairs.
        on: Vec<(String, String)>,
        /// Inner or left-outer.
        join_type: JoinType,
        /// Schema of the build input.
        build_schema: SchemaRef,
        /// Joined output schema.
        schema: SchemaRef,
    },
}

impl OperatorSpec {
    /// Short span label (matches the executor's historical labels).
    pub fn label(&self) -> &'static str {
        match self {
            OperatorSpec::Filter { .. } => "filter",
            OperatorSpec::Project { .. } => "project",
            OperatorSpec::Aggregate { .. } => "aggregate",
            OperatorSpec::Sort { .. } => "sort",
            OperatorSpec::TopK { .. } => "topk",
            OperatorSpec::Limit { .. } => "limit",
            OperatorSpec::WindowAggregate { .. } => "window-agg",
            OperatorSpec::JoinProbe { .. } => "hash-join",
        }
    }

    /// True for specs that buffer their whole input before emitting output
    /// (the HyPer-style pipeline breakers). Mirrors the node-level
    /// `is_breaker` the compiler cuts on, so the verifier can assert
    /// breakers only ever sit at a pipeline's tip.
    pub fn is_breaker(&self) -> bool {
        matches!(
            self,
            OperatorSpec::Sort { .. }
                | OperatorSpec::TopK { .. }
                | OperatorSpec::Aggregate {
                    mode: AggMode::Final | AggMode::Merge,
                    ..
                }
        )
    }

    /// Output schema of the operator.
    pub fn output_schema(&self) -> SchemaRef {
        match self {
            OperatorSpec::Filter { input_schema, .. }
            | OperatorSpec::Sort { input_schema, .. }
            | OperatorSpec::TopK { input_schema, .. }
            | OperatorSpec::Limit { input_schema, .. } => input_schema.clone(),
            OperatorSpec::Project { schema, .. } | OperatorSpec::JoinProbe { schema, .. } => {
                schema.clone()
            }
            OperatorSpec::Aggregate {
                group_by,
                aggs,
                mode,
                input_schema,
                final_schema,
            } => match mode {
                AggMode::Partial { .. } => {
                    crate::ops::aggregate::partial_schema(group_by, aggs, input_schema)
                        .expect("validated at plan build")
                        .into_ref()
                }
                _ => final_schema.clone(),
            },
            OperatorSpec::WindowAggregate {
                group_by,
                aggs,
                mode,
                input_schema,
                final_schema,
                ..
            } => crate::streaming::window_output_schema(
                group_by,
                aggs,
                *mode,
                input_schema,
                final_schema,
            )
            .expect("validated at plan build"),
        }
    }

    /// Instantiate the runtime operator.
    pub fn instantiate(&self) -> Result<RuntimeOp> {
        Ok(match self {
            OperatorSpec::Filter {
                predicate,
                use_kernel,
                input_schema,
            } => {
                let op = if *use_kernel {
                    FilterOp::kernel(predicate, input_schema.clone())?
                } else {
                    FilterOp::host(predicate.clone(), input_schema.clone())
                };
                RuntimeOp::Std(Box::new(op))
            }
            OperatorSpec::Project { exprs, schema } => {
                RuntimeOp::Std(Box::new(ProjectOp::new(exprs.clone(), schema.clone())))
            }
            OperatorSpec::Aggregate {
                group_by,
                aggs,
                mode,
                input_schema,
                final_schema,
            } => RuntimeOp::Std(Box::new(HashAggOp::new(
                group_by.clone(),
                aggs.clone(),
                *mode,
                input_schema,
                final_schema.clone(),
            )?)),
            OperatorSpec::Sort { keys, input_schema } => {
                RuntimeOp::Std(Box::new(SortOp::new(keys.clone(), input_schema.clone())))
            }
            OperatorSpec::TopK {
                keys,
                k,
                input_schema,
            } => RuntimeOp::Std(Box::new(TopKOp::new(
                keys.clone(),
                *k,
                input_schema.clone(),
            ))),
            OperatorSpec::Limit { n, input_schema } => {
                RuntimeOp::Std(Box::new(LimitOp::new(*n, input_schema.clone())))
            }
            OperatorSpec::WindowAggregate {
                ts_col,
                window,
                group_by,
                aggs,
                mode,
                input_schema,
                final_schema,
            } => RuntimeOp::Window(WindowAggOp::new(
                ts_col,
                *window,
                group_by.clone(),
                aggs.clone(),
                *mode,
                input_schema,
                final_schema.clone(),
            )?),
            OperatorSpec::JoinProbe {
                on,
                join_type,
                build_schema,
                schema,
            } => RuntimeOp::Join(HashJoinOp::with_type(
                on.clone(),
                *join_type,
                build_schema.clone(),
                schema.clone(),
            )),
        })
    }

    /// Instantiate as a plain streaming operator (no build input). Errors
    /// for [`OperatorSpec::JoinProbe`].
    pub fn instantiate_streaming(&self) -> Result<Box<dyn Operator>> {
        match self.instantiate()? {
            RuntimeOp::Std(op) => Ok(op),
            RuntimeOp::Window(op) => Ok(Box::new(op)),
            RuntimeOp::Join(_) => Err(EngineError::Internal(
                "join probe needs a build edge; use instantiate()".into(),
            )),
        }
    }
}

/// A live operator driven by an executor.
pub enum RuntimeOp {
    /// Any unary streaming operator.
    Std(Box<dyn Operator>),
    /// A frontier-gated window aggregate: executors call
    /// [`RuntimeOp::advance`] at punctuation to drain closed windows.
    Window(WindowAggOp),
    /// A hash join (probe streaming; build fed via [`RuntimeOp::build`]).
    Join(HashJoinOp),
}

impl RuntimeOp {
    /// Consume one batch, producing zero or more outputs.
    pub fn push(&mut self, batch: Batch) -> Result<Vec<Batch>> {
        match self {
            RuntimeOp::Std(op) => op.push(batch),
            RuntimeOp::Window(op) => op.push(batch),
            RuntimeOp::Join(op) => op.push(batch),
        }
    }

    /// End of input: flush buffered state.
    pub fn finish(&mut self) -> Result<Vec<Batch>> {
        match self {
            RuntimeOp::Std(op) => op.finish(),
            RuntimeOp::Window(op) => op.finish(),
            RuntimeOp::Join(op) => op.finish(),
        }
    }

    /// Feed one batch to the join build side.
    pub fn build(&mut self, batch: Batch) -> Result<()> {
        match self {
            RuntimeOp::Std(_) | RuntimeOp::Window(_) => Err(EngineError::Internal(
                "build() on a non-join operator".into(),
            )),
            RuntimeOp::Join(op) => op.build(batch),
        }
    }

    /// Advance the operator's input frontier to `frontier`, draining every
    /// window whose bound it passed. No-op (empty) for non-window
    /// operators: they are either stateless or bounded-input.
    pub fn advance(&mut self, frontier: i64) -> Result<Vec<(i64, Batch)>> {
        match self {
            RuntimeOp::Window(op) => op.advance(frontier),
            _ => Ok(Vec::new()),
        }
    }
}

/// Where a pipeline's batches come from.
#[derive(Debug, Clone)]
pub enum PipelineSource {
    /// A storage scan with its pushed-down request.
    Scan {
        /// Table name.
        table: String,
        /// Pushed-down request (executes at the storage server).
        request: ScanRequest,
        /// Output schema of the request.
        schema: SchemaRef,
        /// Placement of the scan.
        device: Option<DeviceId>,
    },
    /// In-memory batches.
    Values {
        /// The data.
        batches: Vec<Batch>,
        /// Shared schema.
        schema: SchemaRef,
        /// Placement.
        device: Option<DeviceId>,
    },
    /// A seed-deterministic (possibly unbounded) streaming source. The
    /// generator emits timestamp-ascending log batches and punctuates its
    /// frontier every [`StreamSourceSpec::punct_every`] batches; executors
    /// refuse specs left unbounded — bound them first with
    /// [`PipelineGraph::with_stream_horizon`].
    Stream {
        /// Generator parameters (seed, rate, horizon).
        spec: StreamSourceSpec,
        /// Output schema ([`StreamSourceSpec::schema`]).
        schema: SchemaRef,
        /// Placement of the generator (the ingest point, e.g. NIC-Rx).
        device: Option<DeviceId>,
    },
    /// Output of an upstream pipeline, arriving over an edge.
    Edge {
        /// Index into [`PipelineGraph::edges`].
        edge: usize,
    },
    /// One consumer fragment of a scale-out [`Exchange`]: the merged
    /// partition-`index` streams of every producer pipeline, arriving
    /// over the exchange's [`EdgeRole::Shuffle`] edges.
    Exchange {
        /// Index into [`PipelineGraph::exchanges`].
        exchange: usize,
        /// Which consumer fragment this pipeline is (`0..parts`).
        index: usize,
        /// Schema of the redistributed stream.
        schema: SchemaRef,
        /// Placement where this fragment's partitions land.
        device: Option<DeviceId>,
    },
}

impl PipelineSource {
    /// Placement of the source (None for edge sources: the producer
    /// pipeline's tip carries the placement).
    pub fn device(&self) -> Option<DeviceId> {
        match self {
            PipelineSource::Scan { device, .. }
            | PipelineSource::Values { device, .. }
            | PipelineSource::Stream { device, .. }
            | PipelineSource::Exchange { device, .. } => *device,
            PipelineSource::Edge { .. } => None,
        }
    }
}

/// One operator within a pipeline, with placement and cost annotations.
#[derive(Debug, Clone)]
pub struct PipelineOp {
    /// How to instantiate the operator.
    pub spec: OperatorSpec,
    /// Placement (None = unplaced, treated as the session CPU).
    pub device: Option<DeviceId>,
    /// Fabric op class (service rates, placement legality).
    pub op_class: OpClass,
    /// Estimated output bytes per input byte (cost model).
    pub selectivity: f64,
    /// For [`OperatorSpec::JoinProbe`]: the edge delivering the build side.
    pub build_edge: Option<usize>,
}

/// A maximal streaming chain: a source and the operators it flows through,
/// leaf-to-root, with no breaker or placement boundary inside.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Index in [`PipelineGraph::pipelines`].
    pub id: usize,
    /// Batch source.
    pub source: PipelineSource,
    /// Operators in leaf-to-root order (may be empty).
    pub ops: Vec<PipelineOp>,
    /// Estimated bytes the source produces (flow-sim source size). Zero
    /// for edge-sourced pipelines: their bytes come from upstream.
    pub source_bytes: u64,
    /// Fabric op class of the source stage.
    pub source_class: OpClass,
    /// Estimated output/input byte ratio of the source stage.
    pub source_selectivity: f64,
}

impl Pipeline {
    /// Placement of the pipeline's tip (last op, else the source).
    pub fn tip_device(&self) -> Option<DeviceId> {
        self.ops
            .last()
            .map(|op| op.device)
            .unwrap_or_else(|| self.source.device())
    }
}

/// How an inter-pipeline edge moves batches.
#[derive(Debug, Clone)]
pub enum EdgeKind {
    /// Same placement: a plain in-process handoff.
    Local,
    /// Crosses a device boundary: batches flow through a credit-bounded
    /// channel and are charged at wire size when wire options are set.
    Fabric {
        /// Resolved fabric route, when a topology was supplied.
        route: Option<Route>,
    },
}

/// What the consumer does with the edge's batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeRole {
    /// Streaming input of the consumer pipeline.
    Input,
    /// Build side of a hash join in the consumer pipeline.
    JoinBuild,
    /// One producer→consumer pair of an [`Exchange`]: carries the
    /// consumer's partition of that producer's output.
    Shuffle,
}

/// How an [`Exchange`] redistributes rows across its consumer fragments.
#[derive(Debug, Clone, PartialEq)]
pub enum ExchangeKind {
    /// Rows are hash-partitioned on `keys` with the canonical seeded
    /// partitioner ([`df_data::partition`]), so every device computes the
    /// same assignment for the same row.
    Hash {
        /// Partition key columns (must exist in the producer schema).
        keys: Vec<String>,
        /// Hash seed; producers of one exchange must agree on it.
        seed: u64,
    },
    /// Every producer batch is replicated to every consumer.
    Broadcast,
    /// All producer streams are concatenated into a single consumer
    /// (`parts` must be 1).
    Gather,
}

impl ExchangeKind {
    /// Short label for explain/trace output.
    pub fn label(&self) -> &'static str {
        match self {
            ExchangeKind::Hash { .. } => "hash",
            ExchangeKind::Broadcast => "broadcast",
            ExchangeKind::Gather => "gather",
        }
    }
}

/// A scale-out repartition point: `producers.len()` producer pipelines
/// fan out into `parts` consumer pipelines through a full matrix of
/// [`EdgeRole::Shuffle`] edges. The partition function runs at each
/// producer's tip; each pair edge carries its own resolved route (and,
/// like any fabric edge, may carry a codec), so the movement ledger and
/// the flow simulator see real per-link bytes for all N² crossings.
#[derive(Debug, Clone)]
pub struct Exchange {
    /// Index in [`PipelineGraph::exchanges`].
    pub id: usize,
    /// How rows are redistributed.
    pub kind: ExchangeKind,
    /// Number of consumer fragments.
    pub parts: usize,
    /// Producer pipeline ids.
    pub producers: Vec<usize>,
    /// Consumer pipeline ids, indexed by partition index.
    pub consumers: Vec<usize>,
    /// Shuffle edge ids, row-major: `edges[i * parts + j]` connects
    /// `producers[i]` to `consumers[j]`.
    pub edges: Vec<usize>,
    /// Schema of the redistributed stream.
    pub schema: SchemaRef,
}

impl Exchange {
    /// The shuffle edge connecting producer `i` to consumer `j`.
    pub fn edge(&self, producer: usize, consumer: usize) -> usize {
        self.edges[producer * self.parts + consumer]
    }
}

/// One half of an edge's codec pair: where the encode (or decode) runs
/// and the byte ratio the cost model prices it at.
///
/// A non-plain [`PipelineEdge::encoding`] is realized as a `Compress`
/// stage pinned to the producer tip and a `Decompress` stage pinned to
/// the consumer — the §2.2 "compression as an explicit, offloadable
/// plan stage". [`PipelineGraph::verify`] rejects unpaired or
/// illegally-placed stages; [`PipelineGraph::to_flow_specs`] prices them
/// into the flow simulation (codec cycles at the device's service rate,
/// downstream link bytes scaled by `ratio`).
#[derive(Debug, Clone, PartialEq)]
pub struct CodecStage {
    /// Device hosting the codec work (None = the session CPU).
    pub device: Option<DeviceId>,
    /// [`OpClass::Compress`] or [`OpClass::Decompress`].
    pub op_class: OpClass,
    /// Estimated encoded/plain byte ratio of the edge's traffic.
    pub ratio: f64,
}

/// A typed handoff between two pipelines.
#[derive(Debug, Clone)]
pub struct PipelineEdge {
    /// Index in [`PipelineGraph::edges`].
    pub id: usize,
    /// Producer pipeline.
    pub from: usize,
    /// Consumer pipeline.
    pub to: usize,
    /// Local handoff or fabric crossing.
    pub kind: EdgeKind,
    /// Input stream or join build.
    pub role: EdgeRole,
    /// Credit budget in chunks (§7.1) for fabric edges.
    pub queue_capacity: usize,
    /// Producer tip placement.
    pub from_device: Option<DeviceId>,
    /// Consumer placement (the op the edge feeds).
    pub to_device: Option<DeviceId>,
    /// True when the edge carries punctuation: the producer spine is fed
    /// by a [`PipelineSource::Stream`], so frontier markers are forwarded
    /// inline with the data and the consumer may gate windows on them.
    /// Set by the compiler on every stream-fed [`EdgeRole::Input`] edge
    /// (Local and Fabric alike); [`PipelineGraph::verify`] rejects a
    /// stream-fed input edge that drops its punctuation.
    pub punctuated: bool,
    /// How batches are encoded on the wire. `Plain` (the compile default)
    /// charges raw batch bytes and needs no codec stages.
    pub encoding: EdgeEncoding,
    /// Encode stage at the producer tip (paired with `decompress`).
    pub compress: Option<CodecStage>,
    /// Decode stage at the consumer (paired with `compress`).
    pub decompress: Option<CodecStage>,
}

impl PipelineEdge {
    /// True when the edge crosses a device boundary.
    pub fn crosses_devices(&self) -> bool {
        matches!(self.kind, EdgeKind::Fabric { .. })
    }

    /// True when the edge carries a non-plain encoding with its codec pair.
    pub fn has_codec(&self) -> bool {
        !self.encoding.is_plain()
    }
}

/// The compiled graph of placed pipelines.
#[derive(Debug, Clone)]
pub struct PipelineGraph {
    /// All pipelines; edges reference them by index.
    pub pipelines: Vec<Pipeline>,
    /// All inter-pipeline edges.
    pub edges: Vec<PipelineEdge>,
    /// All scale-out exchanges; their shuffle edges live in `edges`.
    pub exchanges: Vec<Exchange>,
    /// The pipeline producing query output.
    pub root: usize,
    /// Default credit budget applied to edges and derived flow stages.
    pub queue_capacity: usize,
}

/// The byte share of one producer's output that lands on consumer
/// `index` under the exchange's partition function.
fn exchange_share(ex: &Exchange, producer_out: f64, index: usize) -> f64 {
    match &ex.kind {
        ExchangeKind::Hash { .. } => producer_out / ex.parts.max(1) as f64,
        ExchangeKind::Broadcast => producer_out,
        ExchangeKind::Gather => {
            if index == 0 {
                producer_out
            } else {
                0.0
            }
        }
    }
}

/// True for operators that buffer their whole input before producing
/// output — the HyPer-style pipeline breakers. Partial aggregation
/// streams (it flushes incrementally under memory pressure), so it does
/// not break its pipeline; join builds break via their own edge.
fn is_breaker(node: &PhysNode) -> bool {
    matches!(
        node,
        PhysNode::Aggregate {
            mode: AggMode::Final | AggMode::Merge,
            ..
        } | PhysNode::Sort { .. }
            | PhysNode::TopK { .. }
    )
}

fn spec_of(node: &PhysNode) -> OperatorSpec {
    match node {
        PhysNode::Filter {
            input,
            predicate,
            use_kernel,
            ..
        } => OperatorSpec::Filter {
            predicate: predicate.clone(),
            use_kernel: *use_kernel,
            input_schema: input.schema(),
        },
        PhysNode::Project { exprs, schema, .. } => OperatorSpec::Project {
            exprs: exprs.clone(),
            schema: schema.clone(),
        },
        PhysNode::Aggregate {
            input,
            group_by,
            aggs,
            mode,
            final_schema,
            ..
        } => OperatorSpec::Aggregate {
            group_by: group_by.clone(),
            aggs: aggs.clone(),
            mode: *mode,
            input_schema: input.schema(),
            final_schema: final_schema.clone(),
        },
        PhysNode::Sort { input, keys, .. } => OperatorSpec::Sort {
            keys: keys.clone(),
            input_schema: input.schema(),
        },
        PhysNode::TopK { input, keys, k, .. } => OperatorSpec::TopK {
            keys: keys.clone(),
            k: *k,
            input_schema: input.schema(),
        },
        PhysNode::Limit { input, n } => OperatorSpec::Limit {
            n: *n,
            input_schema: input.schema(),
        },
        PhysNode::HashJoin {
            build,
            on,
            join_type,
            schema,
            ..
        } => OperatorSpec::JoinProbe {
            on: on.clone(),
            join_type: *join_type,
            build_schema: build.schema(),
            schema: schema.clone(),
        },
        PhysNode::WindowAggregate {
            input,
            ts_col,
            window,
            group_by,
            aggs,
            mode,
            final_schema,
            ..
        } => OperatorSpec::WindowAggregate {
            ts_col: ts_col.clone(),
            window: *window,
            group_by: group_by.clone(),
            aggs: aggs.clone(),
            mode: *mode,
            input_schema: input.schema(),
            final_schema: final_schema.clone(),
        },
        PhysNode::StorageScan { .. }
        | PhysNode::Values { .. }
        | PhysNode::StreamScan { .. }
        | PhysNode::Exchange { .. } => {
            unreachable!("leaves become pipeline sources, not ops")
        }
    }
}

struct Compiler<'a> {
    graph: PipelineGraph,
    profiles: &'a Profiles,
    topology: Option<&'a Topology>,
    /// Exchange group id → index into `graph.exchanges` (so every
    /// fragment of one [`PhysNode::Exchange`] group shares one
    /// descriptor and its producers compile exactly once).
    exchange_groups: std::collections::HashMap<usize, usize>,
}

impl Compiler<'_> {
    fn new_pipeline(&mut self, source: PipelineSource) -> usize {
        let id = self.graph.pipelines.len();
        self.graph.pipelines.push(Pipeline {
            id,
            source,
            ops: Vec::new(),
            source_bytes: 0,
            source_class: OpClass::Scan,
            source_selectivity: 1.0,
        });
        id
    }

    fn add_edge(
        &mut self,
        from: usize,
        to: usize,
        role: EdgeRole,
        to_device: Option<DeviceId>,
    ) -> usize {
        let from_device = self.graph.pipelines[from].tip_device();
        let kind = match (from_device, to_device) {
            (Some(a), Some(b)) if a != b => EdgeKind::Fabric {
                route: self.topology.and_then(|t| t.route(a, b)),
            },
            _ => EdgeKind::Local,
        };
        let id = self.graph.edges.len();
        self.graph.edges.push(PipelineEdge {
            id,
            from,
            to,
            kind,
            role,
            queue_capacity: self.graph.queue_capacity,
            from_device,
            to_device,
            // Fixed up after compilation by `mark_punctuated`, once every
            // pipeline's source is known.
            punctuated: false,
            encoding: EdgeEncoding::Plain,
            compress: None,
            decompress: None,
        });
        id
    }

    /// Cut the chain below `node` if its child is a breaker or the handoff
    /// crosses a device boundary; returns the pipeline `node` extends.
    fn maybe_cut(&mut self, pid: usize, child: &PhysNode, to_device: Option<DeviceId>) -> usize {
        let from_device = self.graph.pipelines[pid].tip_device();
        let crossing = matches!((from_device, to_device), (Some(a), Some(b)) if a != b);
        if !is_breaker(child) && !crossing {
            return pid;
        }
        let next = self.new_pipeline(PipelineSource::Edge { edge: usize::MAX });
        let edge = self.add_edge(pid, next, EdgeRole::Input, to_device);
        self.graph.pipelines[next].source = PipelineSource::Edge { edge };
        next
    }

    fn push_op(&mut self, pid: usize, node: &PhysNode, build_edge: Option<usize>) {
        let op = PipelineOp {
            spec: spec_of(node),
            device: node.device(),
            op_class: op_class_of(node),
            selectivity: reduction_of(node, self.profiles),
            build_edge,
        };
        self.graph.pipelines[pid].ops.push(op);
    }

    fn compile_node(&mut self, node: &PhysNode) -> usize {
        match node {
            PhysNode::StorageScan {
                table,
                request,
                schema,
                device,
            } => {
                let pid = self.new_pipeline(PipelineSource::Scan {
                    table: table.clone(),
                    request: request.clone(),
                    schema: schema.clone(),
                    device: *device,
                });
                self.annotate_source(pid, node);
                pid
            }
            PhysNode::Values {
                batches,
                schema,
                device,
            } => {
                let pid = self.new_pipeline(PipelineSource::Values {
                    batches: batches.clone(),
                    schema: schema.clone(),
                    device: *device,
                });
                self.annotate_source(pid, node);
                pid
            }
            PhysNode::StreamScan {
                spec,
                schema,
                device,
            } => {
                let pid = self.new_pipeline(PipelineSource::Stream {
                    spec: spec.clone(),
                    schema: schema.clone(),
                    device: *device,
                });
                self.annotate_source(pid, node);
                pid
            }
            PhysNode::HashJoin { build, probe, .. } => {
                // Build first: pipeline ids then follow the order scans
                // complete in execution (build side drains fully first).
                let build_pid = self.compile_node(build);
                let probe_pid = self.compile_node(probe);
                let device = node.device();
                let pid = self.maybe_cut(probe_pid, probe, device);
                let build_edge = self.add_edge(build_pid, pid, EdgeRole::JoinBuild, device);
                self.push_op(pid, node, Some(build_edge));
                pid
            }
            PhysNode::Exchange {
                group,
                kind,
                index,
                parts,
                inputs,
                schema,
                device,
            } => {
                // One descriptor per group: the first-compiled fragment
                // carries the producer subtrees; later fragments only
                // register themselves and their incoming shuffle edges.
                let ex = match self.exchange_groups.get(group) {
                    Some(&ex) => ex,
                    None => {
                        let producers: Vec<usize> =
                            inputs.iter().map(|n| self.compile_node(n)).collect();
                        let ex = self.graph.exchanges.len();
                        let n_producers = producers.len();
                        self.graph.exchanges.push(Exchange {
                            id: ex,
                            kind: kind.clone(),
                            parts: *parts,
                            producers,
                            consumers: vec![usize::MAX; *parts],
                            edges: vec![usize::MAX; n_producers * *parts],
                            schema: schema.clone(),
                        });
                        self.exchange_groups.insert(*group, ex);
                        ex
                    }
                };
                let pid = self.new_pipeline(PipelineSource::Exchange {
                    exchange: ex,
                    index: *index,
                    schema: schema.clone(),
                    device: *device,
                });
                {
                    let p = &mut self.graph.pipelines[pid];
                    p.source_class = OpClass::Partition;
                    p.source_selectivity = 1.0;
                }
                let producers = self.graph.exchanges[ex].producers.clone();
                let parts_n = self.graph.exchanges[ex].parts;
                if *index < parts_n {
                    self.graph.exchanges[ex].consumers[*index] = pid;
                }
                for (i, &ppid) in producers.iter().enumerate() {
                    let eid = self.add_edge(ppid, pid, EdgeRole::Shuffle, *device);
                    if *index < parts_n {
                        self.graph.exchanges[ex].edges[i * parts_n + *index] = eid;
                    }
                }
                pid
            }
            PhysNode::Filter { input, .. }
            | PhysNode::Project { input, .. }
            | PhysNode::Aggregate { input, .. }
            | PhysNode::WindowAggregate { input, .. }
            | PhysNode::Sort { input, .. }
            | PhysNode::TopK { input, .. }
            | PhysNode::Limit { input, .. } => {
                let cid = self.compile_node(input);
                let pid = self.maybe_cut(cid, input, node.device());
                self.push_op(pid, node, None);
                pid
            }
        }
    }

    /// Flow-sim source annotations, using the same formulas the legacy
    /// linear flow mapping used: the source stage's size is the bytes the
    /// scan touches and its selectivity is the estimated output fraction.
    fn annotate_source(&mut self, pid: usize, leaf: &PhysNode) {
        let (_, out_bytes) = estimate_node(leaf, self.profiles);
        // In-memory Values leaves have no scan input; their "source size"
        // is the materialized batch bytes flowing out (mirrors
        // `cost::reduction_of`, which pins Values selectivity at 1).
        let (source_bytes, selectivity) =
            if matches!(leaf, PhysNode::Values { .. } | PhysNode::StreamScan { .. }) {
                (out_bytes.max(1.0) as u64, 1.0)
            } else {
                let input = node_input_bytes(leaf, self.profiles).max(1.0);
                (input as u64, (out_bytes / input).clamp(0.0, 1.0))
            };
        let p = &mut self.graph.pipelines[pid];
        p.source_bytes = source_bytes;
        p.source_class = op_class_of(leaf);
        p.source_selectivity = selectivity;
    }
}

impl PipelineGraph {
    /// Compile a physical plan. `profiles` feeds the cost model's
    /// selectivity estimates (None = no table statistics); `topology`
    /// resolves fabric-edge routes when available.
    pub fn compile(
        plan: &PhysicalPlan,
        profiles: Option<&Profiles>,
        topology: Option<&Topology>,
        queue_capacity: usize,
    ) -> PipelineGraph {
        let empty;
        let profiles = match profiles {
            Some(p) => p,
            None => {
                empty = Profiles::new();
                &empty
            }
        };
        let mut c = Compiler {
            graph: PipelineGraph {
                pipelines: Vec::new(),
                edges: Vec::new(),
                exchanges: Vec::new(),
                root: 0,
                queue_capacity: queue_capacity.max(1),
            },
            profiles,
            topology,
            exchange_groups: std::collections::HashMap::new(),
        };
        let root = c.compile_node(&plan.root);
        c.graph.root = root;
        c.graph.mark_punctuated();
        #[cfg(debug_assertions)]
        if let Err(errs) = c.graph.verify(topology) {
            let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
            panic!(
                "PipelineGraph::compile produced an unverifiable graph:\n  {}",
                msgs.join("\n  ")
            );
        }
        c.graph
    }

    /// Which pipelines are stream-fed: their spine leaf is a
    /// [`PipelineSource::Stream`] (directly, or transitively through
    /// `Input` edges). Computed to a fixpoint so hand-built test graphs
    /// with arbitrary id ordering resolve too; edge indices that do not
    /// resolve (malformed graphs) are treated as not stream-fed and left
    /// for [`PipelineGraph::verify`] to reject.
    pub fn stream_fed(&self) -> Vec<bool> {
        let mut fed = vec![false; self.pipelines.len()];
        loop {
            let mut changed = false;
            for (pid, p) in self.pipelines.iter().enumerate() {
                let f = match &p.source {
                    PipelineSource::Stream { .. } => true,
                    PipelineSource::Edge { edge } => self
                        .edges
                        .get(*edge)
                        .is_some_and(|e| fed.get(e.from).copied().unwrap_or(false)),
                    _ => false,
                };
                if f && !fed[pid] {
                    fed[pid] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        fed
    }

    /// Mark every stream-fed [`EdgeRole::Input`] edge as punctuation-
    /// carrying. Runs at the end of compilation; call it again after
    /// hand-editing sources or edges so the flags stay consistent with
    /// what [`PipelineGraph::verify`] checks.
    pub fn mark_punctuated(&mut self) {
        let fed = self.stream_fed();
        for e in &mut self.edges {
            e.punctuated = e.role == EdgeRole::Input && fed.get(e.from).copied().unwrap_or(false);
        }
    }

    /// True when any pipeline is fed by a stream source with no horizon
    /// (`batches: None`) — such a graph can be verified and priced, but
    /// executors refuse it until bounded.
    pub fn has_unbounded_stream(&self) -> bool {
        self.pipelines.iter().any(
            |p| matches!(&p.source, PipelineSource::Stream { spec, .. } if spec.is_unbounded()),
        )
    }

    /// A copy of the graph with every *unbounded* stream source bounded
    /// to `batches` generator batches (sources with an explicit horizon
    /// keep it). Verification runs against the unbounded graph; execution
    /// runs the bounded clone — bounding only removes behavior, so a
    /// verified unbounded graph stays verified.
    pub fn with_stream_horizon(&self, batches: u64) -> PipelineGraph {
        let mut g = self.clone();
        for p in &mut g.pipelines {
            if let PipelineSource::Stream { spec, .. } = &mut p.source {
                if spec.is_unbounded() {
                    spec.batches = Some(batches);
                }
            }
        }
        g
    }

    /// [`PipelineGraph::to_flow_specs`] with every stream source priced at
    /// a sustained-rate horizon of `horizon_batches` generator batches
    /// (instead of the spec's own pricing horizon) — the flow simulator
    /// then models the continuous query under that sustained ingest load.
    pub fn to_flow_specs_sustained(
        &self,
        default_device: DeviceId,
        name: &str,
        horizon_batches: u64,
    ) -> Result<Vec<PipelineSpec>> {
        let mut g = self.clone();
        for p in &mut g.pipelines {
            if let PipelineSource::Stream { spec, schema, .. } = &p.source {
                let rows = horizon_batches.saturating_mul(spec.rows_per_batch.max(1) as u64);
                let width = crate::optimizer::stats::avg_row_width(schema);
                p.source_bytes = rows.saturating_mul(width).max(1);
            }
        }
        g.to_flow_specs(default_device, name)
    }

    /// Install `encoding` on edge `edge`, creating (or clearing, for
    /// [`EdgeEncoding::Plain`]) the paired codec stages. The `Compress`
    /// stage is pinned to the producer tip's device and the `Decompress`
    /// stage to the consumer's, so the work happens exactly where the
    /// bytes leave and arrive; `ratio` is the estimated encoded/plain
    /// byte ratio the cost model prices the edge at.
    ///
    /// The result still has to pass [`PipelineGraph::verify`]: a non-plain
    /// encoding on a local edge, or a codec device that does not advertise
    /// the op class, is rejected there with a typed error.
    pub fn set_edge_encoding(&mut self, edge: usize, encoding: EdgeEncoding, ratio: f64) {
        let e = &mut self.edges[edge];
        e.encoding = encoding;
        if encoding.is_plain() {
            e.compress = None;
            e.decompress = None;
        } else {
            e.compress = Some(CodecStage {
                device: e.from_device,
                op_class: OpClass::Compress,
                ratio,
            });
            e.decompress = Some(CodecStage {
                device: e.to_device,
                op_class: OpClass::Decompress,
                ratio,
            });
        }
    }

    /// The spine of pipeline `tip`: the chain of pipelines connected by
    /// `Input` edges, leaf first.
    pub fn spine(&self, tip: usize) -> Vec<usize> {
        let mut pids = vec![tip];
        loop {
            let p = &self.pipelines[*pids.last().expect("non-empty")];
            match p.source {
                PipelineSource::Edge { edge } => pids.push(self.edges[edge].from),
                _ => break,
            }
        }
        pids.reverse();
        pids
    }

    /// Derive flow-simulator pipeline specs from the graph. The first spec
    /// is the root spine (source through every streaming stage to the
    /// query output); each join-build edge contributes an additional
    /// `{name}.buildN` spec terminated by a `JoinBuild` stage at the join's
    /// placement. Unplaced stages run on `default_device`.
    ///
    /// Each [`Exchange`] contributes one `{name}.xE.prodI` spec per
    /// producer fragment (its full chain, up to the partition point) and
    /// one `{name}.xE.pIcJ` transfer spec per producer→consumer pair,
    /// sized at that pair's estimated byte share — so the simulator, the
    /// serving layer's admission control, and codec selection all see the
    /// real per-link demand of every one of the N² shuffle crossings.
    ///
    /// The graph is verified first (topology-independent invariants;
    /// supply the topology to [`PipelineGraph::verify`] directly for
    /// placement/route checks) so the simulator never replays an
    /// inconsistent graph — a broken one returns
    /// [`EngineError::Verify`].
    ///
    /// For linear plans this reproduces the legacy `flow_pipeline` mapping
    /// stage-for-stage.
    pub fn to_flow_specs(&self, default_device: DeviceId, name: &str) -> Result<Vec<PipelineSpec>> {
        self.verify_or_err(None)?;
        let mut out = vec![self.spine_spec(self.root, default_device, name.to_string(), None)];
        let mut k = 0usize;
        for edge in &self.edges {
            if edge.role == EdgeRole::JoinBuild {
                out.push(self.spine_spec(
                    edge.from,
                    default_device,
                    format!("{name}.build{k}"),
                    Some(edge),
                ));
                k += 1;
            }
        }
        for ex in &self.exchanges {
            for (i, &ppid) in ex.producers.iter().enumerate() {
                out.push(self.spine_spec(
                    ppid,
                    default_device,
                    format!("{name}.x{}.prod{i}", ex.id),
                    None,
                ));
                let tip = self.pipelines[ppid].tip_device().unwrap_or(default_device);
                let produced = self.spine_output_bytes(ppid);
                for j in 0..ex.parts {
                    let share = exchange_share(ex, produced, j);
                    if share < 0.5 {
                        continue;
                    }
                    let edge = &self.edges[ex.edge(i, j)];
                    let mut stages = vec![StageSpec::new(tip, OpClass::Partition, 1.0)
                        .with_queue(self.queue_capacity)];
                    self.push_codec_stages(&mut stages, edge, default_device);
                    stages.push(
                        StageSpec::new(
                            edge.to_device.unwrap_or(default_device),
                            OpClass::Partition,
                            0.0,
                        )
                        .with_queue(self.queue_capacity),
                    );
                    out.push(PipelineSpec::new(
                        format!("{name}.x{}.p{i}c{j}", ex.id),
                        stages,
                        share.round() as u64,
                    ));
                }
            }
        }
        Ok(out)
    }

    /// Estimated bytes leaving pipeline `tip`'s spine (its leaf source —
    /// resolved through any exchange feeding it — reduced by every op's
    /// selectivity along the spine).
    fn spine_output_bytes(&self, tip: usize) -> f64 {
        let pids = self.spine(tip);
        let mut bytes = self.leaf_source_bytes(pids[0]);
        for pid in &pids {
            let p = &self.pipelines[*pid];
            if *pid == pids[0] {
                bytes *= p.source_selectivity;
            }
            for op in &p.ops {
                bytes *= op.selectivity;
            }
        }
        bytes
    }

    /// Bytes a spine-leaf pipeline's source produces before its own
    /// selectivity: concrete sources report their compile-time estimate;
    /// exchange sources sum their per-producer shares (recursively, so
    /// multi-stage exchanges price correctly — the graph is a DAG).
    fn leaf_source_bytes(&self, pid: usize) -> f64 {
        match &self.pipelines[pid].source {
            PipelineSource::Exchange {
                exchange, index, ..
            } => {
                let ex = &self.exchanges[*exchange];
                ex.producers
                    .iter()
                    .map(|&p| exchange_share(ex, self.spine_output_bytes(p), *index))
                    .sum()
            }
            _ => self.pipelines[pid].source_bytes as f64,
        }
    }

    fn spine_spec(
        &self,
        tip: usize,
        default_device: DeviceId,
        name: String,
        terminal: Option<&PipelineEdge>,
    ) -> PipelineSpec {
        let pids = self.spine(tip);
        let leaf = &self.pipelines[pids[0]];
        let mut stages = vec![StageSpec::new(
            leaf.source.device().unwrap_or(default_device),
            leaf.source_class,
            leaf.source_selectivity,
        )
        .with_queue(self.queue_capacity)];
        for pid in &pids {
            let p = &self.pipelines[*pid];
            if let PipelineSource::Edge { edge } = p.source {
                self.push_codec_stages(&mut stages, &self.edges[edge], default_device);
            }
            for op in &p.ops {
                stages.push(
                    StageSpec::new(
                        op.device.unwrap_or(default_device),
                        op.op_class,
                        op.selectivity,
                    )
                    .with_queue(self.queue_capacity),
                );
            }
        }
        if let Some(edge) = terminal {
            self.push_codec_stages(&mut stages, edge, default_device);
            // The join's build stage consumes the spine's output and emits
            // nothing downstream (the hash table stays on-device).
            stages.push(
                StageSpec::new(
                    edge.to_device.unwrap_or(default_device),
                    OpClass::JoinBuild,
                    0.0,
                )
                .with_queue(self.queue_capacity),
            );
        }
        let source_bytes = self.leaf_source_bytes(pids[0]).round() as u64;
        PipelineSpec::new(name, stages, source_bytes)
    }

    /// Price an edge's codec pair into a flow spec: a `Compress` stage at
    /// the producer tip whose selectivity is the encoded/plain ratio (so
    /// every link between the pair carries *encoded* bytes and the device
    /// pays codec cycles at its `Compress` rate), and a `Decompress` stage
    /// at the consumer restoring the plain byte stream (selectivity
    /// `1/ratio`).
    fn push_codec_stages(
        &self,
        stages: &mut Vec<StageSpec>,
        edge: &PipelineEdge,
        default_device: DeviceId,
    ) {
        let (Some(c), Some(d)) = (&edge.compress, &edge.decompress) else {
            return;
        };
        stages.push(
            StageSpec::new(
                c.device.or(edge.from_device).unwrap_or(default_device),
                OpClass::Compress,
                c.ratio,
            )
            .with_queue(self.queue_capacity),
        );
        stages.push(
            StageSpec::new(
                d.device.or(edge.to_device).unwrap_or(default_device),
                OpClass::Decompress,
                if d.ratio > 0.0 { 1.0 / d.ratio } else { 1.0 },
            )
            .with_queue(self.queue_capacity),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use df_data::batch::batch_of;
    use df_data::Column;
    use df_fabric::topology::DisaggregatedConfig;

    fn sample(n: usize) -> Batch {
        batch_of(vec![
            ("id", Column::from_i64((0..n as i64).collect())),
            (
                "grp",
                Column::from_strs(&(0..n).map(|i| format!("g{}", i % 4)).collect::<Vec<_>>()),
            ),
        ])
    }

    fn values(n: usize, device: Option<DeviceId>) -> PhysNode {
        let b = sample(n);
        PhysNode::Values {
            schema: b.schema().clone(),
            batches: vec![b],
            device,
        }
    }

    #[test]
    fn linear_unplaced_plan_is_one_pipeline() {
        let plan = PhysicalPlan::new(
            PhysNode::Filter {
                input: Box::new(values(10, None)),
                predicate: col("id").lt(lit(5)),
                device: None,
                use_kernel: false,
            },
            "t",
        );
        let g = PipelineGraph::compile(&plan, None, None, DEFAULT_QUEUE_CAPACITY);
        assert_eq!(g.pipelines.len(), 1);
        assert!(g.edges.is_empty());
        assert_eq!(g.pipelines[0].ops.len(), 1);
    }

    #[test]
    fn device_boundary_becomes_fabric_edge() {
        let topo = Topology::disaggregated(&DisaggregatedConfig::default());
        let nic = topo.expect_device("compute0.nic");
        let cpu = topo.expect_device("compute0.cpu");
        let plan = PhysicalPlan::new(
            PhysNode::Filter {
                input: Box::new(values(10, Some(nic))),
                predicate: col("id").lt(lit(5)),
                device: Some(cpu),
                use_kernel: false,
            },
            "t",
        );
        let g = PipelineGraph::compile(&plan, None, Some(&topo), DEFAULT_QUEUE_CAPACITY);
        assert_eq!(g.pipelines.len(), 2);
        assert_eq!(g.edges.len(), 1);
        let e = &g.edges[0];
        assert!(e.crosses_devices());
        assert_eq!(e.role, EdgeRole::Input);
        match &e.kind {
            EdgeKind::Fabric { route } => {
                assert!(route.is_some(), "topology should resolve the route")
            }
            EdgeKind::Local => panic!("expected fabric edge"),
        }
    }

    #[test]
    fn breaker_cuts_even_on_one_device() {
        let plan = PhysicalPlan::new(
            PhysNode::Limit {
                input: Box::new(PhysNode::Sort {
                    input: Box::new(values(10, None)),
                    keys: vec![("id".into(), true)],
                    device: None,
                }),
                n: 3,
            },
            "t",
        );
        let g = PipelineGraph::compile(&plan, None, None, DEFAULT_QUEUE_CAPACITY);
        // sort ends pipeline 0; limit starts pipeline 1 over a local edge.
        assert_eq!(g.pipelines.len(), 2);
        assert_eq!(g.edges.len(), 1);
        assert!(matches!(g.edges[0].kind, EdgeKind::Local));
        assert_eq!(g.spine(g.root), vec![0, 1]);
    }

    #[test]
    fn join_build_side_gets_its_own_edge_and_flow_spec() {
        let topo = Topology::disaggregated(&DisaggregatedConfig::default());
        let cpu = topo.expect_device("compute0.cpu");
        let b = batch_of(vec![("bk", Column::from_strs(&["g0", "g1", "g2", "g3"]))]);
        let build = PhysNode::Values {
            schema: b.schema().clone(),
            batches: vec![b.clone()],
            device: None,
        };
        let p = sample(16);
        let schema = {
            let mut fields: Vec<df_data::Field> = b.schema().fields().to_vec();
            fields.extend(p.schema().fields().iter().cloned());
            df_data::Schema::new(fields).into_ref()
        };
        let plan = PhysicalPlan::new(
            PhysNode::HashJoin {
                build: Box::new(build),
                probe: Box::new(values(16, None)),
                on: vec![("bk".into(), "grp".into())],
                join_type: JoinType::Inner,
                schema,
                device: None,
            },
            "t",
        );
        let g = PipelineGraph::compile(&plan, None, Some(&topo), DEFAULT_QUEUE_CAPACITY);
        assert_eq!(g.pipelines.len(), 2, "build pipeline + probe pipeline");
        let builds: Vec<_> = g
            .edges
            .iter()
            .filter(|e| e.role == EdgeRole::JoinBuild)
            .collect();
        assert_eq!(builds.len(), 1);
        // Build pipeline compiles first: scan-completion order.
        assert_eq!(builds[0].from, 0);
        let specs = g.to_flow_specs(cpu, "j").unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[1].name, "j.build0");
        assert_eq!(
            specs[1].stages.last().unwrap().op,
            OpClass::JoinBuild,
            "build spine terminates in the join-build stage"
        );
    }

    #[test]
    fn cluster_exchange_plan_compiles_and_prices() {
        use crate::scaleout::{cluster_hash_join_plan, split_round_robin};
        use df_fabric::topology::ClusterConfig;

        let hosts = 2usize;
        let topo = Topology::cluster(hosts as u32, &ClusterConfig::default());
        let build = batch_of(vec![
            ("k", Column::from_i64((0..32).collect())),
            (
                "name",
                Column::from_strs(&(0..32).map(|i| format!("n{i}")).collect::<Vec<_>>()),
            ),
        ]);
        let probe = batch_of(vec![
            ("fk", Column::from_i64((0..256).map(|i| i % 32).collect())),
            ("amount", Column::from_i64((0..256).collect())),
        ]);
        let join_schema = {
            let mut fields: Vec<df_data::Field> = build.schema().fields().to_vec();
            fields.extend(probe.schema().fields().iter().cloned());
            df_data::Schema::new(fields).into_ref()
        };
        let plan = cluster_hash_join_plan(
            &topo,
            &split_round_robin(&build, hosts),
            build.schema().clone(),
            &split_round_robin(&probe, hosts),
            probe.schema().clone(),
            ("k", "fk"),
            join_schema,
            true,
        )
        .unwrap();
        let g = PipelineGraph::compile(&plan, None, Some(&topo), DEFAULT_QUEUE_CAPACITY);
        g.verify(Some(&topo)).expect("clean cluster graph");

        // Three exchange groups: build hash, probe hash, gather.
        assert_eq!(g.exchanges.len(), 3);
        assert_eq!(g.exchanges[0].producers.len(), hosts);
        assert_eq!(g.exchanges[0].consumers.len(), hosts);
        assert_eq!(g.exchanges[2].parts, 1, "gather fans into one consumer");
        // Every exchange slot is a shuffle edge through a credit channel.
        let shuffles = g
            .edges
            .iter()
            .filter(|e| e.role == EdgeRole::Shuffle)
            .count();
        assert_eq!(shuffles, hosts * hosts * 2 + hosts);

        // The flow-spec derivation prices each producer spine and each
        // cross-host pair transfer so the simulator sees switch traffic.
        let cpu = topo.expect_device("host0.cpu");
        let specs = g.to_flow_specs(cpu, "s").unwrap();
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert!(names.iter().any(|n| n.contains(".x0.prod0")), "{names:?}");
        assert!(names.iter().any(|n| n.contains(".x0.p0c1")), "{names:?}");
        assert!(
            names.iter().any(|n| n.contains(".x2.prod")),
            "gather producers priced: {names:?}"
        );
        // Cross-host pair transfers carry a NIC partition stage at the tip.
        let pair = specs
            .iter()
            .find(|s| s.name.contains(".x0.p0c1"))
            .expect("pair spec");
        assert_eq!(pair.stages.first().unwrap().op, OpClass::Partition);
    }
}
