//! Static verification of compiled [`PipelineGraph`]s.
//!
//! PR 3 made the pipeline graph the single compilation substrate, but an
//! illegal placement, a mis-routed fabric edge, or a zero-capacity credit
//! channel used to surface only as a wrong answer or a hang at execution
//! time. [`PipelineGraph::verify`] checks a graph *before* it runs:
//!
//! - **structure** — edge/pipeline indexes consistent, every pipeline
//!   reachable from the root, the edge relation acyclic;
//! - **schema flow-typing** — every operator's declared input schema
//!   matches what its upstream (previous op, pipeline source, or
//!   inter-pipeline edge) actually produces, types compared positionally;
//! - **placement legality** — every placed op's [`OpClass`] is supported
//!   by the device's capability profile (a smart NIC cannot host a sort);
//! - **route completeness** — every [`EdgeKind::Fabric`] edge crosses a
//!   real placement boundary and its resolved route is a valid path in the
//!   topology between exactly those endpoints; [`EdgeKind::Local`] edges
//!   must *not* cross devices;
//! - **breaker invariants** — pipelines are cut exactly at breakers (a
//!   breaker op can only be a pipeline's tip) and every join build side
//!   terminates in a [`EdgeRole::JoinBuild`] edge referenced by exactly
//!   one probe op;
//! - **ledger conservation** — a fabric edge charges exactly one ledger
//!   site: its recorded `from`/`to` devices are the producer tip's and the
//!   consuming op's placements, so each crossing is attributed once;
//! - **credit sanity** — no edge carries a zero credit budget (a
//!   zero-capacity channel can never make progress under the §7.1
//!   protocol; `df-check`'s deadlock pass model-checks the rest);
//! - **streaming legality** — every stream-fed input edge carries
//!   punctuation (dropping it would freeze every downstream frontier),
//!   no unbounded stream flows into an operator that buffers its whole
//!   input (sort, top-k, un-windowed aggregation) or into a join build /
//!   exchange, and every windowed aggregate is keyed on an `Int64`
//!   timestamp column its input actually supplies.
//!
//! The compiler debug-asserts `verify` on every graph it builds; the push
//! and morsel-parallel executors and the flow-spec derivation call it
//! explicitly and surface [`VerifyError`]s as
//! [`EngineError::Verify`](crate::error::EngineError).

use std::fmt;

use df_data::{DataType, SchemaRef};
use df_fabric::{DeviceId, OpClass, Topology};

use super::{
    CodecStage, EdgeKind, EdgeRole, ExchangeKind, OperatorSpec, PipelineEdge, PipelineGraph,
    PipelineSource,
};
use crate::expr::Expr;
use crate::ops::AggMode;
use crate::streaming::WSTART_COL;

/// One verification failure. Variants are typed so tests (and the mutation
/// property suite) can assert *which* invariant a bad graph violates.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// Index/id bookkeeping is inconsistent (dangling edge, bad root,
    /// unreachable pipeline, self-edge, mis-numbered ids).
    Malformed {
        /// What is inconsistent.
        detail: String,
    },
    /// The edge relation contains a cycle, so the graph is not a DAG.
    CyclicGraph {
        /// Pipelines on the detected cycle.
        pipelines: Vec<usize>,
    },
    /// An operator's declared input does not match what flows into it.
    SchemaMismatch {
        /// Pipeline the mismatch occurs in.
        pipeline: usize,
        /// Where in the pipeline (op index, or the source hand-off).
        site: String,
        /// Schema the operator declares.
        expected: String,
        /// Schema the upstream actually produces.
        found: String,
    },
    /// An operator is placed on a device that cannot host its op class.
    IllegalPlacement {
        /// Pipeline of the offending op.
        pipeline: usize,
        /// Op index within the pipeline (`usize::MAX` = the source).
        op: usize,
        /// The placed device.
        device: DeviceId,
        /// Device name in the topology.
        device_name: String,
        /// The class the device does not support.
        class: OpClass,
    },
    /// A fabric edge has no resolved route although a topology is known.
    MissingRoute {
        /// The edge.
        edge: usize,
        /// Producer-side device.
        from: DeviceId,
        /// Consumer-side device.
        to: DeviceId,
    },
    /// A fabric edge's resolved route is not a valid path between its
    /// endpoints in the topology.
    RouteMismatch {
        /// The edge.
        edge: usize,
        /// What is wrong with the route.
        detail: String,
    },
    /// A local edge connects differently-placed endpoints.
    LocalEdgeCrossesDevices {
        /// The edge.
        edge: usize,
        /// Producer-side device.
        from: DeviceId,
        /// Consumer-side device.
        to: DeviceId,
    },
    /// A fabric edge does not cross a placement boundary (endpoints equal
    /// or unplaced) — it charges a ledger site that does not exist.
    FabricEdgeWithinDevice {
        /// The edge.
        edge: usize,
    },
    /// A pipeline-breaking operator sits in the middle of a pipeline
    /// (pipelines must be cut immediately after every breaker).
    BreakerMidPipeline {
        /// Pipeline containing the breaker.
        pipeline: usize,
        /// Op index of the breaker.
        op: usize,
        /// Operator label.
        label: &'static str,
    },
    /// A join probe op has no build edge delivering its hash-table input.
    MissingJoinBuild {
        /// Pipeline of the probe op.
        pipeline: usize,
        /// Op index of the probe op.
        op: usize,
    },
    /// A [`EdgeRole::JoinBuild`] edge that no probe op consumes.
    DanglingJoinBuild {
        /// The edge.
        edge: usize,
    },
    /// An edge's recorded devices diverge from its endpoints' placements,
    /// so the movement ledger would mis-attribute the crossing.
    LedgerSiteMismatch {
        /// The edge.
        edge: usize,
        /// What diverges.
        detail: String,
    },
    /// An edge carries a zero credit budget: the §7.1 protocol can never
    /// move a chunk across it.
    ZeroCapacity {
        /// The edge.
        edge: usize,
    },
    /// An edge's codec stages do not form a legal Compress/Decompress pair
    /// (missing half, wrong op class, stage on a plain or local edge,
    /// un-pinned endpoint, or a non-positive ratio).
    CodecPairingBroken {
        /// The edge.
        edge: usize,
        /// What is wrong with the pair.
        detail: String,
    },
    /// A codec stage is placed on a device that does not advertise its op
    /// class (e.g. `Compress` on the near-memory accelerator, which only
    /// decompresses).
    IllegalCodecPlacement {
        /// The edge.
        edge: usize,
        /// The placed device.
        device: DeviceId,
        /// Device name in the topology.
        device_name: String,
        /// The unsupported class.
        class: OpClass,
    },
    /// A windowed aggregate is keyed on a timestamp column its input does
    /// not supply as `Int64` (or, in merge mode, on an input that does not
    /// lead with the `Int64` `wstart` column).
    WindowWithoutTimestamp {
        /// Pipeline of the window op.
        pipeline: usize,
        /// Op index of the window op.
        op: usize,
        /// The missing or mis-typed column.
        column: String,
    },
    /// A stream-fed input edge does not carry punctuation: the consumer's
    /// frontier could never advance, so no window downstream of the edge
    /// would ever close.
    PunctuationDropped {
        /// The edge.
        edge: usize,
    },
    /// An operator that buffers its whole input sits on an unbounded
    /// stream spine — it would accumulate state forever and never emit.
    UnboundedBreaker {
        /// Pipeline containing the op.
        pipeline: usize,
        /// Op index.
        op: usize,
        /// Operator label.
        label: &'static str,
    },
    /// An unbounded stream flows somewhere the streaming runtime cannot
    /// drive (a join build side or an exchange producer); bound the
    /// source first with `with_stream_horizon`.
    StreamingUnsupported {
        /// The offending pipeline.
        pipeline: usize,
        /// What is unsupported.
        detail: String,
    },
    /// An exchange's bookkeeping is inconsistent: incomplete shuffle-edge
    /// matrix, mis-wired consumer fragments, producer schemas that do not
    /// match the redistributed stream, or hash keys absent from a producer
    /// output (the partition function would disagree across hosts).
    ExchangeMalformed {
        /// Index into [`PipelineGraph::exchanges`].
        exchange: usize,
        /// What is inconsistent.
        detail: String,
    },
}

impl VerifyError {
    /// Short machine-readable tag for reports.
    pub fn code(&self) -> &'static str {
        match self {
            VerifyError::Malformed { .. } => "malformed",
            VerifyError::CyclicGraph { .. } => "cyclic-graph",
            VerifyError::SchemaMismatch { .. } => "schema-mismatch",
            VerifyError::IllegalPlacement { .. } => "illegal-placement",
            VerifyError::MissingRoute { .. } => "missing-route",
            VerifyError::RouteMismatch { .. } => "route-mismatch",
            VerifyError::LocalEdgeCrossesDevices { .. } => "local-edge-crosses-devices",
            VerifyError::FabricEdgeWithinDevice { .. } => "fabric-edge-within-device",
            VerifyError::BreakerMidPipeline { .. } => "breaker-mid-pipeline",
            VerifyError::MissingJoinBuild { .. } => "missing-join-build",
            VerifyError::DanglingJoinBuild { .. } => "dangling-join-build",
            VerifyError::LedgerSiteMismatch { .. } => "ledger-site-mismatch",
            VerifyError::ZeroCapacity { .. } => "zero-capacity",
            VerifyError::CodecPairingBroken { .. } => "codec-pairing-broken",
            VerifyError::IllegalCodecPlacement { .. } => "illegal-codec-placement",
            VerifyError::WindowWithoutTimestamp { .. } => "window-without-timestamp",
            VerifyError::PunctuationDropped { .. } => "punctuation-dropped",
            VerifyError::UnboundedBreaker { .. } => "unbounded-breaker",
            VerifyError::StreamingUnsupported { .. } => "streaming-unsupported",
            VerifyError::ExchangeMalformed { .. } => "exchange-malformed",
        }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Malformed { detail } => write!(f, "malformed graph: {detail}"),
            VerifyError::CyclicGraph { pipelines } => {
                write!(f, "pipeline edges form a cycle through {pipelines:?}")
            }
            VerifyError::SchemaMismatch {
                pipeline,
                site,
                expected,
                found,
            } => write!(
                f,
                "pipeline {pipeline}, {site}: schema mismatch (declared {expected}, upstream produces {found})"
            ),
            VerifyError::IllegalPlacement {
                pipeline,
                op,
                device,
                device_name,
                class,
            } => write!(
                f,
                "pipeline {pipeline}, op {op}: device {device} ('{device_name}') cannot host {class}"
            ),
            VerifyError::MissingRoute { edge, from, to } => {
                write!(f, "edge {edge}: no route resolved for {from} -> {to}")
            }
            VerifyError::RouteMismatch { edge, detail } => {
                write!(f, "edge {edge}: bad route: {detail}")
            }
            VerifyError::LocalEdgeCrossesDevices { edge, from, to } => write!(
                f,
                "edge {edge}: local edge crosses devices {from} -> {to} (must be a fabric edge)"
            ),
            VerifyError::FabricEdgeWithinDevice { edge } => write!(
                f,
                "edge {edge}: fabric edge does not cross a placement boundary"
            ),
            VerifyError::BreakerMidPipeline {
                pipeline,
                op,
                label,
            } => write!(
                f,
                "pipeline {pipeline}: breaker '{label}' at op {op} is not the pipeline tip"
            ),
            VerifyError::MissingJoinBuild { pipeline, op } => write!(
                f,
                "pipeline {pipeline}, op {op}: join probe has no build edge"
            ),
            VerifyError::DanglingJoinBuild { edge } => {
                write!(f, "edge {edge}: join-build edge consumed by no probe op")
            }
            VerifyError::LedgerSiteMismatch { edge, detail } => {
                write!(f, "edge {edge}: ledger site mismatch: {detail}")
            }
            VerifyError::ZeroCapacity { edge } => {
                write!(f, "edge {edge}: zero credit capacity (channel can never move a chunk)")
            }
            VerifyError::CodecPairingBroken { edge, detail } => {
                write!(f, "edge {edge}: codec pairing broken: {detail}")
            }
            VerifyError::IllegalCodecPlacement {
                edge,
                device,
                device_name,
                class,
            } => write!(
                f,
                "edge {edge}: device {device} ('{device_name}') cannot host codec stage {class}"
            ),
            VerifyError::WindowWithoutTimestamp {
                pipeline,
                op,
                column,
            } => write!(
                f,
                "pipeline {pipeline}, op {op}: window keyed on '{column}', which the input does \
                 not supply as Int64"
            ),
            VerifyError::PunctuationDropped { edge } => write!(
                f,
                "edge {edge}: stream-fed input edge drops punctuation (downstream frontiers \
                 could never advance)"
            ),
            VerifyError::UnboundedBreaker {
                pipeline,
                op,
                label,
            } => write!(
                f,
                "pipeline {pipeline}: '{label}' at op {op} buffers an unbounded stream and \
                 would never emit"
            ),
            VerifyError::StreamingUnsupported { pipeline, detail } => {
                write!(f, "pipeline {pipeline}: {detail}")
            }
            VerifyError::ExchangeMalformed { exchange, detail } => {
                write!(f, "exchange {exchange}: {detail}")
            }
        }
    }
}

/// Render a schema as `name:type` pairs for error messages.
fn schema_str(schema: &SchemaRef) -> String {
    let fields: Vec<String> = schema
        .fields()
        .iter()
        .map(|fld| format!("{}:{:?}", fld.name, fld.dtype))
        .collect();
    format!("[{}]", fields.join(", "))
}

/// Positional type compatibility: same arity, same [`DataType`]s. Names
/// and nullability are allowed to differ — wire transport and storage
/// pre-aggregation rename columns but preserve layout.
fn types_match(a: &SchemaRef, b: &SchemaRef) -> bool {
    a.fields().len() == b.fields().len()
        && a.fields()
            .iter()
            .zip(b.fields())
            .all(|(x, y)| x.dtype == y.dtype)
}

fn field_types(schema: &SchemaRef) -> Vec<DataType> {
    schema.fields().iter().map(|f| f.dtype).collect()
}

/// Collect every column name an expression references.
fn collect_cols<'e>(expr: &'e Expr, out: &mut Vec<&'e str>) {
    match expr {
        Expr::Col(name) => out.push(name),
        Expr::Lit(_) => {}
        Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
            collect_cols(left, out);
            collect_cols(right, out);
        }
        Expr::And(es) | Expr::Or(es) => es.iter().for_each(|e| collect_cols(e, out)),
        Expr::Not(e) => collect_cols(e, out),
        Expr::Like { expr, .. } | Expr::IsNull { expr, .. } | Expr::Between { expr, .. } => {
            collect_cols(expr, out)
        }
    }
}

struct Verifier<'g> {
    graph: &'g PipelineGraph,
    topology: Option<&'g Topology>,
    errors: Vec<VerifyError>,
}

impl Verifier<'_> {
    fn push(&mut self, err: VerifyError) {
        self.errors.push(err);
    }

    // ------------------------------------------------------------ structure

    /// Index/id bookkeeping, edge/source wiring, reachability, acyclicity.
    /// Returns false when the graph is too malformed for the deeper passes
    /// (dangling indexes would make them panic).
    fn check_structure(&mut self) -> bool {
        let g = self.graph;
        let np = g.pipelines.len();
        let ne = g.edges.len();
        let mut sound = true;
        if np == 0 {
            self.push(VerifyError::Malformed {
                detail: "graph has no pipelines".into(),
            });
            return false;
        }
        if g.root >= np {
            self.push(VerifyError::Malformed {
                detail: format!("root {} out of range ({np} pipelines)", g.root),
            });
            sound = false;
        }
        for (i, p) in g.pipelines.iter().enumerate() {
            if p.id != i {
                self.push(VerifyError::Malformed {
                    detail: format!("pipeline at index {i} carries id {}", p.id),
                });
            }
            match &p.source {
                PipelineSource::Edge { edge } => {
                    if *edge >= ne {
                        self.push(VerifyError::Malformed {
                            detail: format!("pipeline {i} sources dangling edge {edge}"),
                        });
                        sound = false;
                    }
                }
                PipelineSource::Exchange {
                    exchange, index, ..
                } => {
                    if *exchange >= g.exchanges.len() {
                        self.push(VerifyError::Malformed {
                            detail: format!("pipeline {i} sources dangling exchange {exchange}"),
                        });
                        sound = false;
                    } else if *index >= g.exchanges[*exchange].parts {
                        self.push(VerifyError::Malformed {
                            detail: format!(
                                "pipeline {i} claims consumer index {index} of exchange \
                                 {exchange} ({} parts)",
                                g.exchanges[*exchange].parts
                            ),
                        });
                        sound = false;
                    }
                }
                PipelineSource::Scan { .. }
                | PipelineSource::Values { .. }
                | PipelineSource::Stream { .. } => {}
            }
        }
        for (e, edge) in g.edges.iter().enumerate() {
            if edge.id != e {
                self.push(VerifyError::Malformed {
                    detail: format!("edge at index {e} carries id {}", edge.id),
                });
            }
            if edge.from >= np || edge.to >= np {
                self.push(VerifyError::Malformed {
                    detail: format!(
                        "edge {e} references pipelines {} -> {} ({np} exist)",
                        edge.from, edge.to
                    ),
                });
                sound = false;
                continue;
            }
            if edge.from == edge.to {
                self.push(VerifyError::Malformed {
                    detail: format!("edge {e} is a self-edge on pipeline {}", edge.from),
                });
                sound = false;
            }
        }
        if !sound {
            return false;
        }

        // Input-edge/source wiring must agree in both directions.
        for (i, p) in g.pipelines.iter().enumerate() {
            if let PipelineSource::Edge { edge } = p.source {
                let e = &g.edges[edge];
                if e.to != i || e.role != EdgeRole::Input {
                    self.push(VerifyError::Malformed {
                        detail: format!(
                            "pipeline {i} sources edge {edge}, but that edge is a {:?} edge into pipeline {}",
                            e.role, e.to
                        ),
                    });
                }
            }
        }
        for (e, edge) in g.edges.iter().enumerate() {
            if edge.role == EdgeRole::Input
                && !matches!(
                    g.pipelines[edge.to].source,
                    PipelineSource::Edge { edge: src } if src == e
                )
            {
                self.push(VerifyError::Malformed {
                    detail: format!(
                        "input edge {e} feeds pipeline {}, whose source does not reference it",
                        edge.to
                    ),
                });
            }
        }

        // Cycle check over from -> to, with cycle extraction for the report.
        let mut state = vec![0u8; np]; // 0 unvisited, 1 on stack, 2 done
        let mut stack: Vec<(usize, usize)> = Vec::new();
        let out_edges = |pid: usize| {
            g.edges
                .iter()
                .filter(move |e| e.from == pid)
                .map(|e| e.to)
                .collect::<Vec<_>>()
        };
        for start in 0..np {
            if state[start] != 0 {
                continue;
            }
            stack.push((start, 0));
            state[start] = 1;
            while let Some(&mut (pid, ref mut next)) = stack.last_mut() {
                let succs = out_edges(pid);
                if *next < succs.len() {
                    let to = succs[*next];
                    *next += 1;
                    match state[to] {
                        0 => {
                            state[to] = 1;
                            stack.push((to, 0));
                        }
                        1 => {
                            let at = stack.iter().position(|&(p, _)| p == to).unwrap_or(0);
                            let cycle: Vec<usize> = stack[at..].iter().map(|&(p, _)| p).collect();
                            self.push(VerifyError::CyclicGraph { pipelines: cycle });
                            return false;
                        }
                        _ => {}
                    }
                } else {
                    state[pid] = 2;
                    stack.pop();
                }
            }
        }

        // Every pipeline must feed the root (walk edges backwards).
        let mut reach = vec![false; np];
        let mut work = vec![g.root];
        reach[g.root] = true;
        while let Some(pid) = work.pop() {
            for e in &g.edges {
                if e.to == pid && !reach[e.from] {
                    reach[e.from] = true;
                    work.push(e.from);
                }
            }
        }
        for (i, r) in reach.iter().enumerate() {
            if !r {
                self.push(VerifyError::Malformed {
                    detail: format!("pipeline {i} is unreachable from the root"),
                });
            }
        }
        true
    }

    // ---------------------------------------------------- breakers & joins

    fn check_breakers_and_joins(&mut self) {
        let g = self.graph;
        for (pid, p) in g.pipelines.iter().enumerate() {
            for (oi, op) in p.ops.iter().enumerate() {
                // A breaker buffers its whole input: anything after it in
                // the same pipeline would observe an unstreamable hand-off.
                if oi + 1 < p.ops.len() && op.spec.is_breaker() {
                    self.push(VerifyError::BreakerMidPipeline {
                        pipeline: pid,
                        op: oi,
                        label: op.spec.label(),
                    });
                }
                match (&op.spec, op.build_edge) {
                    (OperatorSpec::JoinProbe { .. }, None) => {
                        self.push(VerifyError::MissingJoinBuild {
                            pipeline: pid,
                            op: oi,
                        });
                    }
                    (OperatorSpec::JoinProbe { .. }, Some(be)) => {
                        match g.edges.get(be) {
                            Some(e) if e.role == EdgeRole::JoinBuild && e.to == pid => {}
                            Some(e) => self.push(VerifyError::Malformed {
                                detail: format!(
                                    "pipeline {pid}, op {oi}: build edge {be} is a {:?} edge into pipeline {}",
                                    e.role, e.to
                                ),
                            }),
                            None => self.push(VerifyError::Malformed {
                                detail: format!(
                                    "pipeline {pid}, op {oi}: build edge {be} does not exist"
                                ),
                            }),
                        }
                    }
                    (_, Some(be)) => self.push(VerifyError::Malformed {
                        detail: format!(
                            "pipeline {pid}, op {oi}: non-join op carries build edge {be}"
                        ),
                    }),
                    (_, None) => {}
                }
            }
        }
        // Every join-build edge must be consumed by exactly one probe op.
        for (e, edge) in g.edges.iter().enumerate() {
            if edge.role != EdgeRole::JoinBuild {
                continue;
            }
            let consumers = g
                .pipelines
                .iter()
                .flat_map(|p| p.ops.iter())
                .filter(|op| op.build_edge == Some(e))
                .count();
            match consumers {
                1 => {}
                0 => self.push(VerifyError::DanglingJoinBuild { edge: e }),
                n => self.push(VerifyError::Malformed {
                    detail: format!("join-build edge {e} consumed by {n} probe ops"),
                }),
            }
        }
    }

    // ------------------------------------------------------------- schemas

    /// Output schema of pipeline `pid` (tip op's output, else the source).
    fn pipeline_output(&self, pid: usize, depth: usize) -> Option<SchemaRef> {
        let p = &self.graph.pipelines[pid];
        if let Some(op) = p.ops.last() {
            return Some(op.spec.output_schema());
        }
        match &p.source {
            PipelineSource::Scan { schema, .. }
            | PipelineSource::Values { schema, .. }
            | PipelineSource::Stream { schema, .. }
            | PipelineSource::Exchange { schema, .. } => Some(schema.clone()),
            PipelineSource::Edge { edge } => {
                // Depth-bounded: structure pass already rejected cycles,
                // but stay safe when called on a malformed graph.
                if depth > self.graph.pipelines.len() {
                    return None;
                }
                self.pipeline_output(self.graph.edges[*edge].from, depth + 1)
            }
        }
    }

    fn check_schemas(&mut self) {
        let g = self.graph;
        for (pid, p) in g.pipelines.iter().enumerate() {
            let mut current = match &p.source {
                PipelineSource::Scan { schema, .. }
                | PipelineSource::Values { schema, .. }
                | PipelineSource::Stream { schema, .. }
                | PipelineSource::Exchange { schema, .. } => Some(schema.clone()),
                PipelineSource::Edge { edge } => self.pipeline_output(g.edges[*edge].from, 0),
            };
            for (oi, op) in p.ops.iter().enumerate() {
                let Some(upstream) = current.clone() else {
                    break;
                };
                match &op.spec {
                    OperatorSpec::Filter { input_schema, .. }
                    | OperatorSpec::Sort { input_schema, .. }
                    | OperatorSpec::TopK { input_schema, .. }
                    | OperatorSpec::Limit { input_schema, .. }
                    | OperatorSpec::Aggregate { input_schema, .. }
                    | OperatorSpec::WindowAggregate { input_schema, .. } => {
                        if !types_match(input_schema, &upstream) {
                            self.push(VerifyError::SchemaMismatch {
                                pipeline: pid,
                                site: format!("op {oi} ({})", op.spec.label()),
                                expected: schema_str(input_schema),
                                found: schema_str(&upstream),
                            });
                        }
                    }
                    OperatorSpec::Project { exprs, .. } => {
                        for (expr, _) in exprs {
                            let mut cols = Vec::new();
                            collect_cols(expr, &mut cols);
                            for c in cols {
                                if upstream.index_of(c).is_err() {
                                    self.push(VerifyError::SchemaMismatch {
                                        pipeline: pid,
                                        site: format!("op {oi} (project)"),
                                        expected: format!("column '{c}'"),
                                        found: schema_str(&upstream),
                                    });
                                }
                            }
                        }
                    }
                    OperatorSpec::JoinProbe {
                        build_schema,
                        schema,
                        ..
                    } => {
                        // Build input arrives over the build edge; its
                        // producer must deliver the declared build layout.
                        if let Some(be) = op.build_edge {
                            if let Some(produced) = self.pipeline_output(g.edges[be].from, 0) {
                                if !types_match(build_schema, &produced) {
                                    self.push(VerifyError::SchemaMismatch {
                                        pipeline: pid,
                                        site: format!("op {oi} (join build edge {be})"),
                                        expected: schema_str(build_schema),
                                        found: schema_str(&produced),
                                    });
                                }
                            }
                        }
                        // Output = build fields then probe fields.
                        let want: Vec<DataType> = field_types(build_schema)
                            .into_iter()
                            .chain(field_types(&upstream))
                            .collect();
                        if field_types(schema) != want {
                            self.push(VerifyError::SchemaMismatch {
                                pipeline: pid,
                                site: format!("op {oi} (join output)"),
                                expected: schema_str(schema),
                                found: format!(
                                    "build {} ++ probe {}",
                                    schema_str(build_schema),
                                    schema_str(&upstream)
                                ),
                            });
                        }
                    }
                }
                current = Some(op.spec.output_schema());
            }
        }
    }

    // ----------------------------------------------------------- streaming

    /// Streaming legality: punctuation is preserved on every stream-fed
    /// input edge (and claimed nowhere else), unbounded spines never reach
    /// whole-input buffering, join builds, or exchanges, and windowed
    /// aggregates are keyed on a real `Int64` timestamp column.
    ///
    /// A windowed aggregate over a *bounded* source (`Values`, a
    /// horizon-bounded stream) is deliberately legal with or without
    /// punctuation — that is exactly the batch-oracle configuration the
    /// streaming tests pin results against.
    fn check_streaming(&mut self) {
        let g = self.graph;
        let fed = g.stream_fed();
        // Unbounded-fed pipelines: like `stream_fed`, restricted to stream
        // sources with no horizon.
        let mut unbounded = vec![false; g.pipelines.len()];
        loop {
            let mut changed = false;
            for (pid, p) in g.pipelines.iter().enumerate() {
                let f = match &p.source {
                    PipelineSource::Stream { spec, .. } => spec.is_unbounded(),
                    PipelineSource::Edge { edge } => g
                        .edges
                        .get(*edge)
                        .is_some_and(|e| unbounded.get(e.from).copied().unwrap_or(false)),
                    _ => false,
                };
                if f && !unbounded[pid] {
                    unbounded[pid] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for (eid, edge) in g.edges.iter().enumerate() {
            if edge.role == EdgeRole::Input {
                if fed[edge.from] && !edge.punctuated {
                    self.push(VerifyError::PunctuationDropped { edge: eid });
                }
                if edge.punctuated && !fed[edge.from] {
                    self.push(VerifyError::Malformed {
                        detail: format!(
                            "edge {eid} claims punctuation but its producer spine has no \
                             stream source"
                        ),
                    });
                }
            } else if edge.punctuated {
                self.push(VerifyError::Malformed {
                    detail: format!("{:?} edge {eid} cannot carry punctuation", edge.role),
                });
            }
            if unbounded[edge.from] && edge.role != EdgeRole::Input {
                self.push(VerifyError::StreamingUnsupported {
                    pipeline: edge.from,
                    detail: format!(
                        "unbounded stream feeds a {:?} edge {eid}; bound the source with \
                         with_stream_horizon first",
                        edge.role
                    ),
                });
            }
        }
        for (pid, p) in g.pipelines.iter().enumerate() {
            for (oi, op) in p.ops.iter().enumerate() {
                if unbounded[pid]
                    && matches!(
                        &op.spec,
                        OperatorSpec::Sort { .. }
                            | OperatorSpec::TopK { .. }
                            | OperatorSpec::Aggregate { .. }
                    )
                {
                    self.push(VerifyError::UnboundedBreaker {
                        pipeline: pid,
                        op: oi,
                        label: op.spec.label(),
                    });
                }
                if let OperatorSpec::WindowAggregate {
                    ts_col,
                    mode,
                    input_schema,
                    ..
                } = &op.spec
                {
                    let (column, ok) = match mode {
                        // Merge inputs lead with the partial stage's wstart.
                        AggMode::Merge => (
                            WSTART_COL.to_string(),
                            input_schema
                                .fields()
                                .first()
                                .is_some_and(|f| f.dtype == DataType::Int64),
                        ),
                        _ => (
                            ts_col.clone(),
                            input_schema
                                .index_of(ts_col)
                                .ok()
                                .is_some_and(|i| input_schema.fields()[i].dtype == DataType::Int64),
                        ),
                    };
                    if !ok {
                        self.push(VerifyError::WindowWithoutTimestamp {
                            pipeline: pid,
                            op: oi,
                            column,
                        });
                    }
                }
            }
        }
    }

    // ----------------------------------------------------------- placement

    fn check_placement(&mut self) {
        let Some(topology) = self.topology else {
            return;
        };
        let g = self.graph;
        let n_devices = topology.devices().len();
        let check = |errors: &mut Vec<VerifyError>,
                     pid: usize,
                     oi: usize,
                     device: DeviceId,
                     class: OpClass| {
            if (device.0 as usize) >= n_devices {
                errors.push(VerifyError::Malformed {
                    detail: format!(
                        "pipeline {pid}, op {oi}: device {device} not in topology ({n_devices} devices)"
                    ),
                });
                return;
            }
            let meta = topology.device(device);
            if !meta.profile.supports(class) {
                errors.push(VerifyError::IllegalPlacement {
                    pipeline: pid,
                    op: oi,
                    device,
                    device_name: meta.name.clone(),
                    class,
                });
            }
        };
        for (pid, p) in g.pipelines.iter().enumerate() {
            // Storage scans execute *at* the storage device, so the source
            // class must be supported there. Values sources are
            // memory-resident handoffs and carry no device-side work.
            match &p.source {
                PipelineSource::Scan {
                    device: Some(d), ..
                } => check(&mut self.errors, pid, usize::MAX, *d, p.source_class),
                // Stream sources ingest *at* their device (NIC-Rx), so the
                // placement must support `Ingest`.
                PipelineSource::Stream {
                    device: Some(d), ..
                } => check(&mut self.errors, pid, usize::MAX, *d, p.source_class),
                _ => {}
            }
            for (oi, op) in p.ops.iter().enumerate() {
                if let Some(d) = op.device {
                    check(&mut self.errors, pid, oi, d, op.op_class);
                }
            }
        }
    }

    // ----------------------------------------------------------- exchanges

    /// Exchange invariants: every exchange's shuffle-edge matrix is
    /// complete and row-major consistent (all N² producer→consumer pairs
    /// present with the Shuffle role and matching endpoints), every
    /// consumer fragment is wired back to its slot, producer outputs match
    /// the redistributed schema, hash keys resolve in every producer
    /// output (so the partition function cannot disagree across hosts),
    /// gathers have exactly one part, and — with a topology — every
    /// hash-exchange producer tip can actually run the partition.
    fn check_exchanges(&mut self) {
        let g = self.graph;
        let mut found = Vec::new();
        let mut owners = vec![0usize; g.edges.len()];
        for (xid, ex) in g.exchanges.iter().enumerate() {
            let bad = |detail: String| VerifyError::ExchangeMalformed {
                exchange: xid,
                detail,
            };
            if ex.id != xid {
                found.push(bad(format!(
                    "descriptor at index {xid} carries id {}",
                    ex.id
                )));
            }
            if ex.parts == 0 || ex.consumers.len() != ex.parts {
                found.push(bad(format!(
                    "{} consumer slots for {} parts",
                    ex.consumers.len(),
                    ex.parts
                )));
                continue;
            }
            if ex.producers.is_empty() {
                found.push(bad("exchange has no producers".into()));
                continue;
            }
            if matches!(ex.kind, ExchangeKind::Gather) && ex.parts != 1 {
                found.push(bad(format!(
                    "gather exchange has {} parts (want 1)",
                    ex.parts
                )));
            }
            let mut wired = true;
            for (j, &cpid) in ex.consumers.iter().enumerate() {
                if cpid >= g.pipelines.len() {
                    found.push(bad(format!(
                        "consumer slot {j} is unregistered or dangling ({cpid})"
                    )));
                    wired = false;
                    continue;
                }
                match &g.pipelines[cpid].source {
                    PipelineSource::Exchange {
                        exchange,
                        index,
                        schema,
                        ..
                    } if *exchange == xid && *index == j => {
                        if !types_match(schema, &ex.schema) {
                            found.push(bad(format!(
                                "consumer {j} declares {}, exchange redistributes {}",
                                schema_str(schema),
                                schema_str(&ex.schema)
                            )));
                        }
                    }
                    _ => {
                        found.push(bad(format!(
                            "consumer slot {j} points at pipeline {cpid}, which does not \
                             source this exchange at index {j}"
                        )));
                        wired = false;
                    }
                }
            }
            if ex.edges.len() != ex.producers.len() * ex.parts {
                found.push(bad(format!(
                    "edge matrix has {} entries for {}x{} pairs",
                    ex.edges.len(),
                    ex.producers.len(),
                    ex.parts
                )));
                continue;
            }
            for (i, &ppid) in ex.producers.iter().enumerate() {
                if ppid >= g.pipelines.len() {
                    found.push(bad(format!("producer {i} is dangling ({ppid})")));
                    continue;
                }
                // Producer output must match the redistributed schema, and
                // hash keys must resolve in it on every producer.
                if let Some(out) = self.pipeline_output(ppid, 0) {
                    if !types_match(&out, &ex.schema) {
                        found.push(bad(format!(
                            "producer {i} (pipeline {ppid}) produces {}, exchange \
                             redistributes {}",
                            schema_str(&out),
                            schema_str(&ex.schema)
                        )));
                    }
                    if let ExchangeKind::Hash { keys, .. } = &ex.kind {
                        for key in keys {
                            if out.index_of(key).is_err() {
                                found.push(bad(format!(
                                    "hash key '{key}' missing from producer {i} output {}",
                                    schema_str(&out)
                                )));
                            }
                        }
                    }
                }
                if wired {
                    for j in 0..ex.parts {
                        let eid = ex.edges[i * ex.parts + j];
                        match g.edges.get(eid) {
                            Some(e)
                                if e.role == EdgeRole::Shuffle
                                    && e.from == ppid
                                    && e.to == ex.consumers[j] =>
                            {
                                owners[eid] += 1;
                            }
                            Some(e) => found.push(bad(format!(
                                "slot ({i},{j}): edge {eid} is a {:?} edge {} -> {}, want \
                                 Shuffle {} -> {}",
                                e.role, e.from, e.to, ppid, ex.consumers[j]
                            ))),
                            None => found.push(bad(format!(
                                "slot ({i},{j}) references dangling edge {eid}"
                            ))),
                        }
                    }
                }
                // Partitioning runs at the producer tip: with a topology,
                // that device must advertise the Partition class.
                if let (Some(topology), ExchangeKind::Hash { .. }) = (self.topology, &ex.kind) {
                    if let Some(d) = g.pipelines[ppid].tip_device() {
                        if (d.0 as usize) < topology.devices().len() {
                            let meta = topology.device(d);
                            if !meta.profile.supports(OpClass::Partition) {
                                found.push(VerifyError::IllegalPlacement {
                                    pipeline: ppid,
                                    op: usize::MAX,
                                    device: d,
                                    device_name: meta.name.clone(),
                                    class: OpClass::Partition,
                                });
                            }
                        }
                    }
                }
            }
        }
        // Every shuffle edge must belong to exactly one exchange slot.
        for (eid, e) in g.edges.iter().enumerate() {
            if e.role == EdgeRole::Shuffle && owners[eid] != 1 {
                found.push(VerifyError::Malformed {
                    detail: format!(
                        "shuffle edge {eid} referenced by {} exchange slots (want exactly 1)",
                        owners[eid]
                    ),
                });
            }
        }
        self.errors.extend(found);
    }

    // ------------------------------------------------- edges/routes/ledger

    fn check_edges(&mut self) {
        let g = self.graph;
        for (eid, edge) in g.edges.iter().enumerate() {
            if edge.queue_capacity == 0 {
                self.push(VerifyError::ZeroCapacity { edge: eid });
            }
            self.check_ledger_site(eid, edge);
            self.check_codec(eid, edge);
            match &edge.kind {
                EdgeKind::Local => {
                    if let (Some(f), Some(t)) = (edge.from_device, edge.to_device) {
                        if f != t {
                            self.push(VerifyError::LocalEdgeCrossesDevices {
                                edge: eid,
                                from: f,
                                to: t,
                            });
                        }
                    }
                }
                EdgeKind::Fabric { route } => {
                    let (Some(f), Some(t)) = (edge.from_device, edge.to_device) else {
                        self.push(VerifyError::FabricEdgeWithinDevice { edge: eid });
                        continue;
                    };
                    if f == t {
                        self.push(VerifyError::FabricEdgeWithinDevice { edge: eid });
                        continue;
                    }
                    let Some(topology) = self.topology else {
                        continue;
                    };
                    let Some(route) = route else {
                        self.push(VerifyError::MissingRoute {
                            edge: eid,
                            from: f,
                            to: t,
                        });
                        continue;
                    };
                    self.check_route(eid, route, f, t, topology);
                }
            }
        }
    }

    fn check_route(
        &mut self,
        eid: usize,
        route: &df_fabric::topology::Route,
        from: DeviceId,
        to: DeviceId,
        topology: &Topology,
    ) {
        let bad = |detail: String| VerifyError::RouteMismatch { edge: eid, detail };
        if route.devices.first() != Some(&from) || route.devices.last() != Some(&to) {
            self.push(bad(format!(
                "route endpoints {:?} do not match edge devices {from} -> {to}",
                (route.devices.first(), route.devices.last())
            )));
            return;
        }
        if route.links.is_empty() || route.devices.len() != route.links.len() + 1 {
            self.push(bad(format!(
                "route shape invalid: {} links, {} devices",
                route.links.len(),
                route.devices.len()
            )));
            return;
        }
        for (i, link) in route.links.iter().enumerate() {
            if (link.0 as usize) >= topology.links().len() {
                self.push(bad(format!("link {link:?} not in topology")));
                return;
            }
            let spec = topology.link(*link);
            let (a, b) = (route.devices[i], route.devices[i + 1]);
            let connects = (spec.a == a && spec.b == b) || (spec.a == b && spec.b == a);
            if !connects {
                self.push(bad(format!(
                    "hop {i}: link {link:?} connects {} - {}, route claims {a} -> {b}",
                    spec.a, spec.b
                )));
                return;
            }
        }
    }

    /// Codec discipline: a non-plain encoding needs a Compress/Decompress
    /// pair pinned to the edge's endpoints, on devices that advertise the
    /// op classes; a plain edge must carry no codec stages at all. The
    /// checksum discipline (every edge frame is CRC-protected) is a
    /// property of the `df_codec::edge` frame format itself, so only the
    /// stage legality needs verifying here.
    fn check_codec(&mut self, eid: usize, edge: &PipelineEdge) {
        if edge.encoding.is_plain() {
            if edge.compress.is_some() || edge.decompress.is_some() {
                self.push(VerifyError::CodecPairingBroken {
                    edge: eid,
                    detail: "plain edge carries codec stages".into(),
                });
            }
            return;
        }
        if !edge.crosses_devices() {
            self.push(VerifyError::CodecPairingBroken {
                edge: eid,
                detail: format!(
                    "local edge cannot carry '{}' encoding (nothing crosses the fabric)",
                    edge.encoding
                ),
            });
        }
        let (Some(c), Some(d)) = (&edge.compress, &edge.decompress) else {
            self.push(VerifyError::CodecPairingBroken {
                edge: eid,
                detail: format!(
                    "'{}' encoding requires a Compress/Decompress pair (compress {}, decompress {})",
                    edge.encoding,
                    if edge.compress.is_some() { "present" } else { "missing" },
                    if edge.decompress.is_some() { "present" } else { "missing" },
                ),
            });
            return;
        };
        if c.op_class != OpClass::Compress {
            self.push(VerifyError::CodecPairingBroken {
                edge: eid,
                detail: format!("encode stage carries class {} (want Compress)", c.op_class),
            });
        }
        if d.op_class != OpClass::Decompress {
            self.push(VerifyError::CodecPairingBroken {
                edge: eid,
                detail: format!(
                    "decode stage carries class {} (want Decompress)",
                    d.op_class
                ),
            });
        }
        if c.device != edge.from_device {
            self.push(VerifyError::CodecPairingBroken {
                edge: eid,
                detail: format!(
                    "compress stage placed on {:?}, producer tip is {:?} (encode must run where the bytes leave)",
                    c.device, edge.from_device
                ),
            });
        }
        if d.device != edge.to_device {
            self.push(VerifyError::CodecPairingBroken {
                edge: eid,
                detail: format!(
                    "decompress stage placed on {:?}, consumer is {:?} (decode must run where the bytes arrive)",
                    d.device, edge.to_device
                ),
            });
        }
        for (what, stage) in [("compress", c), ("decompress", d)] {
            if !(stage.ratio > 0.0 && stage.ratio.is_finite()) {
                self.push(VerifyError::CodecPairingBroken {
                    edge: eid,
                    detail: format!("{what} stage ratio {} is not positive finite", stage.ratio),
                });
            }
        }
        if c.ratio != d.ratio {
            self.push(VerifyError::CodecPairingBroken {
                edge: eid,
                detail: format!(
                    "pair disagrees on ratio: compress {} vs decompress {}",
                    c.ratio, d.ratio
                ),
            });
        }
        if let Some(topology) = self.topology {
            let n_devices = topology.devices().len();
            let check = |errors: &mut Vec<VerifyError>, stage: &CodecStage| {
                let Some(dev) = stage.device else { return };
                if (dev.0 as usize) >= n_devices {
                    errors.push(VerifyError::Malformed {
                        detail: format!(
                            "edge {eid}: codec device {dev} not in topology ({n_devices} devices)"
                        ),
                    });
                    return;
                }
                let meta = topology.device(dev);
                if !meta.profile.supports(stage.op_class) {
                    errors.push(VerifyError::IllegalCodecPlacement {
                        edge: eid,
                        device: dev,
                        device_name: meta.name.clone(),
                        class: stage.op_class,
                    });
                }
            };
            check(&mut self.errors, c);
            check(&mut self.errors, d);
        }
    }

    /// Ledger conservation: the devices an edge would charge must be the
    /// producer tip's and the consuming op's real placements, so every
    /// fabric crossing is accounted at exactly one site.
    fn check_ledger_site(&mut self, eid: usize, edge: &PipelineEdge) {
        let g = self.graph;
        let producer_tip = g.pipelines[edge.from].tip_device();
        if edge.from_device != producer_tip {
            self.push(VerifyError::LedgerSiteMismatch {
                edge: eid,
                detail: format!(
                    "edge records from={:?}, producer pipeline {} tip is {:?}",
                    edge.from_device, edge.from, producer_tip
                ),
            });
        }
        let consumer = &g.pipelines[edge.to];
        let consuming_op = match edge.role {
            EdgeRole::Input => consumer.ops.first(),
            EdgeRole::JoinBuild => consumer.ops.iter().find(|op| op.build_edge == Some(eid)),
            EdgeRole::Shuffle => {
                // Shuffle edges terminate at the consumer fragment's
                // exchange source, not at a specific operator.
                if edge.to_device != consumer.source.device() {
                    self.push(VerifyError::LedgerSiteMismatch {
                        edge: eid,
                        detail: format!(
                            "edge records to={:?}, consumer fragment source is placed on {:?}",
                            edge.to_device,
                            consumer.source.device()
                        ),
                    });
                }
                None
            }
        };
        if let Some(op) = consuming_op {
            if edge.to_device != op.device {
                self.push(VerifyError::LedgerSiteMismatch {
                    edge: eid,
                    detail: format!(
                        "edge records to={:?}, consuming op is placed on {:?}",
                        edge.to_device, op.device
                    ),
                });
            }
        }
    }
}

impl PipelineGraph {
    /// Statically verify the graph. With a topology, placement legality
    /// and fabric routes are checked against the real device capability
    /// profiles and link graph; without one, those passes are skipped and
    /// only topology-independent invariants run.
    ///
    /// Returns every violation found (not just the first), so callers can
    /// report a broken plan in full.
    pub fn verify(&self, topology: Option<&Topology>) -> Result<(), Vec<VerifyError>> {
        let mut v = Verifier {
            graph: self,
            topology,
            errors: Vec::new(),
        };
        if v.check_structure() {
            v.check_breakers_and_joins();
            v.check_schemas();
            v.check_streaming();
            v.check_placement();
            v.check_exchanges();
            v.check_edges();
        }
        if v.errors.is_empty() {
            Ok(())
        } else {
            Err(v.errors)
        }
    }

    /// [`PipelineGraph::verify`] with failures mapped to
    /// [`EngineError::Verify`](crate::error::EngineError) — the form the
    /// executors and the flow-spec derivation use.
    pub fn verify_or_err(&self, topology: Option<&Topology>) -> crate::error::Result<()> {
        self.verify(topology)
            .map_err(crate::error::EngineError::Verify)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::logical::JoinType;
    use crate::physical::{PhysNode, PhysicalPlan};
    use crate::pipeline::DEFAULT_QUEUE_CAPACITY;
    use df_data::batch::batch_of;
    use df_data::{Column, Field, Schema};
    use df_fabric::topology::DisaggregatedConfig;

    fn sample(n: usize) -> df_data::Batch {
        batch_of(vec![
            ("id", Column::from_i64((0..n as i64).collect())),
            (
                "grp",
                Column::from_strs(&(0..n).map(|i| format!("g{}", i % 4)).collect::<Vec<_>>()),
            ),
        ])
    }

    fn topo() -> Topology {
        Topology::disaggregated(&DisaggregatedConfig::default())
    }

    fn placed_plan(topo: &Topology) -> PhysicalPlan {
        let nic = topo.expect_device("compute0.nic");
        let cpu = topo.expect_device("compute0.cpu");
        PhysicalPlan::new(
            PhysNode::Sort {
                input: Box::new(PhysNode::Filter {
                    input: Box::new(PhysNode::Values {
                        schema: sample(8).schema().clone(),
                        batches: vec![sample(8)],
                        device: Some(nic),
                    }),
                    predicate: col("id").lt(lit(5)),
                    device: Some(nic),
                    use_kernel: false,
                }),
                keys: vec![("id".into(), true)],
                device: Some(cpu),
            },
            "t",
        )
    }

    #[test]
    fn compiled_graphs_verify_clean() {
        let topo = topo();
        let plan = placed_plan(&topo);
        let g = PipelineGraph::compile(&plan, None, Some(&topo), DEFAULT_QUEUE_CAPACITY);
        g.verify(Some(&topo)).expect("clean graph");
        g.verify(None).expect("clean without topology too");
    }

    #[test]
    fn illegal_placement_is_flagged() {
        let topo = topo();
        let plan = placed_plan(&topo);
        let mut g = PipelineGraph::compile(&plan, None, Some(&topo), DEFAULT_QUEUE_CAPACITY);
        // Move the sort to the smart NIC, which cannot host unbounded state.
        let nic = topo.expect_device("compute0.nic");
        let last = g.pipelines.len() - 1;
        let op = g.pipelines[last].ops.last_mut().expect("sort op");
        op.device = Some(nic);
        let errs = g.verify(Some(&topo)).unwrap_err();
        assert!(
            errs.iter().any(|e| matches!(
                e,
                VerifyError::IllegalPlacement {
                    class: OpClass::Sort,
                    ..
                }
            )),
            "errs: {errs:?}"
        );
    }

    #[test]
    fn zero_capacity_is_flagged() {
        let topo = topo();
        let plan = placed_plan(&topo);
        let mut g = PipelineGraph::compile(&plan, None, Some(&topo), DEFAULT_QUEUE_CAPACITY);
        g.edges[0].queue_capacity = 0;
        let errs = g.verify(Some(&topo)).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::ZeroCapacity { edge: 0 })));
    }

    #[test]
    fn schema_break_at_cut_is_flagged() {
        let topo = topo();
        let plan = placed_plan(&topo);
        let mut g = PipelineGraph::compile(&plan, None, Some(&topo), DEFAULT_QUEUE_CAPACITY);
        // Declare a different input layout on the first op of the second
        // pipeline (the one fed over the cut).
        let wrong = Schema::new(vec![Field::new("id", df_data::DataType::Float64)]).into_ref();
        let consumer = g.edges[0].to;
        match &mut g.pipelines[consumer].ops[0].spec {
            OperatorSpec::Sort { input_schema, .. } | OperatorSpec::Filter { input_schema, .. } => {
                *input_schema = wrong
            }
            other => panic!("unexpected op {other:?}"),
        }
        let errs = g.verify(Some(&topo)).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| matches!(e, VerifyError::SchemaMismatch { .. })),
            "errs: {errs:?}"
        );
    }

    #[test]
    fn local_edge_crossing_devices_is_flagged() {
        let plan = PhysicalPlan::new(
            PhysNode::Limit {
                input: Box::new(PhysNode::Sort {
                    input: Box::new(PhysNode::Values {
                        schema: sample(4).schema().clone(),
                        batches: vec![sample(4)],
                        device: None,
                    }),
                    keys: vec![("id".into(), true)],
                    device: None,
                }),
                n: 2,
            },
            "t",
        );
        let mut g = PipelineGraph::compile(&plan, None, None, DEFAULT_QUEUE_CAPACITY);
        g.edges[0].from_device = Some(DeviceId(0));
        g.edges[0].to_device = Some(DeviceId(1));
        // Keep ledger sites consistent so only the kind violation fires.
        g.pipelines[0].ops.last_mut().expect("sort").device = Some(DeviceId(0));
        g.pipelines[1].ops[0].device = Some(DeviceId(1));
        let errs = g.verify(None).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| matches!(e, VerifyError::LocalEdgeCrossesDevices { .. })),
            "errs: {errs:?}"
        );
    }

    #[test]
    fn dropped_join_build_is_flagged() {
        let topo = topo();
        let b = batch_of(vec![("bk", Column::from_strs(&["g0", "g1"]))]);
        let p = sample(8);
        let schema = {
            let mut fields: Vec<Field> = b.schema().fields().to_vec();
            fields.extend(p.schema().fields().iter().cloned());
            Schema::new(fields).into_ref()
        };
        let plan = PhysicalPlan::new(
            PhysNode::HashJoin {
                build: Box::new(PhysNode::Values {
                    schema: b.schema().clone(),
                    batches: vec![b],
                    device: None,
                }),
                probe: Box::new(PhysNode::Values {
                    schema: p.schema().clone(),
                    batches: vec![p],
                    device: None,
                }),
                on: vec![("bk".into(), "grp".into())],
                join_type: JoinType::Inner,
                schema,
                device: None,
            },
            "t",
        );
        let mut g = PipelineGraph::compile(&plan, None, Some(&topo), DEFAULT_QUEUE_CAPACITY);
        let probe = g.root;
        for op in &mut g.pipelines[probe].ops {
            op.build_edge = None;
        }
        let errs = g.verify(Some(&topo)).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::MissingJoinBuild { .. })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::DanglingJoinBuild { .. })));
    }

    #[test]
    fn swapped_route_is_flagged() {
        let topo = topo();
        let plan = placed_plan(&topo);
        let mut g = PipelineGraph::compile(&plan, None, Some(&topo), DEFAULT_QUEUE_CAPACITY);
        let ssd = topo.expect_device("storage.ssd");
        let snic = topo.expect_device("storage.nic");
        let bogus = topo.route(ssd, snic).expect("adjacent");
        let fabric = g
            .edges
            .iter_mut()
            .find(|e| matches!(e.kind, EdgeKind::Fabric { .. }))
            .expect("placed plan has a fabric edge");
        fabric.kind = EdgeKind::Fabric { route: Some(bogus) };
        let errs = g.verify(Some(&topo)).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| matches!(e, VerifyError::RouteMismatch { .. })),
            "errs: {errs:?}"
        );
    }

    #[test]
    fn codec_pair_on_fabric_edge_verifies_clean() {
        let topo = topo();
        let plan = placed_plan(&topo);
        let mut g = PipelineGraph::compile(&plan, None, Some(&topo), DEFAULT_QUEUE_CAPACITY);
        let eid = g
            .edges
            .iter()
            .find(|e| e.crosses_devices())
            .expect("fabric edge")
            .id;
        g.set_edge_encoding(eid, df_codec::edge::EdgeEncoding::Columnar, 0.4);
        g.verify(Some(&topo)).expect("paired codec is legal");
    }

    #[test]
    fn unpaired_codec_stage_is_flagged() {
        let topo = topo();
        let plan = placed_plan(&topo);
        let mut g = PipelineGraph::compile(&plan, None, Some(&topo), DEFAULT_QUEUE_CAPACITY);
        let eid = g
            .edges
            .iter()
            .find(|e| e.crosses_devices())
            .expect("fabric edge")
            .id;
        g.set_edge_encoding(eid, df_codec::edge::EdgeEncoding::Lz, 0.5);
        // Drop the decode half: bytes would arrive encoded with nobody to
        // restore them.
        g.edges[eid].decompress = None;
        let errs = g.verify(Some(&topo)).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| matches!(e, VerifyError::CodecPairingBroken { edge, .. } if *edge == eid)),
            "errs: {errs:?}"
        );
    }

    #[test]
    fn codec_stages_on_plain_edge_are_flagged() {
        let topo = topo();
        let plan = placed_plan(&topo);
        let mut g = PipelineGraph::compile(&plan, None, Some(&topo), DEFAULT_QUEUE_CAPACITY);
        let eid = g
            .edges
            .iter()
            .find(|e| e.crosses_devices())
            .expect("fabric edge")
            .id;
        g.set_edge_encoding(eid, df_codec::edge::EdgeEncoding::Columnar, 0.4);
        g.edges[eid].encoding = df_codec::edge::EdgeEncoding::Plain;
        let errs = g.verify(Some(&topo)).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::CodecPairingBroken { .. })));
    }

    #[test]
    fn illegally_placed_codec_stage_is_flagged() {
        let topo = topo();
        let plan = placed_plan(&topo);
        let mut g = PipelineGraph::compile(&plan, None, Some(&topo), DEFAULT_QUEUE_CAPACITY);
        let eid = g
            .edges
            .iter()
            .find(|e| e.crosses_devices())
            .expect("fabric edge")
            .id;
        g.set_edge_encoding(eid, df_codec::edge::EdgeEncoding::Columnar, 0.4);
        // The near-memory accelerator decompresses but cannot compress:
        // hosting the encode half there must be rejected.
        let nma = topo.expect_device("compute0.mem");
        let from = g.edges[eid].from;
        // Keep pinning consistent so only the placement violation fires.
        if let Some(op) = g.pipelines[from].ops.last_mut() {
            op.device = Some(nma);
        }
        g.edges[eid].from_device = Some(nma);
        let stage = g.edges[eid].compress.as_mut().expect("compress stage");
        stage.device = Some(nma);
        let errs = g.verify(Some(&topo)).unwrap_err();
        assert!(
            errs.iter().any(|e| matches!(
                e,
                VerifyError::IllegalCodecPlacement {
                    class: OpClass::Compress,
                    ..
                }
            )),
            "errs: {errs:?}"
        );
    }

    /// Compile the N-host partitioned hash join the scaleout module runs,
    /// returning the graph plus its cluster topology.
    fn cluster_join_graph(hosts: usize) -> (PipelineGraph, Topology) {
        use crate::scaleout::{cluster_hash_join_plan, split_round_robin};
        use df_fabric::topology::ClusterConfig;
        let topo = Topology::cluster(hosts as u32, &ClusterConfig::default());
        let build = batch_of(vec![
            ("k", Column::from_i64((0..32).collect())),
            (
                "name",
                Column::from_strs(&(0..32).map(|i| format!("n{i}")).collect::<Vec<_>>()),
            ),
        ]);
        let probe = batch_of(vec![
            ("fk", Column::from_i64((0..128).map(|i| i % 32).collect())),
            ("amount", Column::from_i64((0..128).collect())),
        ]);
        let join_schema = {
            let mut fields: Vec<Field> = build.schema().fields().to_vec();
            fields.extend(probe.schema().fields().iter().cloned());
            Schema::new(fields).into_ref()
        };
        let plan = cluster_hash_join_plan(
            &topo,
            &split_round_robin(&build, hosts),
            build.schema().clone(),
            &split_round_robin(&probe, hosts),
            probe.schema().clone(),
            ("k", "fk"),
            join_schema,
            true,
        )
        .expect("cluster plan");
        let g = PipelineGraph::compile(&plan, None, Some(&topo), DEFAULT_QUEUE_CAPACITY);
        (g, topo)
    }

    #[test]
    fn cluster_exchange_graphs_verify_clean() {
        for hosts in [1usize, 2, 4] {
            let (g, topo) = cluster_join_graph(hosts);
            g.verify(Some(&topo))
                .unwrap_or_else(|e| panic!("{hosts}-host graph: {e:?}"));
            // Build, probe, and gather exchanges survive compilation.
            assert_eq!(g.exchanges.len(), 3, "hosts={hosts}");
        }
    }

    #[test]
    fn exchange_consumer_swap_is_flagged() {
        let (mut g, topo) = cluster_join_graph(2);
        // Swap the build exchange's consumer list: each pipeline still
        // declares its own index, so the descriptor no longer matches.
        g.exchanges[0].consumers.swap(0, 1);
        let errs = g.verify(Some(&topo)).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| matches!(e, VerifyError::ExchangeMalformed { exchange: 0, .. })),
            "errs: {errs:?}"
        );
    }

    #[test]
    fn exchange_edge_role_mutation_is_flagged() {
        let (mut g, topo) = cluster_join_graph(2);
        let eid = g.exchanges[0].edge(0, 1);
        g.edges[eid].role = EdgeRole::Input;
        let errs = g.verify(Some(&topo)).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| matches!(e, VerifyError::ExchangeMalformed { exchange: 0, .. })),
            "errs: {errs:?}"
        );
    }

    #[test]
    fn exchange_missing_hash_key_is_flagged() {
        let (mut g, topo) = cluster_join_graph(2);
        if let ExchangeKind::Hash { keys, .. } = &mut g.exchanges[0].kind {
            keys[0] = "no_such_column".into();
        } else {
            panic!("build exchange should hash-partition");
        }
        let errs = g.verify(Some(&topo)).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| matches!(e, VerifyError::ExchangeMalformed { exchange: 0, .. })),
            "errs: {errs:?}"
        );
    }

    #[test]
    fn exchange_gather_with_fanout_is_flagged() {
        let (mut g, topo) = cluster_join_graph(2);
        // A gather must have exactly one consumer; declare fan-out on one.
        g.exchanges[0].kind = ExchangeKind::Gather;
        let errs = g.verify(Some(&topo)).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| matches!(e, VerifyError::ExchangeMalformed { exchange: 0, .. })),
            "errs: {errs:?}"
        );
    }

    #[test]
    fn cyclic_graph_is_flagged() {
        let topo = topo();
        let plan = placed_plan(&topo);
        let mut g = PipelineGraph::compile(&plan, None, Some(&topo), DEFAULT_QUEUE_CAPACITY);
        // Forge a back edge root -> leaf.
        let id = g.edges.len();
        let leaf = 0usize;
        g.edges.push(PipelineEdge {
            id,
            from: g.root,
            to: leaf,
            kind: EdgeKind::Local,
            role: EdgeRole::JoinBuild,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            from_device: None,
            to_device: None,
            punctuated: false,
            encoding: df_codec::edge::EdgeEncoding::Plain,
            compress: None,
            decompress: None,
        });
        let errs = g.verify(Some(&topo)).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::CyclicGraph { .. })));
    }
}
