//! A SQL frontend for the examples and tests.
//!
//! Supported grammar (one `SELECT` statement):
//!
//! ```text
//! SELECT item [, item]*
//! FROM ident [[LEFT [OUTER]] JOIN ident ON ident = ident [AND ...]]*
//! [WHERE expr] [GROUP BY ident [, ident]* [HAVING expr]]
//! [ORDER BY ident [ASC|DESC] [, ...]] [LIMIT n]
//!
//! item := * | expr [AS ident] | COUNT(*) | fn(ident) [AS ident]
//! expr := OR / AND / NOT / comparisons / LIKE / BETWEEN / IS [NOT] NULL
//!         / + - * / / literals / identifiers / parentheses
//! ```
//!
//! Identifiers are bare column names (the engine prefixes colliding join
//! columns with `right_`). Keywords are case-insensitive.

use df_data::{Scalar, SchemaRef};
use df_storage::zonemap::CmpOp;

use crate::error::{EngineError, Result};
use crate::expr::{col, Expr};
use crate::logical::{AggCall, AggFn, LogicalPlan};

/// Resolves table names to schemas during parsing.
pub trait Catalog {
    /// The schema of `table`, or an error if unknown.
    fn table_schema(&self, table: &str) -> Result<SchemaRef>;
}

// --------------------------------------------------------------- tokenizer

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Keyword(String), // uppercased
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(char),
    // Two-char operators.
    Le,
    Ge,
    Ne,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "AS", "AND", "OR", "NOT", "LIKE",
    "BETWEEN", "IS", "NULL", "ASC", "DESC", "JOIN", "ON", "TRUE", "FALSE", "COUNT", "SUM", "MIN",
    "MAX", "AVG", "HAVING", "LEFT", "OUTER",
];

fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => {
                            // Doubled quote = escaped quote.
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(ch) => s.push(ch),
                        None => {
                            return Err(EngineError::Parse("unterminated string literal".into()))
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            '0'..='9' => {
                let mut num = String::new();
                let mut is_float = false;
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        num.push(d);
                        chars.next();
                    } else if d == '.' && !is_float {
                        is_float = true;
                        num.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if is_float {
                    tokens.push(Token::Float(num.parse().map_err(|_| {
                        EngineError::Parse(format!("bad float literal {num}"))
                    })?));
                } else {
                    tokens.push(Token::Int(num.parse().map_err(|_| {
                        EngineError::Parse(format!("bad integer literal {num}"))
                    })?));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut word = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        word.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    tokens.push(Token::Keyword(upper));
                } else {
                    tokens.push(Token::Ident(word));
                }
            }
            '<' => {
                chars.next();
                match chars.peek() {
                    Some('=') => {
                        chars.next();
                        tokens.push(Token::Le);
                    }
                    Some('>') => {
                        chars.next();
                        tokens.push(Token::Ne);
                    }
                    _ => tokens.push(Token::Symbol('<')),
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token::Ge);
                } else {
                    tokens.push(Token::Symbol('>'));
                }
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token::Ne);
                } else {
                    return Err(EngineError::Parse("unexpected '!'".into()));
                }
            }
            '=' | '(' | ')' | ',' | '*' | '+' | '-' | '/' | ';' => {
                chars.next();
                tokens.push(Token::Symbol(c));
            }
            other => {
                return Err(EngineError::Parse(format!(
                    "unexpected character '{other}'"
                )))
            }
        }
    }
    Ok(tokens)
}

// ------------------------------------------------------------------ parser

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    catalog: &'a dyn Catalog,
}

#[derive(Debug)]
enum SelectItem {
    Star,
    Expr {
        expr: Expr,
        alias: Option<String>,
    },
    Agg {
        call: AggFn,
        column: Option<String>,
        alias: Option<String>,
    },
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(EngineError::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, sym: char) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: char) -> Result<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(EngineError::Parse(format!(
                "expected '{sym}', found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(name)) => Ok(name),
            other => Err(EngineError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn parse_select(&mut self) -> Result<LogicalPlan> {
        self.expect_keyword("SELECT")?;
        let mut items = vec![self.parse_select_item()?];
        while self.eat_symbol(',') {
            items.push(self.parse_select_item()?);
        }

        self.expect_keyword("FROM")?;
        let table = self.expect_ident()?;
        let mut plan = LogicalPlan::scan(&table, self.catalog.table_schema(&table)?);

        // Joins.
        loop {
            let join_type = if self.eat_keyword("LEFT") {
                self.eat_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                crate::logical::JoinType::Left
            } else if self.eat_keyword("JOIN") {
                crate::logical::JoinType::Inner
            } else {
                break;
            };
            let right_table = self.expect_ident()?;
            let right = LogicalPlan::scan(&right_table, self.catalog.table_schema(&right_table)?);
            self.expect_keyword("ON")?;
            let mut on: Vec<(String, String)> = Vec::new();
            loop {
                let a = self.expect_ident()?;
                self.expect_symbol('=')?;
                let b = self.expect_ident()?;
                on.push((a, b));
                if !self.eat_keyword("AND") {
                    break;
                }
            }
            // Orient keys: left side of each pair must exist in the
            // current plan's schema.
            let left_schema = plan.schema();
            let oriented: Vec<(String, String)> = on
                .into_iter()
                .map(|(a, b)| {
                    if left_schema.index_of(&a).is_ok() {
                        Ok((a, b))
                    } else if left_schema.index_of(&b).is_ok() {
                        Ok((b, a))
                    } else {
                        Err(EngineError::Plan(format!(
                            "neither {a} nor {b} is a column of the left side"
                        )))
                    }
                })
                .collect::<Result<_>>()?;
            let refs: Vec<(&str, &str)> = oriented
                .iter()
                .map(|(l, r)| (l.as_str(), r.as_str()))
                .collect();
            plan = plan.join_with(right, refs, join_type)?;
        }

        // WHERE.
        if self.eat_keyword("WHERE") {
            let predicate = self.parse_expr()?;
            plan = plan.filter(predicate)?;
        }

        // GROUP BY.
        let mut group_by: Vec<String> = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.expect_ident()?);
            while self.eat_symbol(',') {
                group_by.push(self.expect_ident()?);
            }
        }

        // Assemble aggregation vs plain projection.
        let mut pending_project: Option<Vec<(Expr, String)>>;
        let has_agg = items.iter().any(|i| matches!(i, SelectItem::Agg { .. }));
        if has_agg || !group_by.is_empty() {
            let mut calls = Vec::new();
            let mut select_names: Vec<(String, bool)> = Vec::new(); // (name, renamed)
            for item in &items {
                match item {
                    SelectItem::Star => {
                        return Err(EngineError::Plan(
                            "SELECT * cannot be combined with aggregation".into(),
                        ))
                    }
                    SelectItem::Agg {
                        call,
                        column,
                        alias,
                    } => {
                        let alias = alias.clone().unwrap_or_else(|| {
                            format!(
                                "{}_{}",
                                call.name(),
                                column.clone().unwrap_or_else(|| "star".into())
                            )
                        });
                        calls.push(AggCall {
                            func: *call,
                            column: column.clone(),
                            alias: alias.clone(),
                        });
                        select_names.push((alias, false));
                    }
                    SelectItem::Expr { expr, alias } => {
                        // Must be a bare group column.
                        match expr {
                            Expr::Col(name) if group_by.contains(name) => {
                                select_names.push((
                                    alias.clone().unwrap_or_else(|| name.clone()),
                                    alias.is_some(),
                                ));
                            }
                            other => {
                                return Err(EngineError::Plan(format!(
                                    "'{other}' must appear in GROUP BY or an aggregate"
                                )))
                            }
                        }
                    }
                }
            }
            plan = plan.aggregate(group_by.clone(), calls.clone())?;
            // HAVING filters the aggregate output (group columns and
            // aggregate aliases are in scope).
            if self.eat_keyword("HAVING") {
                let predicate = self.parse_expr()?;
                plan = plan.filter(predicate)?;
            }
            // Reorder/rename to the select order when it differs.
            let natural: Vec<String> = plan
                .schema()
                .fields()
                .iter()
                .map(|f| f.name.clone())
                .collect();
            let wanted: Vec<String> = select_names.iter().map(|(n, _)| n.clone()).collect();
            if natural != wanted {
                let mut exprs = Vec::new();
                let mut agg_iter = calls.iter();
                for (item, (name, _)) in items.iter().zip(&select_names) {
                    match item {
                        SelectItem::Agg { .. } => {
                            let call = agg_iter.next().expect("aligned");
                            exprs.push((col(call.alias.clone()), name.clone()));
                        }
                        SelectItem::Expr { expr, .. } => {
                            if let Expr::Col(c) = expr {
                                exprs.push((col(c.clone()), name.clone()));
                            }
                        }
                        SelectItem::Star => unreachable!(),
                    }
                }
                plan = plan.project_exprs(exprs)?;
            }
            pending_project = None;
        } else {
            // Plain projection (unless SELECT *), deferred so ORDER BY may
            // reference columns the projection would drop.
            let star = items.iter().any(|i| matches!(i, SelectItem::Star));
            if star {
                if items.len() > 1 {
                    return Err(EngineError::Plan(
                        "SELECT * cannot be combined with other items".into(),
                    ));
                }
                pending_project = None;
            } else {
                let mut exprs = Vec::new();
                for (i, item) in items.iter().enumerate() {
                    if let SelectItem::Expr { expr, alias } = item {
                        let name = alias.clone().unwrap_or_else(|| match expr {
                            Expr::Col(c) => c.clone(),
                            _ => format!("col{i}"),
                        });
                        exprs.push((expr.clone(), name));
                    }
                }
                pending_project = Some(exprs);
            }
        }

        // ORDER BY.
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            let mut keys = Vec::new();
            loop {
                let name = self.expect_ident()?;
                let asc = if self.eat_keyword("DESC") {
                    false
                } else {
                    self.eat_keyword("ASC");
                    true
                };
                keys.push((name, asc));
                if !self.eat_symbol(',') {
                    break;
                }
            }
            // Sort after the projection when every key is an output column
            // (aliases included); otherwise sort the pre-projection rows.
            let refs: Vec<(&str, bool)> = keys.iter().map(|(k, a)| (k.as_str(), *a)).collect();
            match &pending_project {
                Some(exprs) if !keys.iter().all(|(k, _)| exprs.iter().any(|(_, n)| n == k)) => {
                    plan = plan.sort(refs)?;
                    plan = plan.project_exprs(exprs.clone())?;
                    pending_project = None;
                }
                _ => {
                    if let Some(exprs) = pending_project.take() {
                        plan = plan.project_exprs(exprs)?;
                    }
                    plan = plan.sort(refs)?;
                }
            }
        }
        if let Some(exprs) = pending_project.take() {
            plan = plan.project_exprs(exprs)?;
        }

        // LIMIT.
        if self.eat_keyword("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => plan = plan.limit(n as u64),
                other => {
                    return Err(EngineError::Parse(format!(
                        "LIMIT expects a non-negative integer, found {other:?}"
                    )))
                }
            }
        }

        self.eat_symbol(';');
        if self.pos != self.tokens.len() {
            return Err(EngineError::Parse(format!(
                "trailing tokens after statement: {:?}",
                self.peek()
            )));
        }
        Ok(plan)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat_symbol('*') {
            return Ok(SelectItem::Star);
        }
        // Aggregate call?
        if let Some(Token::Keyword(kw)) = self.peek() {
            let func = match kw.as_str() {
                "COUNT" => Some(AggFn::Count),
                "SUM" => Some(AggFn::Sum),
                "MIN" => Some(AggFn::Min),
                "MAX" => Some(AggFn::Max),
                "AVG" => Some(AggFn::Avg),
                _ => None,
            };
            if let Some(func) = func {
                self.pos += 1;
                self.expect_symbol('(')?;
                let column = if self.eat_symbol('*') {
                    if func != AggFn::Count {
                        return Err(EngineError::Parse(format!(
                            "{}(*) is not valid",
                            func.name()
                        )));
                    }
                    None
                } else {
                    Some(self.expect_ident()?)
                };
                self.expect_symbol(')')?;
                let alias = self.parse_alias()?;
                return Ok(SelectItem::Agg {
                    call: func,
                    column,
                    alias,
                });
            }
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_alias(&mut self) -> Result<Option<String>> {
        if self.eat_keyword("AS") {
            Ok(Some(self.expect_ident()?))
        } else {
            Ok(None)
        }
    }

    // Expression precedence: OR < AND < NOT < comparison < additive <
    // multiplicative < unary < primary.
    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            Ok(self.parse_not()?.not())
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL.
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] LIKE / BETWEEN.
        let negate = if matches!(self.peek(), Some(Token::Keyword(k)) if k == "NOT") {
            // lookahead: NOT LIKE / NOT BETWEEN
            if matches!(
                self.tokens.get(self.pos + 1),
                Some(Token::Keyword(k)) if k == "LIKE" || k == "BETWEEN"
            ) {
                self.pos += 1;
                true
            } else {
                false
            }
        } else {
            false
        };
        if self.eat_keyword("LIKE") {
            let pattern = match self.next() {
                Some(Token::Str(s)) => s,
                other => {
                    return Err(EngineError::Parse(format!(
                        "LIKE expects a string pattern, found {other:?}"
                    )))
                }
            };
            let e = Expr::Like {
                expr: Box::new(left),
                pattern,
            };
            return Ok(if negate { e.not() } else { e });
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.parse_literal()?;
            self.expect_keyword("AND")?;
            let high = self.parse_literal()?;
            let e = Expr::Between {
                expr: Box::new(left),
                low,
                high,
            };
            return Ok(if negate { e.not() } else { e });
        }
        let op = match self.peek() {
            Some(Token::Symbol('=')) => Some(CmpOp::Eq),
            Some(Token::Symbol('<')) => Some(CmpOp::Lt),
            Some(Token::Symbol('>')) => Some(CmpOp::Gt),
            Some(Token::Le) => Some(CmpOp::Le),
            Some(Token::Ge) => Some(CmpOp::Ge),
            Some(Token::Ne) => Some(CmpOp::Ne),
            _ => None,
        };
        match op {
            None => Ok(left),
            Some(op) => {
                self.pos += 1;
                let right = self.parse_additive()?;
                Ok(left.cmp(op, right))
            }
        }
    }

    fn parse_literal(&mut self) -> Result<Scalar> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Scalar::Int(v)),
            Some(Token::Float(v)) => Ok(Scalar::Float(v)),
            Some(Token::Str(s)) => Ok(Scalar::Str(s)),
            Some(Token::Symbol('-')) => match self.next() {
                Some(Token::Int(v)) => Ok(Scalar::Int(-v)),
                Some(Token::Float(v)) => Ok(Scalar::Float(-v)),
                other => Err(EngineError::Parse(format!(
                    "expected number after '-', found {other:?}"
                ))),
            },
            other => Err(EngineError::Parse(format!(
                "expected literal, found {other:?}"
            ))),
        }
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            if self.eat_symbol('+') {
                left = left.add(self.parse_multiplicative()?);
            } else if self.eat_symbol('-') {
                left = left.sub(self.parse_multiplicative()?);
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            if self.eat_symbol('*') {
                left = left.mul(self.parse_unary()?);
            } else if self.eat_symbol('/') {
                left = left.div(self.parse_unary()?);
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_symbol('-') {
            // Constant-fold negative literals; general negation via 0 - x.
            match self.peek() {
                Some(Token::Int(v)) => {
                    let v = *v;
                    self.pos += 1;
                    return Ok(Expr::Lit(Scalar::Int(-v)));
                }
                Some(Token::Float(v)) => {
                    let v = *v;
                    self.pos += 1;
                    return Ok(Expr::Lit(Scalar::Float(-v)));
                }
                _ => {
                    let inner = self.parse_unary()?;
                    return Ok(Expr::Lit(Scalar::Int(0)).sub(inner));
                }
            }
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Expr::Lit(Scalar::Int(v))),
            Some(Token::Float(v)) => Ok(Expr::Lit(Scalar::Float(v))),
            Some(Token::Str(s)) => Ok(Expr::Lit(Scalar::Str(s))),
            Some(Token::Keyword(k)) if k == "TRUE" => Ok(Expr::Lit(Scalar::Bool(true))),
            Some(Token::Keyword(k)) if k == "FALSE" => Ok(Expr::Lit(Scalar::Bool(false))),
            Some(Token::Keyword(k)) if k == "NULL" => Ok(Expr::Lit(Scalar::Null)),
            Some(Token::Ident(name)) => Ok(col(name)),
            Some(Token::Symbol('(')) => {
                let inner = self.parse_expr()?;
                self.expect_symbol(')')?;
                Ok(inner)
            }
            other => Err(EngineError::Parse(format!(
                "unexpected token {other:?} in expression"
            ))),
        }
    }
}

/// Parse one SELECT statement into a logical plan.
pub fn parse(query: &str, catalog: &dyn Catalog) -> Result<LogicalPlan> {
    let tokens = tokenize(query)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        catalog,
    };
    parser.parse_select()
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_data::{DataType, Field, Schema};

    struct TestCatalog;

    impl Catalog for TestCatalog {
        fn table_schema(&self, table: &str) -> Result<SchemaRef> {
            match table {
                "orders" => Ok(Schema::new(vec![
                    Field::new("id", DataType::Int64),
                    Field::new("region", DataType::Utf8),
                    Field::new("amount", DataType::Float64),
                    Field::nullable("note", DataType::Utf8),
                ])
                .into_ref()),
                "regions" => Ok(Schema::new(vec![
                    Field::new("rname", DataType::Utf8),
                    Field::new("zone", DataType::Utf8),
                ])
                .into_ref()),
                other => Err(EngineError::Plan(format!("unknown table {other}"))),
            }
        }
    }

    fn plan(sql: &str) -> LogicalPlan {
        parse(sql, &TestCatalog).unwrap_or_else(|e| panic!("{sql}: {e}"))
    }

    #[test]
    fn select_star() {
        let p = plan("SELECT * FROM orders");
        assert!(matches!(p, LogicalPlan::Scan { .. }));
        assert_eq!(p.schema().len(), 4);
    }

    #[test]
    fn projection_with_aliases_and_arith() {
        let p = plan("SELECT id, amount * 2 AS double_amount FROM orders");
        let schema = p.schema();
        assert_eq!(schema.field(0).name, "id");
        assert_eq!(schema.field(1).name, "double_amount");
        assert_eq!(schema.field(1).dtype, DataType::Float64);
    }

    #[test]
    fn where_clause_with_precedence() {
        let p = plan("SELECT id FROM orders WHERE amount > 10.5 AND region = 'eu' OR id < 3");
        // (a AND b) OR c.
        fn find_filter(p: &LogicalPlan) -> &Expr {
            match p {
                LogicalPlan::Filter { predicate, .. } => predicate,
                LogicalPlan::Project { input, .. } => find_filter(input),
                other => panic!("no filter in {other}"),
            }
        }
        let pred = find_filter(&p);
        assert!(matches!(pred, Expr::Or(v) if v.len() == 2));
    }

    #[test]
    fn like_between_is_null() {
        let p = plan(
            "SELECT id FROM orders WHERE note LIKE 'urgent%' AND id BETWEEN 1 AND \
             100 AND note IS NOT NULL AND region NOT LIKE '%x%'",
        );
        let text = p.explain();
        assert!(text.contains("LIKE 'urgent%'"), "{text}");
        assert!(text.contains("BETWEEN 1 AND 100"), "{text}");
        assert!(text.contains("IS NOT NULL"), "{text}");
        assert!(text.contains("NOT (region LIKE '%x%')"), "{text}");
    }

    #[test]
    fn group_by_with_aggregates() {
        let p = plan(
            "SELECT region, COUNT(*) AS n, SUM(amount) AS total, AVG(amount) \
             FROM orders GROUP BY region",
        );
        let schema = p.schema();
        assert_eq!(schema.field(0).name, "region");
        assert_eq!(schema.field(1).name, "n");
        assert_eq!(schema.field(2).name, "total");
        assert_eq!(schema.field(3).name, "avg_amount");
    }

    #[test]
    fn aggregate_select_order_respected() {
        // Aggregates listed before the group column force a reorder.
        let p = plan("SELECT COUNT(*) AS n, region FROM orders GROUP BY region");
        let schema = p.schema();
        assert_eq!(schema.field(0).name, "n");
        assert_eq!(schema.field(1).name, "region");
        assert!(matches!(p, LogicalPlan::Project { .. }));
    }

    #[test]
    fn global_aggregate() {
        let p = plan("SELECT COUNT(*), MAX(amount) FROM orders");
        assert_eq!(p.schema().len(), 2);
        assert!(matches!(p, LogicalPlan::Aggregate { .. }));
    }

    #[test]
    fn join_with_orientation() {
        // ON written right = left still orients correctly.
        let p = plan("SELECT id, zone FROM orders JOIN regions ON rname = region");
        let text = p.explain();
        assert!(text.contains("HashJoin"), "{text}");
        assert!(text.contains("region = rname"), "{text}");
    }

    #[test]
    fn left_join_parses() {
        let p = plan("SELECT id, zone FROM orders LEFT OUTER JOIN regions ON rname = region");
        let text = p.explain();
        assert!(text.contains("HashJoin[LEFT]"), "{text}");
        // The right side's columns become nullable in the joined schema.
        let joined_schema = match &p {
            LogicalPlan::Project { input, .. } => input.schema(),
            other => other.schema(),
        };
        assert!(joined_schema.field_by_name("zone").unwrap().nullable);
    }

    #[test]
    fn order_by_and_limit() {
        let p = plan("SELECT id FROM orders ORDER BY id DESC, region LIMIT 10");
        let text = p.explain();
        assert!(text.contains("Limit: 10"));
        assert!(text.contains("Sort: id DESC, region ASC"));
    }

    #[test]
    fn string_escape() {
        let p = plan("SELECT id FROM orders WHERE region = 'it''s'");
        assert!(p.explain().contains("'it's'"));
    }

    #[test]
    fn negative_numbers() {
        let p = plan("SELECT id FROM orders WHERE id > -5 AND amount < -1.5");
        let text = p.explain();
        assert!(text.contains("> -5"), "{text}");
        assert!(text.contains("< -1.5"), "{text}");
    }

    #[test]
    fn errors_are_reported() {
        for bad in [
            "SELECT FROM orders",
            "SELECT * FROM ghost",
            "SELECT * FROM orders WHERE",
            "SELECT ghostcol FROM orders",
            "SELECT region, COUNT(*) FROM orders", // missing GROUP BY
            "SELECT * FROM orders LIMIT -1",
            "SELECT id FROM orders WHERE region LIKE 5",
            "SELECT SUM(*) FROM orders",
            "SELECT id FROM orders trailing",
            "SELECT 'unterminated FROM orders",
        ] {
            assert!(parse(bad, &TestCatalog).is_err(), "should fail: {bad}");
        }
    }

    #[test]
    fn having_filters_aggregate_output() {
        let p = plan(
            "SELECT region, COUNT(*) AS n FROM orders GROUP BY region \
             HAVING n > 5 ORDER BY region",
        );
        let text = p.explain();
        assert!(text.contains("Filter: (n > 5)"), "{text}");
        assert!(text.contains("Aggregate"), "{text}");
        // HAVING before GROUP BY output exists is an error.
        assert!(parse(
            "SELECT region FROM orders GROUP BY region HAVING ghost > 1",
            &TestCatalog
        )
        .is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        let p = plan("select id from orders where id = 1 limit 2");
        assert!(p.explain().contains("Limit: 2"));
    }

    #[test]
    fn parenthesized_expressions() {
        let p =
            plan("SELECT (id + 1) * 2 AS x FROM orders WHERE (id = 1 OR id = 2) AND amount > 0.0");
        let text = p.explain();
        assert!(text.contains("((id + 1) * 2)"), "{text}");
    }
}
