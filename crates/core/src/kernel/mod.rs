//! The accelerator programming model (§7.2).
//!
//! "Some accelerators ... are programmed directly — they lack an ISA —
//! simply by filling a small set of memory-mapped registers ... in addition
//! to the installation of some logic." We model that split exactly:
//!
//! - a [`Program`] is *logic*: a compact stack bytecode compiled from the
//!   offloadable subset of [`Expr`];
//! - its [`Program::registers`] are the *register file*: the literals
//!   (filter constants, LIKE patterns) that can be re-filled per query
//!   without recompiling the logic — see [`Program::with_registers`];
//! - [`Program::run`] is the device interpreter, used by every emulated
//!   accelerator so offloaded and host execution agree bit-for-bit.
//!
//! [`to_storage_predicate`] is the second lowering path: from `Expr` into
//! the self-contained predicate language smart storage accepts.
//!
//! The [`regex`] module holds the streaming regular-expression engine that
//! backs accelerated pattern matching (§3.3's AQUA example).

pub mod regex;

use df_data::{Batch, Bitmap, Column, DataType, Scalar, Schema};
use df_storage::pattern::LikePattern;
use df_storage::predicate::StoragePredicate;
use df_storage::zonemap::CmpOp;

use crate::error::{EngineError, Result};
use crate::expr::Expr;

/// One bytecode instruction. The VM is a stack machine whose values are
/// whole columns or predicate masks — vectorized by construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Push input column `columns[i]`.
    LoadCol(u16),
    /// Push register `registers[i]`, broadcast to the batch length.
    LoadReg(u16),
    /// Pop rhs, pop lhs, push the comparison mask.
    Cmp(CmpOp),
    /// Pop two masks, push their Kleene AND.
    And,
    /// Pop two masks, push their Kleene OR.
    Or,
    /// Pop a mask, push its Kleene NOT.
    Not,
    /// Pop a string column, push the LIKE mask against the pattern held in
    /// register `i`.
    Like(u16),
    /// Pop a column, push its IS NULL (or IS NOT NULL) mask.
    IsNull(bool),
    /// Pop a column, push the BETWEEN mask for registers `(lo, hi)`.
    Between(u16, u16),
}

/// A compiled device program: logic + register file + input column names.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The logic, installed once.
    pub instrs: Vec<Instr>,
    /// The register file, re-fillable per activation (§7.2).
    pub registers: Vec<Scalar>,
    /// Input columns the program reads, by name.
    pub columns: Vec<String>,
}

enum Value {
    Col(Column),
    Mask { truth: Bitmap, known: Bitmap },
}

impl Program {
    /// Compile the offloadable subset of predicate expressions. Returns
    /// `Err` for expressions a streaming accelerator cannot run (arithmetic
    /// and other host-only constructs), which the planner interprets as
    /// "keep this stage on the CPU".
    pub fn compile_predicate(expr: &Expr) -> Result<Program> {
        let mut program = Program {
            instrs: Vec::new(),
            registers: Vec::new(),
            columns: Vec::new(),
        };
        program.lower_predicate(expr)?;
        Ok(program)
    }

    /// Replace the register file (same logic, new constants). Lengths must
    /// match — the logic addresses registers by index.
    pub fn with_registers(mut self, registers: Vec<Scalar>) -> Result<Program> {
        if registers.len() != self.registers.len() {
            return Err(EngineError::Plan(format!(
                "register file size mismatch: {} vs {}",
                registers.len(),
                self.registers.len()
            )));
        }
        self.registers = registers;
        Ok(self)
    }

    fn col_index(&mut self, name: &str) -> u16 {
        match self.columns.iter().position(|c| c == name) {
            Some(i) => i as u16,
            None => {
                self.columns.push(name.to_string());
                (self.columns.len() - 1) as u16
            }
        }
    }

    fn reg_index(&mut self, value: Scalar) -> u16 {
        self.registers.push(value);
        (self.registers.len() - 1) as u16
    }

    fn lower_value(&mut self, expr: &Expr) -> Result<()> {
        match expr {
            Expr::Col(name) => {
                let idx = self.col_index(name);
                self.instrs.push(Instr::LoadCol(idx));
                Ok(())
            }
            Expr::Lit(value) => {
                let idx = self.reg_index(value.clone());
                self.instrs.push(Instr::LoadReg(idx));
                Ok(())
            }
            other => Err(EngineError::Plan(format!(
                "expression '{other}' is not offloadable as a kernel operand"
            ))),
        }
    }

    fn lower_predicate(&mut self, expr: &Expr) -> Result<()> {
        match expr {
            Expr::Cmp { op, left, right } => {
                self.lower_value(left)?;
                self.lower_value(right)?;
                self.instrs.push(Instr::Cmp(*op));
                Ok(())
            }
            Expr::And(children) if !children.is_empty() => {
                self.lower_predicate(&children[0])?;
                for c in &children[1..] {
                    self.lower_predicate(c)?;
                    self.instrs.push(Instr::And);
                }
                Ok(())
            }
            Expr::Or(children) if !children.is_empty() => {
                self.lower_predicate(&children[0])?;
                for c in &children[1..] {
                    self.lower_predicate(c)?;
                    self.instrs.push(Instr::Or);
                }
                Ok(())
            }
            Expr::Not(inner) => {
                self.lower_predicate(inner)?;
                self.instrs.push(Instr::Not);
                Ok(())
            }
            Expr::Like { expr, pattern } => {
                self.lower_value(expr)?;
                let reg = self.reg_index(Scalar::Str(pattern.clone()));
                self.instrs.push(Instr::Like(reg));
                Ok(())
            }
            Expr::IsNull { expr, negated } => {
                self.lower_value(expr)?;
                self.instrs.push(Instr::IsNull(*negated));
                Ok(())
            }
            Expr::Between { expr, low, high } => {
                self.lower_value(expr)?;
                let lo = self.reg_index(low.clone());
                let hi = self.reg_index(high.clone());
                self.instrs.push(Instr::Between(lo, hi));
                Ok(())
            }
            other => Err(EngineError::Plan(format!(
                "expression '{other}' is not offloadable as a kernel predicate"
            ))),
        }
    }

    /// Execute on a batch, producing the selection mask (NULL collapsed to
    /// non-matching, exactly like [`Expr::eval_predicate`]).
    pub fn run(&self, batch: &Batch) -> Result<Bitmap> {
        let rows = batch.rows();
        let mut stack: Vec<Value> = Vec::with_capacity(8);
        for instr in &self.instrs {
            match instr {
                Instr::LoadCol(i) => {
                    let name = self.columns.get(*i as usize).ok_or_else(|| {
                        EngineError::Internal("kernel column index out of range".into())
                    })?;
                    stack.push(Value::Col(batch.column_by_name(name)?.clone()));
                }
                Instr::LoadReg(i) => {
                    let value = self.registers.get(*i as usize).ok_or_else(|| {
                        EngineError::Internal("kernel register out of range".into())
                    })?;
                    let dtype = value.data_type().unwrap_or(DataType::Int64);
                    let mut b = df_data::ColumnBuilder::new(dtype, rows);
                    for _ in 0..rows {
                        b.push(value.clone())?;
                    }
                    stack.push(Value::Col(b.finish()));
                }
                Instr::Cmp(op) => {
                    let rhs = pop_col(&mut stack)?;
                    let lhs = pop_col(&mut stack)?;
                    let mut truth = Bitmap::zeros(rows);
                    let mut known = Bitmap::ones(rows);
                    for i in 0..rows {
                        let (a, b) = (lhs.scalar_at(i), rhs.scalar_at(i));
                        if a.is_null() || b.is_null() {
                            known.clear(i);
                        } else if op.matches(a.total_cmp(&b)) {
                            truth.set(i);
                        }
                    }
                    stack.push(Value::Mask { truth, known });
                }
                Instr::And => {
                    let (bt, bk) = pop_mask(&mut stack)?;
                    let (at, ak) = pop_mask(&mut stack)?;
                    // Kleene AND.
                    let truth = at.and(&ak).and(&bt.and(&bk));
                    let false_a = at.not().and(&ak);
                    let false_b = bt.not().and(&bk);
                    let known = false_a.or(&false_b).or(&ak.and(&bk));
                    stack.push(Value::Mask { truth, known });
                }
                Instr::Or => {
                    let (bt, bk) = pop_mask(&mut stack)?;
                    let (at, ak) = pop_mask(&mut stack)?;
                    // Kleene OR.
                    let truth = at.and(&ak).or(&bt.and(&bk));
                    let known = truth.or(&ak.and(&bk));
                    stack.push(Value::Mask { truth, known });
                }
                Instr::Not => {
                    let (t, k) = pop_mask(&mut stack)?;
                    stack.push(Value::Mask {
                        truth: t.not().and(&k),
                        known: k,
                    });
                }
                Instr::Like(reg) => {
                    let col = pop_col(&mut stack)?;
                    let pattern = self.registers[*reg as usize]
                        .as_str()
                        .ok_or_else(|| EngineError::Internal("LIKE register not a string".into()))?
                        .to_string();
                    let compiled = LikePattern::compile(&pattern);
                    let mut truth = Bitmap::zeros(rows);
                    let mut known = Bitmap::ones(rows);
                    for i in 0..rows {
                        if col.is_null(i) {
                            known.clear(i);
                        } else if compiled.matches(col.str_at(i)) {
                            truth.set(i);
                        }
                    }
                    stack.push(Value::Mask { truth, known });
                }
                Instr::IsNull(negated) => {
                    let col = pop_col(&mut stack)?;
                    let truth = Bitmap::from_iter((0..rows).map(|i| col.is_null(i) != *negated));
                    stack.push(Value::Mask {
                        truth,
                        known: Bitmap::ones(rows),
                    });
                }
                Instr::Between(lo, hi) => {
                    let col = pop_col(&mut stack)?;
                    let low = &self.registers[*lo as usize];
                    let high = &self.registers[*hi as usize];
                    let mut truth = Bitmap::zeros(rows);
                    let mut known = Bitmap::ones(rows);
                    for i in 0..rows {
                        let v = col.scalar_at(i);
                        if v.is_null() || low.is_null() || high.is_null() {
                            known.clear(i);
                        } else if v.total_cmp(low) != std::cmp::Ordering::Less
                            && v.total_cmp(high) != std::cmp::Ordering::Greater
                        {
                            truth.set(i);
                        }
                    }
                    stack.push(Value::Mask { truth, known });
                }
            }
        }
        match stack.pop() {
            Some(Value::Mask { truth, known }) if stack.is_empty() => Ok(truth.and(&known)),
            _ => Err(EngineError::Internal(
                "kernel program did not leave exactly one mask".into(),
            )),
        }
    }
}

fn pop_col(stack: &mut Vec<Value>) -> Result<Column> {
    match stack.pop() {
        Some(Value::Col(c)) => Ok(c),
        _ => Err(EngineError::Internal("kernel expected a column".into())),
    }
}

fn pop_mask(stack: &mut Vec<Value>) -> Result<(Bitmap, Bitmap)> {
    match stack.pop() {
        Some(Value::Mask { truth, known }) => Ok((truth, known)),
        _ => Err(EngineError::Internal("kernel expected a mask".into())),
    }
}

/// Lower an expression into the storage predicate language, if it is
/// expressible there (column-vs-literal comparisons, LIKE, BETWEEN, IS
/// NULL, and boolean combinations). `None` means "not pushable".
pub fn to_storage_predicate(expr: &Expr) -> Option<StoragePredicate> {
    match expr {
        Expr::Cmp { op, left, right } => match (left.as_ref(), right.as_ref()) {
            (Expr::Col(c), Expr::Lit(v)) => Some(StoragePredicate::Cmp {
                column: c.clone(),
                op: *op,
                literal: v.clone(),
            }),
            // literal OP col: flip the operator.
            (Expr::Lit(v), Expr::Col(c)) => {
                let flipped = match op {
                    CmpOp::Lt => CmpOp::Gt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Ge => CmpOp::Le,
                    other => *other,
                };
                Some(StoragePredicate::Cmp {
                    column: c.clone(),
                    op: flipped,
                    literal: v.clone(),
                })
            }
            _ => None,
        },
        Expr::And(children) => children
            .iter()
            .map(to_storage_predicate)
            .collect::<Option<Vec<_>>>()
            .map(StoragePredicate::And),
        Expr::Or(children) => children
            .iter()
            .map(to_storage_predicate)
            .collect::<Option<Vec<_>>>()
            .map(StoragePredicate::Or),
        Expr::Not(inner) => to_storage_predicate(inner).map(|p| StoragePredicate::Not(Box::new(p))),
        Expr::Like { expr, pattern } => match expr.as_ref() {
            Expr::Col(c) => Some(StoragePredicate::Like {
                column: c.clone(),
                pattern: pattern.clone(),
            }),
            _ => None,
        },
        Expr::IsNull { expr, negated } => match expr.as_ref() {
            Expr::Col(c) => Some(StoragePredicate::IsNull {
                column: c.clone(),
                negated: *negated,
            }),
            _ => None,
        },
        Expr::Between { expr, low, high } => match expr.as_ref() {
            Expr::Col(c) => Some(StoragePredicate::Between {
                column: c.clone(),
                low: low.clone(),
                high: high.clone(),
            }),
            _ => None,
        },
        Expr::Lit(Scalar::Bool(true)) => Some(StoragePredicate::True),
        _ => None,
    }
}

/// Check that the lowered storage predicate's columns all exist in a schema
/// (the validation the storage server would do at install time).
pub fn validate_against(pred: &StoragePredicate, schema: &Schema) -> Result<()> {
    for c in pred.columns() {
        schema.field_by_name(&c)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use df_data::batch::batch_of;

    fn sample() -> Batch {
        batch_of(vec![
            ("a", Column::from_i64(vec![1, 2, 3, 4, 5])),
            (
                "b",
                Column::from_opt_i64(&[Some(10), None, Some(30), None, Some(50)]),
            ),
            (
                "s",
                Column::from_strs(&["alpha", "beta", "gamma", "delta", "alphabet"]),
            ),
        ])
    }

    fn agree(expr: &Expr) {
        let batch = sample();
        let host = expr.eval_predicate(&batch).unwrap();
        let device = Program::compile_predicate(expr)
            .unwrap()
            .run(&batch)
            .unwrap();
        assert_eq!(host, device, "host/device disagree for {expr}");
    }

    #[test]
    fn device_matches_host_on_comparisons() {
        agree(&col("a").gt(lit(2)));
        agree(&col("a").eq(lit(3)));
        agree(&lit(3).lt(col("a")));
        agree(&col("a").le(col("b")));
    }

    #[test]
    fn device_matches_host_on_null_logic() {
        agree(&col("b").gt(lit(0)));
        agree(&col("b").gt(lit(0)).not());
        agree(&col("b").is_null());
        agree(&col("b").is_not_null());
        agree(&col("b").gt(lit(20)).and(col("a").lt(lit(5))));
        agree(&col("b").gt(lit(20)).or(col("a").lt(lit(2))));
    }

    #[test]
    fn device_matches_host_on_strings() {
        agree(&col("s").like("alpha%"));
        agree(&col("s").like("%a"));
        agree(&col("s").eq(lit("beta")));
    }

    #[test]
    fn device_matches_host_on_between() {
        agree(&col("a").between(2, 4));
        agree(&col("b").between(5, 35));
    }

    #[test]
    fn register_refill_changes_constants_not_logic() {
        let program = Program::compile_predicate(&col("a").gt(lit(2))).unwrap();
        let instrs = program.instrs.clone();
        let refilled = program.with_registers(vec![Scalar::Int(4)]).unwrap();
        assert_eq!(refilled.instrs, instrs);
        let batch = sample();
        let mask = refilled.run(&batch).unwrap();
        assert_eq!(mask.iter_ones().collect::<Vec<_>>(), vec![4]); // a > 4
    }

    #[test]
    fn register_refill_size_checked() {
        let program = Program::compile_predicate(&col("a").gt(lit(2))).unwrap();
        assert!(program.with_registers(vec![]).is_err());
    }

    #[test]
    fn arithmetic_is_not_offloadable() {
        let err = Program::compile_predicate(&col("a").add(lit(1)).gt(lit(2)));
        assert!(err.is_err());
    }

    #[test]
    fn pushdown_lowering() {
        let p = to_storage_predicate(&col("a").gt(lit(2))).unwrap();
        assert_eq!(p, StoragePredicate::cmp("a", CmpOp::Gt, 2i64));
        // Flipped literal-first comparison.
        let q = to_storage_predicate(&lit(2).lt(col("a"))).unwrap();
        assert_eq!(q, StoragePredicate::cmp("a", CmpOp::Gt, 2i64));
        // Conjunction lowers recursively.
        let r = to_storage_predicate(&col("a").gt(lit(2)).and(col("s").like("a%"))).unwrap();
        assert!(matches!(r, StoragePredicate::And(v) if v.len() == 2));
        // Arithmetic blocks lowering entirely.
        assert!(to_storage_predicate(&col("a").add(lit(1)).gt(lit(2))).is_none());
        // Partial non-lowerable conjunct blocks the conjunction (the
        // planner splits conjunctions before calling this).
        assert!(
            to_storage_predicate(&col("a").gt(lit(2)).and(col("a").add(lit(1)).gt(lit(0))))
                .is_none()
        );
    }

    #[test]
    fn pushed_predicate_agrees_with_host() {
        let batch = sample();
        for expr in [
            col("a").between(2, 4),
            col("s").like("%eta"),
            col("b").is_null(),
            col("a").gt(lit(1)).and(col("a").lt(lit(5))),
        ] {
            let host = expr.eval_predicate(&batch).unwrap();
            let pushed = to_storage_predicate(&expr).unwrap();
            let storage = pushed.evaluate(&batch).unwrap();
            assert_eq!(host, storage, "storage/host disagree for {expr}");
        }
    }

    #[test]
    fn validate_checks_columns() {
        let schema = sample().schema().clone();
        let good = to_storage_predicate(&col("a").gt(lit(0))).unwrap();
        assert!(validate_against(&good, &schema).is_ok());
        let bad = to_storage_predicate(&col("ghost").gt(lit(0))).unwrap();
        assert!(validate_against(&bad, &schema).is_err());
    }
}
