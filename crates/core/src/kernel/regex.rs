//! A streaming regular-expression engine (Thompson NFA).
//!
//! §3.3 cites hardware pattern matchers being far faster than CPUs for
//! regex (the AQUA LIKE pushdown and \[46\]). Hardware matchers are
//! NFA/DFA-based precisely because simulation advances one input character
//! at a time with bounded state — no backtracking, no buffering — which is
//! the streaming property in-path devices need. This engine is built the
//! same way: compile to an NFA, simulate with a state set, O(states) work
//! per input character.
//!
//! Syntax: literals, `.`, `*`, `+`, `?`, alternation `|`, groups `(...)`,
//! character classes `[a-z]` / negated `[^...]`, anchors `^` `$`, and `\`
//! escapes.

use crate::error::{EngineError, Result};

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    states: Vec<State>,
    start: usize,
    source: String,
    anchored_start: bool,
    anchored_end: bool,
}

#[derive(Debug, Clone)]
enum State {
    /// Consume one character matching the class, then go to `next`.
    Char { class: CharClass, next: usize },
    /// Fork without consuming.
    Split { a: usize, b: usize },
    /// Accept.
    Match,
}

#[derive(Debug, Clone, PartialEq)]
enum CharClass {
    /// One specific character.
    Literal(char),
    /// Any character (`.`).
    Any,
    /// A set of ranges; `negated` inverts membership.
    Set {
        ranges: Vec<(char, char)>,
        negated: bool,
    },
}

impl CharClass {
    fn matches(&self, c: char) -> bool {
        match self {
            CharClass::Literal(l) => *l == c,
            CharClass::Any => true,
            CharClass::Set { ranges, negated } => {
                let inside = ranges.iter().any(|(lo, hi)| *lo <= c && c <= *hi);
                inside != *negated
            }
        }
    }
}

// ------------------------------------------------------------------ parser

/// Fragment under construction: entry state + dangling exits to patch.
#[derive(Debug)]
struct Frag {
    start: usize,
    /// Indices of states whose `next`/`b` must be patched to the successor.
    outs: Vec<Out>,
}

#[derive(Debug, Clone, Copy)]
enum Out {
    Next(usize),
    SplitB(usize),
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    states: Vec<State>,
}

impl Parser<'_> {
    fn push(&mut self, state: State) -> usize {
        self.states.push(state);
        self.states.len() - 1
    }

    fn patch(&mut self, outs: &[Out], target: usize) {
        for out in outs {
            match out {
                Out::Next(i) => match &mut self.states[*i] {
                    State::Char { next, .. } => *next = target,
                    State::Split { a, .. } => *a = target,
                    State::Match => unreachable!(),
                },
                Out::SplitB(i) => match &mut self.states[*i] {
                    State::Split { b, .. } => *b = target,
                    _ => unreachable!(),
                },
            }
        }
    }

    /// alternation := concat ('|' concat)*
    fn parse_alternation(&mut self) -> Result<Frag> {
        let mut frag = self.parse_concat()?;
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            let rhs = self.parse_concat()?;
            let split = self.push(State::Split {
                a: frag.start,
                b: rhs.start,
            });
            let mut outs = frag.outs;
            outs.extend(rhs.outs);
            frag = Frag { start: split, outs };
        }
        Ok(frag)
    }

    /// concat := repeat*
    fn parse_concat(&mut self) -> Result<Frag> {
        let mut current: Option<Frag> = None;
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let next = self.parse_repeat()?;
            current = Some(match current {
                None => next,
                Some(prev) => {
                    self.patch(&prev.outs, next.start);
                    Frag {
                        start: prev.start,
                        outs: next.outs,
                    }
                }
            });
        }
        Ok(current.unwrap_or_else(|| {
            // Empty fragment: a split that immediately continues.
            let s = self.push(State::Split { a: 0, b: 0 });
            Frag {
                start: s,
                outs: vec![Out::Next(s), Out::SplitB(s)],
            }
        }))
    }

    /// repeat := atom ('*' | '+' | '?')?
    fn parse_repeat(&mut self) -> Result<Frag> {
        let atom = self.parse_atom()?;
        match self.chars.peek() {
            Some('*') => {
                self.chars.next();
                let split = self.push(State::Split {
                    a: atom.start,
                    b: 0,
                });
                self.patch(&atom.outs, split);
                Ok(Frag {
                    start: split,
                    outs: vec![Out::SplitB(split)],
                })
            }
            Some('+') => {
                self.chars.next();
                let split = self.push(State::Split {
                    a: atom.start,
                    b: 0,
                });
                self.patch(&atom.outs, split);
                Ok(Frag {
                    start: atom.start,
                    outs: vec![Out::SplitB(split)],
                })
            }
            Some('?') => {
                self.chars.next();
                let split = self.push(State::Split {
                    a: atom.start,
                    b: 0,
                });
                let mut outs = atom.outs;
                outs.push(Out::SplitB(split));
                Ok(Frag { start: split, outs })
            }
            _ => Ok(atom),
        }
    }

    /// atom := '(' alternation ')' | class | '.' | escaped | literal
    fn parse_atom(&mut self) -> Result<Frag> {
        let c = self
            .chars
            .next()
            .ok_or_else(|| EngineError::Parse("unexpected end of pattern".into()))?;
        match c {
            '(' => {
                let inner = self.parse_alternation()?;
                if self.chars.next() != Some(')') {
                    return Err(EngineError::Parse("unclosed group".into()));
                }
                Ok(inner)
            }
            '[' => {
                let class = self.parse_class()?;
                let s = self.push(State::Char { class, next: 0 });
                Ok(Frag {
                    start: s,
                    outs: vec![Out::Next(s)],
                })
            }
            '.' => {
                let s = self.push(State::Char {
                    class: CharClass::Any,
                    next: 0,
                });
                Ok(Frag {
                    start: s,
                    outs: vec![Out::Next(s)],
                })
            }
            '\\' => {
                let escaped = self
                    .chars
                    .next()
                    .ok_or_else(|| EngineError::Parse("dangling escape".into()))?;
                let s = self.push(State::Char {
                    class: CharClass::Literal(escaped),
                    next: 0,
                });
                Ok(Frag {
                    start: s,
                    outs: vec![Out::Next(s)],
                })
            }
            '*' | '+' | '?' => Err(EngineError::Parse(format!(
                "repetition '{c}' with nothing to repeat"
            ))),
            literal => {
                let s = self.push(State::Char {
                    class: CharClass::Literal(literal),
                    next: 0,
                });
                Ok(Frag {
                    start: s,
                    outs: vec![Out::Next(s)],
                })
            }
        }
    }

    fn parse_class(&mut self) -> Result<CharClass> {
        let mut negated = false;
        if self.chars.peek() == Some(&'^') {
            self.chars.next();
            negated = true;
        }
        let mut ranges = Vec::new();
        loop {
            let c = self
                .chars
                .next()
                .ok_or_else(|| EngineError::Parse("unclosed character class".into()))?;
            if c == ']' {
                if ranges.is_empty() {
                    return Err(EngineError::Parse("empty character class".into()));
                }
                return Ok(CharClass::Set { ranges, negated });
            }
            let lo = if c == '\\' {
                self.chars
                    .next()
                    .ok_or_else(|| EngineError::Parse("dangling escape in class".into()))?
            } else {
                c
            };
            if self.chars.peek() == Some(&'-') {
                self.chars.next();
                match self.chars.peek() {
                    Some(&']') | None => {
                        // Trailing '-' is a literal.
                        ranges.push((lo, lo));
                        ranges.push(('-', '-'));
                    }
                    Some(_) => {
                        let hi = self.chars.next().unwrap();
                        if hi < lo {
                            return Err(EngineError::Parse(format!("inverted range {lo}-{hi}")));
                        }
                        ranges.push((lo, hi));
                    }
                }
            } else {
                ranges.push((lo, lo));
            }
        }
    }
}

impl Regex {
    /// Compile a pattern.
    pub fn compile(pattern: &str) -> Result<Regex> {
        let mut body = pattern;
        let anchored_start = body.starts_with('^');
        if anchored_start {
            body = &body[1..];
        }
        let anchored_end = body.ends_with('$') && !body.ends_with("\\$");
        if anchored_end {
            body = &body[..body.len() - 1];
        }
        let mut parser = Parser {
            chars: body.chars().peekable(),
            states: Vec::new(),
        };
        let frag = parser.parse_alternation()?;
        if parser.chars.next().is_some() {
            return Err(EngineError::Parse("unbalanced ')'".into()));
        }
        let accept = parser.push(State::Match);
        parser.patch(&frag.outs, accept);
        Ok(Regex {
            states: parser.states,
            start: frag.start,
            source: pattern.to_string(),
            anchored_start,
            anchored_end,
        })
    }

    /// The original pattern.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Number of NFA states (proxy for device table size).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    fn add_state(&self, set: &mut Vec<bool>, list: &mut Vec<usize>, s: usize) {
        if set[s] {
            return;
        }
        set[s] = true;
        if let State::Split { a, b } = self.states[s] {
            self.add_state(set, list, a);
            self.add_state(set, list, b);
        } else {
            list.push(s);
        }
    }

    fn match_from(&self, input: &str) -> bool {
        let n = self.states.len();
        let mut current = Vec::new();
        let mut set = vec![false; n];
        self.add_state(&mut set, &mut current, self.start);
        if !self.anchored_end
            && current
                .iter()
                .any(|&s| matches!(self.states[s], State::Match))
        {
            return true;
        }
        let mut accepted_unanchored = current
            .iter()
            .any(|&s| matches!(self.states[s], State::Match));
        for c in input.chars() {
            let mut next = Vec::new();
            let mut next_set = vec![false; n];
            for &s in &current {
                if let State::Char { class, next: nx } = &self.states[s] {
                    if class.matches(c) {
                        self.add_state(&mut next_set, &mut next, *nx);
                    }
                }
            }
            current = next;
            let has_match = current
                .iter()
                .any(|&s| matches!(self.states[s], State::Match));
            if has_match {
                if !self.anchored_end {
                    return true;
                }
                accepted_unanchored = true;
            } else {
                accepted_unanchored = false;
            }
            if current.is_empty() && !self.anchored_end {
                return false;
            }
        }
        if self.anchored_end {
            current
                .iter()
                .any(|&s| matches!(self.states[s], State::Match))
        } else {
            accepted_unanchored
        }
    }

    /// Whether the pattern matches anywhere in `input` (or per anchors).
    pub fn is_match(&self, input: &str) -> bool {
        if self.anchored_start {
            return self.match_from(input);
        }
        // Unanchored: try every start offset. NFA simulation per offset
        // keeps the engine simple; a production device compiles `.*` in.
        let mut offsets: Vec<usize> = input.char_indices().map(|(i, _)| i).collect();
        offsets.push(input.len());
        offsets.into_iter().any(|o| self.match_from(&input[o..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, input: &str) -> bool {
        Regex::compile(pattern).unwrap().is_match(input)
    }

    #[test]
    fn literals_and_dot() {
        assert!(m("abc", "xxabcxx"));
        assert!(!m("abc", "abx"));
        assert!(m("a.c", "abc"));
        assert!(m("a.c", "a0c"));
        assert!(!m("a.c", "ac"));
    }

    #[test]
    fn repetition() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("ab?c", "abbc"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cat|dog", "hotdog"));
        assert!(m("gr(e|a)y", "grey"));
        assert!(m("gr(e|a)y", "gray"));
        assert!(!m("gr(e|a)y", "groy"));
        assert!(m("(ab)+", "ababab"));
        assert!(m("a(b|c)*d", "abcbcbd"));
    }

    #[test]
    fn character_classes() {
        assert!(m("[a-z]+", "hello"));
        assert!(!m("^[a-z]+$", "Hello"));
        assert!(m("[0-9][0-9]*", "x42y"));
        assert!(m("[^0-9]", "a"));
        assert!(!m("^[^0-9]+$", "a1b"));
        assert!(m("[a\\-z]", "-"));
        assert!(m("[abc-]", "-"));
    }

    #[test]
    fn anchors() {
        assert!(m("^abc", "abcdef"));
        assert!(!m("^abc", "xabc"));
        assert!(m("def$", "abcdef"));
        assert!(!m("def$", "defabc"));
        assert!(m("^abc$", "abc"));
        assert!(!m("^abc$", "abcd"));
    }

    #[test]
    fn escapes() {
        assert!(m("a\\.c", "a.c"));
        assert!(!m("a\\.c", "abc"));
        assert!(m("a\\*b", "a*b"));
    }

    #[test]
    fn no_backtracking_blowup() {
        // The classic (a*)*b killer: linear here because NFA simulation.
        let pattern = "a*a*a*a*a*a*a*a*a*b";
        let input = "a".repeat(200);
        assert!(!m(pattern, &input));
        assert!(m(pattern, &(input + "b")));
    }

    #[test]
    fn empty_pattern_matches_everything() {
        assert!(m("", ""));
        assert!(m("", "anything"));
        assert!(m("a*", "zzz")); // matches empty prefix
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::compile("(abc").is_err());
        assert!(Regex::compile("abc)").is_err());
        assert!(Regex::compile("[abc").is_err());
        assert!(Regex::compile("*a").is_err());
        assert!(Regex::compile("[z-a]").is_err());
        assert!(Regex::compile("a\\").is_err());
    }

    #[test]
    fn like_equivalence_spot_check() {
        // LIKE 'abc%' == regex ^abc.*  — the two pushdown languages agree.
        use df_storage::pattern::like;
        let inputs = ["abc", "abcdef", "xabc", "ab"];
        for input in inputs {
            assert_eq!(
                like(input, "abc%"),
                m("^abc", input),
                "disagreement on {input}"
            );
        }
    }

    #[test]
    fn state_count_reported() {
        let re = Regex::compile("a(b|c)*d").unwrap();
        assert!(re.state_count() > 3);
        assert_eq!(re.source(), "a(b|c)*d");
    }
}
