//! Distributed, NIC-orchestrated query execution — Figure 4's "scattering
//! pipeline to support a distributed, partitioned hash join".
//!
//! Every worker node hash-partitions its local build- and probe-side data
//! by the join key and scatters the partitions to their owner nodes; each
//! node then joins its partition locally. The scatter runs either on the
//! smart NIC (`smart_exchange = true`, the paper's proposal: the host CPU
//! never touches in-flight bytes) or on the host CPU (the baseline). Both
//! produce identical results; the [`DistributedReport`] quantifies the
//! difference in host involvement.

use std::sync::{Arc, Barrier};

use df_codec::wire::WireOptions;
use df_data::{Batch, SchemaRef};
use df_net::collective::{gather, scatter_host, scatter_smart, CollectiveStats};
use df_net::transport::Network;

use crate::error::{EngineError, Result};
use crate::ops::{HashJoinOp, Operator};

/// Configuration of a distributed join run.
#[derive(Debug, Clone)]
pub struct DistributedConfig {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Scatter on the NIC (true) or the host CPU (false).
    pub smart_exchange: bool,
    /// Wire options for the exchange (compression etc.).
    pub wire: WireOptions,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig {
            nodes: 4,
            smart_exchange: true,
            wire: WireOptions::plain(),
        }
    }
}

/// What a distributed join run measured.
#[derive(Debug, Clone, Default)]
pub struct DistributedReport {
    /// Total join result rows across nodes.
    pub result_rows: usize,
    /// Result rows produced per node.
    pub per_node_rows: Vec<usize>,
    /// Payload bytes host CPUs touched during the exchange.
    pub host_bytes: u64,
    /// Payload bytes NICs processed during the exchange.
    pub nic_bytes: u64,
    /// Encoded bytes moved by the transport (includes loopback).
    pub wire_bytes: u64,
    /// Encoded bytes that crossed between different nodes.
    pub cross_node_bytes: u64,
}

/// Run a partitioned hash join across `config.nodes` worker threads.
///
/// `build` and `probe` are the two tables, arbitrarily pre-partitioned
/// across nodes round-robin (as cloud object storage would hand them out).
/// `on` is the `(build_column, probe_column)` key pair. Returns the joined
/// result (concatenated across nodes) plus the report.
pub fn distributed_hash_join(
    build: &Batch,
    probe: &Batch,
    on: (&str, &str),
    join_schema: SchemaRef,
    config: &DistributedConfig,
) -> Result<(Batch, DistributedReport)> {
    let nodes = config.nodes.max(1);
    let network = Arc::new(Network::new(nodes));
    let all_nodes: Vec<usize> = (0..nodes).collect();

    // Round-robin initial placement (batch granularity).
    let build_parts: Vec<Vec<Batch>> = split_round_robin(build, nodes);
    let probe_parts: Vec<Vec<Batch>> = split_round_robin(probe, nodes);
    // No node may start scattering the probe side until every node has
    // drained its build-side gather: otherwise a fast node's probe frames
    // land in a slow node's build partition.
    let phase_barrier = Barrier::new(nodes);

    let results: Vec<Result<(Option<Batch>, CollectiveStats)>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nodes);
        for node in 0..nodes {
            let network = network.clone();
            let phase_barrier = &phase_barrier;
            let my_build = build_parts[node].clone();
            let my_probe = probe_parts[node].clone();
            let all_nodes = all_nodes.clone();
            let wire = config.wire;
            let smart = config.smart_exchange;
            let build_schema = build.schema().clone();
            let join_schema = join_schema.clone();
            let build_key = on.0.to_string();
            let probe_key = on.1.to_string();
            handles.push(scope.spawn(move || {
                let scatter = if smart { scatter_smart } else { scatter_host };
                // Phase 1: exchange the build side.
                let mut stats = scatter(
                    &network,
                    node,
                    &my_build,
                    &[build_key.as_str()],
                    &all_nodes,
                    &wire,
                )?;
                let my_build_partition = gather(&network, node, nodes)?;
                phase_barrier.wait();
                // Phase 2: exchange the probe side.
                let probe_stats = scatter(
                    &network,
                    node,
                    &my_probe,
                    &[probe_key.as_str()],
                    &all_nodes,
                    &wire,
                )?;
                stats.host_bytes += probe_stats.host_bytes;
                stats.nic_bytes += probe_stats.nic_bytes;
                stats.wire_bytes += probe_stats.wire_bytes;
                stats.rows += probe_stats.rows;
                let my_probe_partition = gather(&network, node, nodes)?;
                // Phase 3: local hash join of the owned partition.
                let mut op =
                    HashJoinOp::new(vec![(build_key, probe_key)], build_schema, join_schema);
                for b in my_build_partition {
                    op.build(b)?;
                }
                let mut outs = Vec::new();
                for p in my_probe_partition {
                    outs.extend(op.push(p)?);
                }
                outs.extend(op.finish()?);
                let local = if outs.is_empty() {
                    None
                } else {
                    Some(Batch::concat(&outs)?)
                };
                Ok((local, stats))
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut report = DistributedReport::default();
    let mut parts = Vec::new();
    for r in results {
        let (local, stats) = r?;
        let rows = local.as_ref().map_or(0, Batch::rows);
        report.per_node_rows.push(rows);
        report.result_rows += rows;
        report.host_bytes += stats.host_bytes;
        report.nic_bytes += stats.nic_bytes;
        report.wire_bytes += stats.wire_bytes;
        if let Some(b) = local {
            parts.push(b);
        }
    }
    let transport = network.stats();
    report.cross_node_bytes = transport.cross_node_bytes();
    let result = if parts.is_empty() {
        Batch::empty(join_schema)
    } else {
        Batch::concat(&parts).map_err(EngineError::from)?
    };
    Ok((result, report))
}

/// The broadcast-join alternative (§4.4: "joins involving a small table"):
/// instead of exchanging both sides, every node receives a full copy of the
/// small build side (NIC multicast) and probes only its local data — no
/// probe-side exchange at all. Pays `nodes × |build|` on the wire to save
/// `|probe|`; the right choice when the build side is small.
pub fn distributed_broadcast_join(
    build: &Batch,
    probe: &Batch,
    on: (&str, &str),
    join_schema: SchemaRef,
    config: &DistributedConfig,
) -> Result<(Batch, DistributedReport)> {
    let nodes = config.nodes.max(1);
    let network = Arc::new(Network::new(nodes));
    let probe_parts: Vec<Vec<Batch>> = split_round_robin(probe, nodes);

    let results: Vec<Result<(Option<Batch>, CollectiveStats)>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nodes);
        for (node, part) in probe_parts.iter().enumerate() {
            let network = network.clone();
            let my_probe = part.clone();
            let wire = config.wire;
            let build = build.clone();
            let build_schema = build.schema().clone();
            let join_schema = join_schema.clone();
            let build_key = on.0.to_string();
            let probe_key = on.1.to_string();
            let all_nodes: Vec<usize> = (0..nodes).collect();
            handles.push(scope.spawn(move || {
                // Node 0 owns the small table and broadcasts it; every
                // node (including 0 via loopback) receives one copy.
                let mut stats = CollectiveStats::default();
                if node == 0 {
                    stats = df_net::collective::broadcast(
                        &network,
                        0,
                        std::slice::from_ref(&build),
                        &all_nodes,
                        &wire,
                    )?;
                }
                let my_build = gather(&network, node, 1)?;
                let mut op =
                    HashJoinOp::new(vec![(build_key, probe_key)], build_schema, join_schema);
                for b in my_build {
                    op.build(b)?;
                }
                let mut outs = Vec::new();
                for p in my_probe {
                    outs.extend(op.push(p)?);
                }
                outs.extend(op.finish()?);
                let local = if outs.is_empty() {
                    None
                } else {
                    Some(Batch::concat(&outs)?)
                };
                Ok((local, stats))
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut report = DistributedReport::default();
    let mut parts = Vec::new();
    for r in results {
        let (local, stats) = r?;
        let rows = local.as_ref().map_or(0, Batch::rows);
        report.per_node_rows.push(rows);
        report.result_rows += rows;
        report.wire_bytes += stats.wire_bytes;
        if let Some(b) = local {
            parts.push(b);
        }
    }
    let transport = network.stats();
    report.cross_node_bytes = transport.cross_node_bytes();
    let result = if parts.is_empty() {
        Batch::empty(join_schema)
    } else {
        Batch::concat(&parts).map_err(EngineError::from)?
    };
    Ok((result, report))
}

fn split_round_robin(batch: &Batch, nodes: usize) -> Vec<Vec<Batch>> {
    let mut parts: Vec<Vec<Batch>> = vec![Vec::new(); nodes];
    let chunk = (batch.rows() / (nodes * 4)).max(1);
    let pieces = batch.split(chunk).expect("chunk is at least 1");
    for (i, piece) in pieces.into_iter().enumerate() {
        parts[i % nodes].push(piece);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::LogicalPlan;
    use df_data::batch::batch_of;
    use df_data::Column;

    fn build_side(n: usize) -> Batch {
        batch_of(vec![
            ("k", Column::from_i64((0..n as i64).collect())),
            (
                "name",
                Column::from_strs(&(0..n).map(|i| format!("n{i}")).collect::<Vec<_>>()),
            ),
        ])
    }

    fn probe_side(n: usize) -> Batch {
        batch_of(vec![
            (
                "fk",
                Column::from_i64((0..n as i64).map(|i| i % 100).collect()),
            ),
            ("amount", Column::from_i64((0..n as i64).collect())),
        ])
    }

    fn join_schema() -> SchemaRef {
        LogicalPlan::values(vec![build_side(1)])
            .unwrap()
            .join(
                LogicalPlan::values(vec![probe_side(1)]).unwrap(),
                vec![("k", "fk")],
            )
            .unwrap()
            .schema()
    }

    fn single_node_reference(build: &Batch, probe: &Batch) -> Batch {
        let mut op = HashJoinOp::new(
            vec![("k".into(), "fk".into())],
            build.schema().clone(),
            join_schema(),
        );
        op.build(build.clone()).unwrap();
        let mut outs = op.push(probe.clone()).unwrap();
        outs.extend(op.finish().unwrap());
        Batch::concat(&outs).unwrap()
    }

    #[test]
    fn distributed_join_matches_single_node() {
        let build = build_side(100);
        let probe = probe_side(1000);
        let reference = single_node_reference(&build, &probe);
        for nodes in [1, 2, 4] {
            let (result, report) = distributed_hash_join(
                &build,
                &probe,
                ("k", "fk"),
                join_schema(),
                &DistributedConfig {
                    nodes,
                    ..DistributedConfig::default()
                },
            )
            .unwrap();
            assert_eq!(
                result.canonical_rows(),
                reference.canonical_rows(),
                "nodes={nodes}"
            );
            assert_eq!(report.result_rows, 1000);
        }
    }

    #[test]
    fn smart_and_host_exchange_agree() {
        let build = build_side(100);
        let probe = probe_side(500);
        let smart = distributed_hash_join(
            &build,
            &probe,
            ("k", "fk"),
            join_schema(),
            &DistributedConfig {
                nodes: 3,
                smart_exchange: true,
                ..DistributedConfig::default()
            },
        )
        .unwrap();
        let host = distributed_hash_join(
            &build,
            &probe,
            ("k", "fk"),
            join_schema(),
            &DistributedConfig {
                nodes: 3,
                smart_exchange: false,
                ..DistributedConfig::default()
            },
        )
        .unwrap();
        assert_eq!(smart.0.canonical_rows(), host.0.canonical_rows());
        // The headline metric: NIC exchange keeps host bytes at zero.
        assert_eq!(smart.1.host_bytes, 0);
        assert!(host.1.host_bytes > 0);
        assert!(smart.1.nic_bytes > 0);
    }

    #[test]
    fn every_node_contributes() {
        let build = build_side(64);
        let probe = probe_side(4096);
        let (_, report) = distributed_hash_join(
            &build,
            &probe,
            ("k", "fk"),
            join_schema(),
            &DistributedConfig {
                nodes: 4,
                ..DistributedConfig::default()
            },
        )
        .unwrap();
        // Keys spread over the hash space: every node sees some rows.
        assert_eq!(report.per_node_rows.len(), 4);
        for (i, rows) in report.per_node_rows.iter().enumerate() {
            assert!(*rows > 0, "node {i} produced nothing: {report:?}");
        }
    }

    #[test]
    fn broadcast_join_matches_partitioned() {
        let build = build_side(50); // small table: broadcast territory
        let probe = probe_side(2000);
        let (partitioned, part_report) = distributed_hash_join(
            &build,
            &probe,
            ("k", "fk"),
            join_schema(),
            &DistributedConfig {
                nodes: 4,
                ..DistributedConfig::default()
            },
        )
        .unwrap();
        let (broadcast, bc_report) = distributed_broadcast_join(
            &build,
            &probe,
            ("k", "fk"),
            join_schema(),
            &DistributedConfig {
                nodes: 4,
                ..DistributedConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            partitioned.canonical_rows(),
            broadcast.canonical_rows(),
            "broadcast join changed the answer"
        );
        // With a tiny build side and a large probe side, broadcasting moves
        // far fewer bytes across nodes (the probe never travels).
        assert!(
            bc_report.cross_node_bytes < part_report.cross_node_bytes / 2,
            "broadcast {} !<< partitioned {}",
            bc_report.cross_node_bytes,
            part_report.cross_node_bytes
        );
    }

    #[test]
    fn empty_probe_yields_empty_result() {
        let build = build_side(10);
        let probe = probe_side(0);
        let (result, report) = distributed_hash_join(
            &build,
            &probe,
            ("k", "fk"),
            join_schema(),
            &DistributedConfig::default(),
        )
        .unwrap();
        assert!(result.is_empty());
        assert_eq!(report.result_rows, 0);
    }
}
