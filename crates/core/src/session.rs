//! The session: the user-facing API tying tables, topology, optimizer,
//! scheduler, and executors together.
//!
//! ```
//! use df_core::session::Session;
//! use df_data::{batch::batch_of, Column};
//!
//! let session = Session::in_memory().unwrap();
//! session
//!     .create_table(
//!         "orders",
//!         &[batch_of(vec![
//!             ("id", Column::from_i64(vec![1, 2, 3])),
//!             ("amount", Column::from_f64(vec![10.0, 20.0, 30.0])),
//!         ])],
//!     )
//!     .unwrap();
//! let result = session
//!     .sql("SELECT COUNT(*) AS n FROM orders WHERE amount > 15.0")
//!     .unwrap();
//! assert_eq!(result.batch.row(0)[0], df_data::Scalar::Int(2));
//! ```

use std::sync::Arc;

use df_data::{Batch, SchemaRef};
use df_fabric::topology::DisaggregatedConfig;
use df_fabric::Topology;
use df_storage::object::{MemObjectStore, ObjectStoreRef};
use df_storage::smart::{ScanStats, SmartStorage};
use df_storage::table::TableStore;
use std::sync::RwLock;

use crate::error::{EngineError, Result};
use crate::exec::ledger::MovementLedger;
use crate::exec::parallel::execute_adaptive;
use crate::exec::push::{execute, CodecPolicy, ExecEnv, ExecGate};
use crate::logical::LogicalPlan;
use crate::optimizer::{Optimizer, PlanCost, Profiles, RankedPlan, TableProfile};
use crate::physical::PhysicalPlan;
use crate::sql::{self, Catalog};

/// Everything one query execution returned.
#[derive(Debug)]
pub struct QueryResult {
    /// The result rows (empty batch when nothing qualified).
    pub batch: Batch,
    /// Which plan variant ran.
    pub variant: String,
    /// Estimated cost of that variant.
    pub cost: PlanCost,
    /// Measured data movement.
    pub ledger: MovementLedger,
    /// Storage scan statistics (bytes scanned vs returned).
    pub scan_stats: Vec<ScanStats>,
}

/// A database session over one topology and one object store.
pub struct Session {
    topology: Arc<Topology>,
    tables: TableStore,
    storage: SmartStorage,
    optimizer: Optimizer,
    profiles: RwLock<Profiles>,
    /// Worker threads for the morsel-parallel executor (1 = sequential).
    pub parallelism: usize,
    /// Wire options applied to cross-device edges in the movement ledger
    /// (None = charge in-memory batch sizes).
    pub wire: Option<df_codec::wire::WireOptions>,
    /// Opt-in execution tracer; see [`Session::enable_tracing`].
    pub tracer: Option<Arc<df_sim::Tracer>>,
}

impl Session {
    /// A session over an explicit topology and object store.
    pub fn new(topology: Arc<Topology>, store: ObjectStoreRef) -> Result<Session> {
        let tables = TableStore::new(store);
        let storage = SmartStorage::new(tables.clone());
        let optimizer = Optimizer::new(topology.clone())?;
        Ok(Session {
            topology,
            tables,
            storage,
            optimizer,
            profiles: RwLock::new(Profiles::new()),
            parallelism: 1,
            wire: None,
            tracer: None,
        })
    }

    /// Turn on execution tracing: every subsequent query records operator
    /// and morsel spans into the returned [`df_sim::Tracer`] (wall-clock
    /// lanes). Export with [`df_sim::Tracer::chrome_trace_json`] or
    /// [`df_sim::Tracer::summary`].
    pub fn enable_tracing(&mut self) -> Arc<df_sim::Tracer> {
        let tracer = Arc::new(df_sim::Tracer::new());
        self.storage.set_tracer(tracer.clone(), "storage.smart");
        self.tracer = Some(tracer.clone());
        tracer
    }

    /// The default laptop-scale session: the paper's disaggregated platform
    /// (smart storage, smart NICs, near-memory accelerator) over an
    /// in-memory object store.
    pub fn in_memory() -> Result<Session> {
        let topology = Arc::new(Topology::disaggregated(&DisaggregatedConfig::default()));
        Session::new(topology, Arc::new(MemObjectStore::new()))
    }

    /// The fabric.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// The smart-storage server (for direct scans in experiments).
    pub fn storage(&self) -> &SmartStorage {
        &self.storage
    }

    /// The table store.
    pub fn tables(&self) -> &TableStore {
        &self.tables
    }

    /// The optimizer (site map access etc.).
    pub fn optimizer(&self) -> &Optimizer {
        &self.optimizer
    }

    /// Create (or replace) a table from batches and refresh its profile.
    pub fn create_table(&self, name: &str, batches: &[Batch]) -> Result<()> {
        self.tables.create_and_load(name, batches)?;
        self.refresh_profile(name)
    }

    /// Recompute a table's statistics from segment footers.
    pub fn refresh_profile(&self, name: &str) -> Result<()> {
        let stats = self.tables.stats(name)?;
        let schema = self.tables.schema(name)?;
        self.profiles.write().expect("lock poisoned").insert(
            name.to_string(),
            TableProfile::from_stats(&stats, schema.as_ref().clone()),
        );
        Ok(())
    }

    /// Snapshot of the current table profiles.
    pub fn profiles(&self) -> Profiles {
        self.profiles.read().expect("lock poisoned").clone()
    }

    /// Parse SQL into a logical plan.
    pub fn logical_plan(&self, query: &str) -> Result<LogicalPlan> {
        sql::parse(query, self)
    }

    /// Ranked physical variants for a logical plan.
    pub fn variants(&self, logical: &LogicalPlan) -> Result<Vec<RankedPlan>> {
        self.optimizer
            .variants(logical, &self.profiles.read().expect("lock poisoned"))
    }

    /// Execute a specific physical plan.
    pub fn execute_plan(&self, plan: &PhysicalPlan) -> Result<QueryResult> {
        self.execute_plan_gated(plan, None)
    }

    /// Execute a plan under a cross-query scheduling gate (the serving
    /// layer's fair-share scheduler). The gate is consulted at every batch
    /// boundary; `None` behaves exactly like [`Session::execute_plan`].
    ///
    /// Parallelism is *adaptive*: the configured worker count is clamped to
    /// the cores actually available, and when only one worker would run the
    /// single-thread graph driver is used directly — oversubscribing a
    /// 1-core host made 2-thread morsel execution slower than sequential.
    pub fn execute_plan_gated(
        &self,
        plan: &PhysicalPlan,
        gate: Option<Arc<dyn ExecGate>>,
    ) -> Result<QueryResult> {
        let env = ExecEnv {
            storage: Some(&self.storage),
            topology: Some(&self.topology),
            wire: self.wire,
            tracer: self.tracer.clone(),
            gate,
            codec: CodecPolicy::AsCompiled,
        };
        let outcome = if self.parallelism > 1 {
            match execute_adaptive(plan, &env, self.parallelism) {
                Ok(out) => out,
                Err(EngineError::Plan(_)) => execute(plan, &env)?,
                Err(other) => return Err(other),
            }
        } else {
            execute(plan, &env)?
        };
        let batch = if outcome.batches.is_empty() {
            Batch::empty(plan.schema())
        } else {
            Batch::concat(&outcome.batches)?
        };
        Ok(QueryResult {
            batch,
            variant: plan.variant.clone(),
            cost: PlanCost {
                time: df_sim::SimDuration::ZERO,
                moved_bytes: 0,
                compute: df_sim::SimDuration::ZERO,
                bottleneck: df_sim::SimDuration::ZERO,
            },
            ledger: outcome.ledger,
            scan_stats: outcome.scan_stats,
        })
    }

    /// Plan and execute a SQL query with the best variant.
    pub fn sql(&self, query: &str) -> Result<QueryResult> {
        let logical = self.logical_plan(query)?;
        let mut variants = self.variants(&logical)?;
        let best = variants.remove(0);
        let mut result = self.execute_plan(&best.plan)?;
        result.cost = best.cost;
        Ok(result)
    }

    /// EXPLAIN: the logical plan plus every ranked variant with costs.
    pub fn explain(&self, query: &str) -> Result<String> {
        let logical = self.logical_plan(query)?;
        let variants = self.variants(&logical)?;
        let mut out = String::new();
        out.push_str("== logical ==\n");
        out.push_str(&logical.explain());
        for (i, v) in variants.iter().enumerate() {
            out.push_str(&format!(
                "== variant {i}: {} (est time {}, moved {} bytes) ==\n",
                v.plan.variant, v.cost.time, v.cost.moved_bytes
            ));
            out.push_str(&v.plan.root.explain());
        }
        Ok(out)
    }
}

impl Catalog for Session {
    fn table_schema(&self, table: &str) -> Result<SchemaRef> {
        self.tables
            .schema(table)
            .map_err(|_| EngineError::Plan(format!("unknown table '{table}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_data::batch::batch_of;
    use df_data::{Column, Scalar};

    fn orders(n: usize) -> Batch {
        batch_of(vec![
            ("id", Column::from_i64((0..n as i64).collect())),
            (
                "region",
                Column::from_strs(
                    &(0..n)
                        .map(|i| ["eu", "us", "ap"][i % 3].to_string())
                        .collect::<Vec<_>>(),
                ),
            ),
            (
                "amount",
                Column::from_f64((0..n).map(|i| (i % 100) as f64).collect()),
            ),
            (
                "note",
                Column::from_strs(
                    &(0..n)
                        .map(|i| {
                            if i % 10 == 0 {
                                format!("urgent {i}")
                            } else {
                                format!("normal {i}")
                            }
                        })
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
    }

    fn session() -> Session {
        let s = Session::in_memory().unwrap();
        s.create_table("orders", &[orders(3000)]).unwrap();
        s
    }

    #[test]
    fn end_to_end_count() {
        let s = session();
        let r = s.sql("SELECT COUNT(*) AS n FROM orders").unwrap();
        assert_eq!(r.batch.row(0)[0], Scalar::Int(3000));
    }

    #[test]
    fn filtered_aggregate_uses_pushdown() {
        let s = session();
        let r = s
            .sql("SELECT region, COUNT(*) AS n FROM orders WHERE id < 300 GROUP BY region")
            .unwrap();
        assert_eq!(r.batch.rows(), 3);
        let total: i64 = (0..3).map(|i| r.batch.row(i)[1].as_int().unwrap()).sum();
        assert_eq!(total, 300);
        // The chosen variant offloaded something.
        assert_ne!(
            r.variant,
            "cpu-only",
            "explain:\n{}",
            s.explain("SELECT region, COUNT(*) AS n FROM orders WHERE id < 300 GROUP BY region")
                .unwrap()
        );
        // Pushdown means returned < scanned.
        assert!(r.scan_stats[0].bytes_returned < r.scan_stats[0].bytes_scanned);
    }

    #[test]
    fn like_pushdown_query() {
        let s = session();
        let r = s
            .sql("SELECT COUNT(*) AS n FROM orders WHERE note LIKE 'urgent%'")
            .unwrap();
        assert_eq!(r.batch.row(0)[0], Scalar::Int(300));
    }

    #[test]
    fn join_query() {
        let s = session();
        let regions = batch_of(vec![
            ("rname", Column::from_strs(&["eu", "us"])),
            ("zone", Column::from_strs(&["west", "west"])),
        ]);
        s.create_table("regions", &[regions]).unwrap();
        let r = s
            .sql("SELECT id, zone FROM orders JOIN regions ON rname = region WHERE id < 9")
            .unwrap();
        // ids 0..9 with region eu or us: i%3 != 2 -> 6 rows.
        assert_eq!(r.batch.rows(), 6);
    }

    #[test]
    fn order_by_limit() {
        let s = session();
        let r = s
            .sql("SELECT id FROM orders ORDER BY id DESC LIMIT 3")
            .unwrap();
        assert_eq!(r.batch.column(0).i64_values().unwrap(), &[2999, 2998, 2997]);
    }

    #[test]
    fn empty_result_has_schema() {
        let s = session();
        let r = s.sql("SELECT id FROM orders WHERE id < 0").unwrap();
        assert!(r.batch.is_empty());
        assert_eq!(r.batch.schema().field(0).name, "id");
    }

    #[test]
    fn variants_execute_identically() {
        let s = session();
        let logical = s
            .logical_plan(
                "SELECT region, SUM(amount) AS total, AVG(amount) AS a FROM orders \
                 WHERE id BETWEEN 100 AND 2000 GROUP BY region",
            )
            .unwrap();
        let variants = s.variants(&logical).unwrap();
        assert!(variants.len() >= 2, "need multiple variants to compare");
        let reference = s.execute_plan(&variants[0].plan).unwrap();
        for v in &variants[1..] {
            let got = s.execute_plan(&v.plan).unwrap();
            assert_eq!(
                reference.batch.canonical_rows(),
                got.batch.canonical_rows(),
                "variant {} disagrees with {}",
                v.plan.variant,
                variants[0].plan.variant
            );
        }
    }

    #[test]
    fn parallel_session_matches_sequential() {
        let s = session();
        let query = "SELECT region, COUNT(*) AS n, SUM(amount) AS t FROM orders \
                     WHERE amount < 50.0 GROUP BY region";
        let seq = s.sql(query).unwrap();
        let mut par_session = session();
        par_session.parallelism = 4;
        let par = par_session.sql(query).unwrap();
        assert_eq!(seq.batch.canonical_rows(), par.batch.canonical_rows());
    }

    #[test]
    fn explain_lists_variants() {
        let s = session();
        let text = s
            .explain("SELECT COUNT(*) AS n FROM orders WHERE id < 10")
            .unwrap();
        assert!(text.contains("== logical =="));
        assert!(text.contains("cpu-only"));
        assert!(text.contains("storage-pushdown"));
    }

    #[test]
    fn movement_ledger_populated() {
        let s = session();
        let r = s.sql("SELECT id FROM orders WHERE id < 100").unwrap();
        assert!(r.ledger.cross_device_bytes() > 0);
        assert_eq!(r.ledger.unroutable_bytes(s.topology()), 0);
    }

    #[test]
    fn having_end_to_end() {
        let s = session();
        let r = s
            .sql(
                "SELECT region, COUNT(*) AS n FROM orders WHERE id < 30 \
                 GROUP BY region HAVING n >= 10 ORDER BY region",
            )
            .unwrap();
        // 30 rows over 3 regions = 10 each; HAVING n >= 10 keeps all three.
        assert_eq!(r.batch.rows(), 3);
        let strict = s
            .sql(
                "SELECT region, COUNT(*) AS n FROM orders WHERE id < 30 \
                 GROUP BY region HAVING n > 10",
            )
            .unwrap();
        assert_eq!(strict.batch.rows(), 0);
    }

    #[test]
    fn wire_options_shrink_ledger_charges() {
        let mut s = session();
        let query = "SELECT id FROM orders WHERE id < 1500";
        let plain = s.sql(query).unwrap();
        s.wire = Some(df_codec::wire::WireOptions::compressed());
        let compressed = s.sql(query).unwrap();
        assert_eq!(
            plain.batch.canonical_rows(),
            compressed.batch.canonical_rows()
        );
        // Sorted int runs compress well on the wire: the ledger reflects
        // the encoded frames, not the in-memory batches.
        assert!(
            compressed.ledger.cross_device_bytes() * 2 < plain.ledger.cross_device_bytes(),
            "wire accounting did not shrink: {} vs {}",
            compressed.ledger.cross_device_bytes(),
            plain.ledger.cross_device_bytes()
        );
    }

    #[test]
    fn unknown_table_is_a_plan_error() {
        let s = session();
        assert!(matches!(
            s.sql("SELECT * FROM ghost"),
            Err(EngineError::Plan(_))
        ));
    }
}
