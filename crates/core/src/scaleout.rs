//! Scale-out execution over N-host cluster topologies — Figure 4's
//! "scattering pipeline to support a distributed, partitioned hash join",
//! expressed as placed plans over the pipeline-graph IR.
//!
//! Each host contributes producer fragments (its slice of the table,
//! streamed through the device that partitions it: the smart NIC on the
//! paper's proposed path, the host CPU on the baseline), a first-class
//! [`Exchange`](crate::pipeline::Exchange) redistributes rows by join key
//! across per-host join fragments, and a final gather exchange lands the
//! result in the coordinator's memory. The executor drives all N² shuffle
//! streams through the same credit-bounded channels and single ledger
//! charge site as any other fabric edge, so the [`ScaleoutReport`] is read
//! straight off the movement ledger instead of being hand-counted.

use df_codec::wire::WireOptions;
use df_data::{Batch, SchemaRef};
use df_fabric::{ClusterConfig, DeviceId, DeviceKind, Topology};

use crate::error::{EngineError, Result};
use crate::exec::push::{execute, ExecEnv};
use crate::logical::JoinType;
use crate::physical::{PhysNode, PhysicalPlan};
use crate::pipeline::ExchangeKind;

/// Seed every scale-out hash exchange partitions with, so plans are
/// deterministic across runs and hosts agree on the partition function.
pub const SHUFFLE_SEED: u64 = 0xE5_CA1E;

/// Configuration of a scale-out join run.
#[derive(Debug, Clone)]
pub struct ScaleoutConfig {
    /// Number of hosts in the cluster.
    pub hosts: usize,
    /// Partition at the smart NIC (true, the paper's §4.4 path: the host
    /// CPU never touches in-flight bytes) or on the host CPU (false).
    pub smart_exchange: bool,
    /// Per-host hardware of the cluster topology.
    pub cluster: ClusterConfig,
    /// Wire options cross-device moves are charged under.
    pub wire: WireOptions,
}

impl Default for ScaleoutConfig {
    fn default() -> Self {
        ScaleoutConfig {
            hosts: 4,
            smart_exchange: true,
            cluster: ClusterConfig::default(),
            wire: WireOptions::plain(),
        }
    }
}

/// What a scale-out join run measured, classified from the movement
/// ledger by device kind and host.
#[derive(Debug, Clone, Default)]
pub struct ScaleoutReport {
    /// Total join result rows across hosts.
    pub result_rows: usize,
    /// Result rows each host's join fragment sent to the coordinator.
    pub per_host_rows: Vec<usize>,
    /// Ledger bytes leaving each host's devices.
    pub per_host_bytes: Vec<u64>,
    /// Exchange bytes a host CPU partitioned (the baseline's cost).
    pub host_bytes: u64,
    /// Exchange bytes a NIC partitioned in-path (§4.4's smart path).
    pub nic_bytes: u64,
    /// Bytes whose endpoints live on different hosts (switch traffic).
    pub cross_host_bytes: u64,
    /// All ledger bytes the run charged.
    pub total_bytes: u64,
}

/// Run a hash-partitioned join across `config.hosts` hosts of a simulated
/// cluster.
///
/// `build` and `probe` are the two tables, pre-partitioned round-robin
/// across hosts (as cloud object storage would hand them out). `on` is
/// the `(build_column, probe_column)` key pair. Returns the joined result
/// (concatenated across hosts) plus the ledger-derived report.
pub fn exchange_hash_join(
    build: &Batch,
    probe: &Batch,
    on: (&str, &str),
    join_schema: SchemaRef,
    config: &ScaleoutConfig,
) -> Result<(Batch, ScaleoutReport)> {
    let topology = cluster_topology(config)?;
    let build_parts = split_round_robin(build, config.hosts.max(1));
    let probe_parts = split_round_robin(probe, config.hosts.max(1));
    let plan = cluster_hash_join_plan(
        &topology,
        &build_parts,
        build.schema().clone(),
        &probe_parts,
        probe.schema().clone(),
        on,
        join_schema.clone(),
        config.smart_exchange,
    )?;
    run_plan(&plan, &topology, join_schema, config)
}

/// The broadcast-join alternative (§4.4: "joins involving a small
/// table"): host 0 owns the small build side and an exchange replicates
/// it to every host; each host probes only its local slice — no
/// probe-side exchange at all. Pays `hosts × |build|` on the wire to save
/// `|probe|`; the right choice when the build side is small.
pub fn exchange_broadcast_join(
    build: &Batch,
    probe: &Batch,
    on: (&str, &str),
    join_schema: SchemaRef,
    config: &ScaleoutConfig,
) -> Result<(Batch, ScaleoutReport)> {
    let topology = cluster_topology(config)?;
    let probe_parts = split_round_robin(probe, config.hosts.max(1));
    let plan = cluster_broadcast_join_plan(
        &topology,
        build.clone(),
        &probe_parts,
        probe.schema().clone(),
        on,
        join_schema.clone(),
        config.smart_exchange,
    )?;
    run_plan(&plan, &topology, join_schema, config)
}

/// Build the N-host partitioned-join plan over an existing cluster
/// topology: per-host producer leaves, hash exchanges on both join sides,
/// per-host join fragments, and a gather into the coordinator's memory.
///
/// Exposed so experiments can compile, verify, and flow-price the exact
/// plans the executor runs.
#[allow(clippy::too_many_arguments)]
pub fn cluster_hash_join_plan(
    topology: &Topology,
    build_parts: &[Vec<Batch>],
    build_schema: SchemaRef,
    probe_parts: &[Vec<Batch>],
    probe_schema: SchemaRef,
    on: (&str, &str),
    join_schema: SchemaRef,
    smart_exchange: bool,
) -> Result<PhysicalPlan> {
    let hosts = cluster_hosts(topology, build_parts.len())?;
    let joins = (0..hosts)
        .map(|j| {
            let build_inputs = if j == 0 {
                leaves(topology, build_parts, &build_schema, smart_exchange)?
            } else {
                Vec::new()
            };
            let probe_inputs = if j == 0 {
                leaves(topology, probe_parts, &probe_schema, smart_exchange)?
            } else {
                Vec::new()
            };
            let cpu = host_device(topology, j, "cpu")?;
            Ok(PhysNode::HashJoin {
                build: Box::new(PhysNode::Exchange {
                    group: 0,
                    kind: ExchangeKind::Hash {
                        keys: vec![on.0.to_string()],
                        seed: SHUFFLE_SEED,
                    },
                    index: j,
                    parts: hosts,
                    inputs: build_inputs,
                    schema: build_schema.clone(),
                    device: Some(cpu),
                }),
                probe: Box::new(PhysNode::Exchange {
                    group: 1,
                    kind: ExchangeKind::Hash {
                        keys: vec![on.1.to_string()],
                        seed: SHUFFLE_SEED,
                    },
                    index: j,
                    parts: hosts,
                    inputs: probe_inputs,
                    schema: probe_schema.clone(),
                    device: Some(cpu),
                }),
                on: vec![(on.0.to_string(), on.1.to_string())],
                join_type: JoinType::Inner,
                schema: join_schema.clone(),
                device: Some(cpu),
            })
        })
        .collect::<Result<Vec<PhysNode>>>()?;
    let root = gather_root(topology, joins, join_schema, 2)?;
    Ok(PhysicalPlan::new(
        root,
        if smart_exchange {
            "scaleout-hash-nic"
        } else {
            "scaleout-hash-cpu"
        },
    ))
}

/// Build the N-host broadcast-join plan: host 0's leaf carries the whole
/// build side, a broadcast exchange replicates it, and each host joins
/// against its local probe slice (streamed out of host memory).
pub fn cluster_broadcast_join_plan(
    topology: &Topology,
    build: Batch,
    probe_parts: &[Vec<Batch>],
    probe_schema: SchemaRef,
    on: (&str, &str),
    join_schema: SchemaRef,
    smart_exchange: bool,
) -> Result<PhysicalPlan> {
    let hosts = cluster_hosts(topology, probe_parts.len())?;
    let build_schema = build.schema().clone();
    let joins = (0..hosts)
        .map(|j| {
            let build_inputs = if j == 0 {
                vec![PhysNode::Values {
                    batches: vec![build.clone()],
                    schema: build_schema.clone(),
                    device: Some(host_device(
                        topology,
                        0,
                        if smart_exchange { "nic" } else { "cpu" },
                    )?),
                }]
            } else {
                Vec::new()
            };
            let cpu = host_device(topology, j, "cpu")?;
            Ok(PhysNode::HashJoin {
                build: Box::new(PhysNode::Exchange {
                    group: 0,
                    kind: ExchangeKind::Broadcast,
                    index: j,
                    parts: hosts,
                    inputs: build_inputs,
                    schema: build_schema.clone(),
                    device: Some(cpu),
                }),
                probe: Box::new(PhysNode::Values {
                    batches: probe_parts[j].clone(),
                    schema: probe_schema.clone(),
                    device: Some(host_device(topology, j, "mem")?),
                }),
                on: vec![(on.0.to_string(), on.1.to_string())],
                join_type: JoinType::Inner,
                schema: join_schema.clone(),
                device: Some(cpu),
            })
        })
        .collect::<Result<Vec<PhysNode>>>()?;
    let root = gather_root(topology, joins, join_schema, 1)?;
    Ok(PhysicalPlan::new(
        root,
        if smart_exchange {
            "scaleout-broadcast-nic"
        } else {
            "scaleout-broadcast-cpu"
        },
    ))
}

/// Split a batch round-robin across hosts at batch granularity — the
/// arbitrary initial placement cloud object storage would produce.
pub fn split_round_robin(batch: &Batch, hosts: usize) -> Vec<Vec<Batch>> {
    let mut parts: Vec<Vec<Batch>> = vec![Vec::new(); hosts];
    if batch.rows() == 0 {
        return parts;
    }
    let chunk = (batch.rows() / (hosts * 4)).max(1);
    let pieces = batch.split(chunk).unwrap_or_else(|_| vec![batch.clone()]);
    for (i, piece) in pieces.into_iter().enumerate() {
        parts[i % hosts].push(piece);
    }
    parts
}

fn cluster_topology(config: &ScaleoutConfig) -> Result<Topology> {
    if config.hosts == 0 {
        return Err(EngineError::Placement(
            "a scale-out run needs at least one host".into(),
        ));
    }
    if config.smart_exchange && !config.cluster.smart_nics {
        return Err(EngineError::Placement(
            "smart_exchange requires smart NICs in the cluster config \
             (plain NICs cannot partition in-path)"
                .into(),
        ));
    }
    Ok(Topology::cluster(config.hosts as u32, &config.cluster))
}

fn cluster_hosts(topology: &Topology, parts: usize) -> Result<usize> {
    let hosts = topology.host_count();
    if hosts == 0 {
        return Err(EngineError::Placement(
            "topology has no hosts; build it with Topology::cluster".into(),
        ));
    }
    if parts != hosts {
        return Err(EngineError::Placement(format!(
            "{parts} input partitions for a {hosts}-host cluster"
        )));
    }
    Ok(hosts)
}

fn host_device(topology: &Topology, host: usize, part: &str) -> Result<DeviceId> {
    let name = format!("host{host}.{part}");
    topology
        .device_by_name(&name)
        .ok_or_else(|| EngineError::Placement(format!("cluster topology lacks device '{name}'")))
}

/// Per-host producer leaves, placed on the device that will partition the
/// stream: the smart NIC on the §4.4 path, the host CPU on the baseline.
fn leaves(
    topology: &Topology,
    parts: &[Vec<Batch>],
    schema: &SchemaRef,
    smart_exchange: bool,
) -> Result<Vec<PhysNode>> {
    let tip = if smart_exchange { "nic" } else { "cpu" };
    parts
        .iter()
        .enumerate()
        .map(|(h, batches)| {
            Ok(PhysNode::Values {
                batches: batches.clone(),
                schema: schema.clone(),
                device: Some(host_device(topology, h, tip)?),
            })
        })
        .collect()
}

/// Gather every join fragment's output into the coordinator's (host 0)
/// memory — the root of every scale-out plan.
fn gather_root(
    topology: &Topology,
    joins: Vec<PhysNode>,
    join_schema: SchemaRef,
    group: usize,
) -> Result<PhysNode> {
    Ok(PhysNode::Exchange {
        group,
        kind: ExchangeKind::Gather,
        index: 0,
        parts: 1,
        inputs: joins,
        schema: join_schema,
        device: Some(host_device(topology, 0, "mem")?),
    })
}

/// Execute a scale-out plan and classify its ledger into the report.
fn run_plan(
    plan: &PhysicalPlan,
    topology: &Topology,
    join_schema: SchemaRef,
    config: &ScaleoutConfig,
) -> Result<(Batch, ScaleoutReport)> {
    let env = ExecEnv {
        storage: None,
        topology: Some(topology),
        wire: Some(config.wire),
        tracer: None,
        gate: None,
        codec: crate::exec::push::CodecPolicy::AsCompiled,
    };
    let outcome = execute(plan, &env)?;
    let result = if outcome.batches.is_empty() {
        Batch::empty(join_schema)
    } else {
        outcome.collect()?
    };

    let hosts = topology.host_count();
    let mut report = ScaleoutReport {
        result_rows: result.rows(),
        per_host_rows: vec![0; hosts],
        per_host_bytes: vec![0; hosts],
        ..ScaleoutReport::default()
    };
    for (&(from, to), stats) in outcome.ledger.edges() {
        report.total_bytes += stats.bytes;
        let from_host = topology.host_of(from);
        let to_host = topology.host_of(to);
        if let Some(h) = from_host {
            report.per_host_bytes[h as usize] += stats.bytes;
        }
        if let (Some(f), Some(t)) = (from_host, to_host) {
            if f != t {
                report.cross_host_bytes += stats.bytes;
            }
        }
        // Scatter edges leave the partitioning device toward a join
        // fragment's CPU; gather edges land in the coordinator's memory.
        let from_kind = topology.device(from).profile.kind;
        let to_kind = topology.device(to).profile.kind;
        match (from_kind, to_kind) {
            (DeviceKind::SmartNic | DeviceKind::PlainNic, DeviceKind::Cpu { .. }) => {
                report.nic_bytes += stats.bytes;
            }
            (DeviceKind::Cpu { .. }, DeviceKind::Cpu { .. }) => {
                report.host_bytes += stats.bytes;
            }
            (DeviceKind::Cpu { .. }, DeviceKind::NearMemAccel | DeviceKind::MemoryController) => {
                if let Some(h) = from_host {
                    report.per_host_rows[h as usize] += stats.rows as usize;
                }
            }
            _ => {}
        }
    }
    Ok((result, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::LogicalPlan;
    use crate::ops::{HashJoinOp, Operator};
    use df_data::batch::batch_of;
    use df_data::Column;

    fn build_side(n: usize) -> Batch {
        batch_of(vec![
            ("k", Column::from_i64((0..n as i64).collect())),
            (
                "name",
                Column::from_strs(&(0..n).map(|i| format!("n{i}")).collect::<Vec<_>>()),
            ),
        ])
    }

    fn probe_side(n: usize) -> Batch {
        batch_of(vec![
            (
                "fk",
                Column::from_i64((0..n as i64).map(|i| i % 100).collect()),
            ),
            ("amount", Column::from_i64((0..n as i64).collect())),
        ])
    }

    fn join_schema() -> SchemaRef {
        LogicalPlan::values(vec![build_side(1)])
            .unwrap()
            .join(
                LogicalPlan::values(vec![probe_side(1)]).unwrap(),
                vec![("k", "fk")],
            )
            .unwrap()
            .schema()
    }

    fn single_node_reference(build: &Batch, probe: &Batch) -> Batch {
        let mut op = HashJoinOp::new(
            vec![("k".into(), "fk".into())],
            build.schema().clone(),
            join_schema(),
        );
        op.build(build.clone()).unwrap();
        let mut outs = op.push(probe.clone()).unwrap();
        outs.extend(op.finish().unwrap());
        Batch::concat(&outs).unwrap()
    }

    #[test]
    fn exchange_join_matches_single_node() {
        let build = build_side(100);
        let probe = probe_side(1000);
        let reference = single_node_reference(&build, &probe);
        for hosts in [1, 2, 4] {
            let (result, report) = exchange_hash_join(
                &build,
                &probe,
                ("k", "fk"),
                join_schema(),
                &ScaleoutConfig {
                    hosts,
                    ..ScaleoutConfig::default()
                },
            )
            .unwrap();
            assert_eq!(
                result.canonical_rows(),
                reference.canonical_rows(),
                "hosts={hosts}"
            );
            assert_eq!(report.result_rows, 1000);
            assert_eq!(report.per_host_rows.iter().sum::<usize>(), 1000);
        }
    }

    #[test]
    fn smart_and_host_exchange_agree() {
        let build = build_side(100);
        let probe = probe_side(500);
        let smart = exchange_hash_join(
            &build,
            &probe,
            ("k", "fk"),
            join_schema(),
            &ScaleoutConfig {
                hosts: 3,
                smart_exchange: true,
                ..ScaleoutConfig::default()
            },
        )
        .unwrap();
        let host = exchange_hash_join(
            &build,
            &probe,
            ("k", "fk"),
            join_schema(),
            &ScaleoutConfig {
                hosts: 3,
                smart_exchange: false,
                ..ScaleoutConfig::default()
            },
        )
        .unwrap();
        assert_eq!(smart.0.canonical_rows(), host.0.canonical_rows());
        // The headline metric: NIC exchange keeps host-partitioned bytes
        // at zero.
        assert_eq!(smart.1.host_bytes, 0);
        assert!(host.1.host_bytes > 0);
        assert!(smart.1.nic_bytes > 0);
        assert_eq!(host.1.nic_bytes, 0);
    }

    #[test]
    fn every_host_contributes() {
        let build = build_side(64);
        let probe = probe_side(4096);
        let (_, report) = exchange_hash_join(
            &build,
            &probe,
            ("k", "fk"),
            join_schema(),
            &ScaleoutConfig {
                hosts: 4,
                ..ScaleoutConfig::default()
            },
        )
        .unwrap();
        // Keys spread over the hash space: every host sees some rows.
        assert_eq!(report.per_host_rows.len(), 4);
        for (h, rows) in report.per_host_rows.iter().enumerate() {
            assert!(*rows > 0, "host {h} produced nothing: {report:?}");
        }
        assert!(report.cross_host_bytes > 0);
    }

    #[test]
    fn broadcast_join_matches_partitioned() {
        let build = build_side(50); // small table: broadcast territory
        let probe = probe_side(2000);
        let (partitioned, part_report) = exchange_hash_join(
            &build,
            &probe,
            ("k", "fk"),
            join_schema(),
            &ScaleoutConfig {
                hosts: 4,
                ..ScaleoutConfig::default()
            },
        )
        .unwrap();
        let (broadcast, bc_report) = exchange_broadcast_join(
            &build,
            &probe,
            ("k", "fk"),
            join_schema(),
            &ScaleoutConfig {
                hosts: 4,
                ..ScaleoutConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            partitioned.canonical_rows(),
            broadcast.canonical_rows(),
            "broadcast join changed the answer"
        );
        // With a tiny build side and a large probe side, broadcasting
        // moves far fewer bytes across hosts (the probe never travels).
        assert!(
            bc_report.cross_host_bytes < part_report.cross_host_bytes / 2,
            "broadcast {} !<< partitioned {}",
            bc_report.cross_host_bytes,
            part_report.cross_host_bytes
        );
    }

    #[test]
    fn empty_probe_yields_empty_result() {
        let build = build_side(10);
        let probe = probe_side(0);
        let (result, report) = exchange_hash_join(
            &build,
            &probe,
            ("k", "fk"),
            join_schema(),
            &ScaleoutConfig::default(),
        )
        .unwrap();
        assert!(result.is_empty());
        assert_eq!(report.result_rows, 0);
    }

    #[test]
    fn matches_hand_rolled_distributed_join() {
        // The retired hand-rolled scatter (crate::distributed) and the
        // Exchange-based plan must agree; the single-node operator is the
        // shared oracle both were verified against.
        let build = build_side(80);
        let probe = probe_side(1200);
        let reference = single_node_reference(&build, &probe);
        let (result, _) = exchange_hash_join(
            &build,
            &probe,
            ("k", "fk"),
            join_schema(),
            &ScaleoutConfig {
                hosts: 4,
                ..ScaleoutConfig::default()
            },
        )
        .unwrap();
        assert_eq!(result.canonical_rows(), reference.canonical_rows());
    }
}
