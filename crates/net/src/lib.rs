#![warn(missing_docs)]
#![deny(unsafe_code)]
//! # df-net — smart NICs, transport, and in-network processing
//!
//! §4 of the paper asks whether the network can do more than move data.
//! This crate answers with four pieces:
//!
//! - [`nic`] — the smart NIC: an installable pipeline of kernels (filter,
//!   project, hash, partition, pre-aggregate, count) applied to batches as
//!   they pass the Tx or Rx path, *without host CPU involvement*
//! - [`transport`] — a message-passing network between nodes carrying
//!   wire-encoded frames, with per-pair byte accounting
//! - [`switch`] — the programmable switch: multicast and in-network
//!   merging of partial aggregates on the way through
//! - [`collective`] — NIC-orchestrated collectives (§4.4): scatter by hash
//!   partition, broadcast, gather, and all-to-all shuffle, with a
//!   CPU-involvement metric showing the host never touched the data
//!
//! The NIC operates on decoded [`df_data::Batch`]es; the transport moves
//! encoded frames. This split mirrors a DPU: the embedded cores see typed
//! data, the wire sees bytes.

pub mod collective;
pub mod nic;
pub mod switch;
pub mod transport;

use std::fmt;

/// Errors from the network layer.
#[derive(Debug)]
pub enum NetError {
    /// Destination node does not exist.
    UnknownNode(usize),
    /// A frame failed to decode.
    Codec(df_codec::CodecError),
    /// Data-model failure in a NIC kernel.
    Data(df_data::DataError),
    /// Storage-predicate failure in a NIC kernel.
    Storage(df_storage::StorageError),
    /// The channel to a node is closed.
    Disconnected(usize),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::Codec(e) => write!(f, "codec: {e}"),
            NetError::Data(e) => write!(f, "data: {e}"),
            NetError::Storage(e) => write!(f, "storage: {e}"),
            NetError::Disconnected(n) => write!(f, "node {n} disconnected"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<df_codec::CodecError> for NetError {
    fn from(e: df_codec::CodecError) -> Self {
        NetError::Codec(e)
    }
}

impl From<df_data::DataError> for NetError {
    fn from(e: df_data::DataError) -> Self {
        NetError::Data(e)
    }
}

impl From<df_storage::StorageError> for NetError {
    fn from(e: df_storage::StorageError) -> Self {
        NetError::Storage(e)
    }
}

/// Result alias for network operations.
pub type Result<T> = std::result::Result<T, NetError>;
