//! The smart NIC: a bump-in-the-wire kernel pipeline (§4.2–4.3).
//!
//! A [`NicPipeline`] is the program installed on a DPU's data path. Batches
//! stream through the kernels in order; the host CPU never sees the
//! intermediate data. Supported kernels are exactly the stateless/bounded
//! operations the paper identifies for NICs: filter, project, hash,
//! partition (the smart exchange of §4.4), bounded pre-aggregation (the
//! group-by cascade of Figure 3), and count (the query-finishing example
//! where the NIC "simply counts the data as it arrives and discards it").

use std::sync::Arc;

use df_data::{Batch, Column, DataType, Field, Schema};
use df_sim::trace::{LaneId, LaneKind, Tracer};
use df_storage::predicate::StoragePredicate;
use df_storage::smart::{PartialAggregator, PreAggSpec};

use crate::{NetError, Result};

/// One processing kernel on the NIC data path.
#[derive(Debug, Clone)]
pub enum NicKernel {
    /// Drop rows failing the predicate.
    Filter(StoragePredicate),
    /// Keep only the named columns.
    Project(Vec<String>),
    /// Append a `UInt64`-style hash column (stored as Int64) computed over
    /// the named key columns — "hashing done by the receiving NIC" (Fig. 3).
    AppendHash {
        /// Key columns to hash.
        columns: Vec<String>,
        /// Name of the appended hash column.
        output: String,
    },
    /// Hash-partition rows into `fanout` output streams; must be the last
    /// kernel (its outputs go to different destinations).
    Partition {
        /// Key columns determining the partition.
        columns: Vec<String>,
        /// Number of output partitions.
        fanout: usize,
    },
    /// Bounded pre-aggregation (partials flush downstream when full).
    PreAggregate(PreAggSpec),
    /// Count rows, discarding the data; emits a single-row batch at finish.
    Count {
        /// Name of the single output column.
        output: String,
    },
}

/// Data-movement statistics the NIC reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Batches entering the pipeline.
    pub batches_in: u64,
    /// Rows entering.
    pub rows_in: u64,
    /// Bytes entering (in-memory size).
    pub bytes_in: u64,
    /// Rows leaving.
    pub rows_out: u64,
    /// Bytes leaving.
    pub bytes_out: u64,
}

impl NicStats {
    /// Input/output byte reduction factor.
    pub fn reduction_factor(&self) -> f64 {
        if self.bytes_out == 0 {
            f64::INFINITY
        } else {
            self.bytes_in as f64 / self.bytes_out as f64
        }
    }
}

/// FNV-1a hash of the canonical bytes of the key scalars of one row.
/// Deterministic across devices, so every NIC partitions identically.
/// Delegates to the canonical [`df_data::partition`] function (seed 0) —
/// the same routing the Exchange operator and partitioned storage use.
pub fn hash_row(columns: &[&Column], row: usize) -> u64 {
    df_data::partition::hash_row(columns, row)
}

enum KernelState {
    Stateless(NicKernel),
    PreAgg {
        spec: PreAggSpec,
        agg: Option<PartialAggregator>,
    },
    Count {
        output: String,
        count: i64,
    },
}

impl KernelState {
    fn label(&self) -> &'static str {
        match self {
            KernelState::Stateless(NicKernel::Filter(_)) => "filter",
            KernelState::Stateless(NicKernel::Project(_)) => "project",
            KernelState::Stateless(NicKernel::AppendHash { .. }) => "append-hash",
            KernelState::Stateless(NicKernel::Partition { .. }) => "partition",
            KernelState::Stateless(_) => "kernel",
            KernelState::PreAgg { .. } => "pre-aggregate",
            KernelState::Count { .. } => "count",
        }
    }
}

/// A compiled NIC program with its runtime state.
pub struct NicPipeline {
    kernels: Vec<KernelState>,
    partition: Option<(Vec<String>, usize)>,
    stats: NicStats,
    trace: Option<(Arc<Tracer>, LaneId)>,
}

impl NicPipeline {
    /// Compile a kernel list. `Partition` may only appear last.
    pub fn new(kernels: Vec<NicKernel>) -> Result<NicPipeline> {
        let mut states = Vec::new();
        let mut partition = None;
        let n = kernels.len();
        for (i, k) in kernels.into_iter().enumerate() {
            match k {
                NicKernel::Partition { columns, fanout } => {
                    if i + 1 != n {
                        return Err(NetError::Data(df_data::DataError::Corrupt(
                            "Partition must be the last NIC kernel".into(),
                        )));
                    }
                    if fanout == 0 {
                        return Err(NetError::Data(df_data::DataError::Corrupt(
                            "Partition fanout must be positive".into(),
                        )));
                    }
                    partition = Some((columns, fanout));
                }
                NicKernel::PreAggregate(spec) => {
                    states.push(KernelState::PreAgg { spec, agg: None })
                }
                NicKernel::Count { output } => states.push(KernelState::Count { output, count: 0 }),
                other => states.push(KernelState::Stateless(other)),
            }
        }
        Ok(NicPipeline {
            kernels: states,
            partition,
            stats: NicStats::default(),
            trace: None,
        })
    }

    /// Record this pipeline's activity on the named wall lane of `tracer`:
    /// one `install:<kernel>` instant per compiled kernel now (program
    /// download to the DPU), then a span per pushed batch.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>, lane: &str) -> NicPipeline {
        let lane = tracer.lane(lane, LaneKind::Wall);
        for kernel in &self.kernels {
            tracer.instant(lane, &format!("install:{}", kernel.label()));
        }
        if let Some((columns, fanout)) = &self.partition {
            tracer.instant(
                lane,
                &format!("install:partition({}x{fanout})", columns.join(",")),
            );
        }
        self.trace = Some((tracer, lane));
        self
    }

    /// Statistics so far.
    pub fn stats(&self) -> &NicStats {
        &self.stats
    }

    /// Process one batch, returning `(partition, batch)` outputs. Without a
    /// `Partition` kernel, everything is partition 0.
    pub fn push(&mut self, batch: Batch) -> Result<Vec<(usize, Batch)>> {
        self.stats.batches_in += 1;
        self.stats.rows_in += batch.rows() as u64;
        self.stats.bytes_in += batch.byte_size() as u64;
        let trace = self.trace.clone();
        let mut span = trace.as_ref().map(|(t, lane)| {
            t.span_with(
                *lane,
                "push",
                &[
                    ("rows", batch.rows() as u64),
                    ("bytes", batch.byte_size() as u64),
                ],
            )
        });
        let mut current = Some(batch);
        for kernel in &mut self.kernels {
            let Some(batch) = current.take() else { break };
            current = Self::apply(kernel, batch)?;
        }
        let outputs = match current {
            None => Vec::new(),
            Some(batch) if batch.is_empty() => Vec::new(),
            Some(batch) => self.fan_out(batch)?,
        };
        let mut out_rows = 0;
        for (_, b) in &outputs {
            out_rows += b.rows() as u64;
            self.stats.rows_out += b.rows() as u64;
            self.stats.bytes_out += b.byte_size() as u64;
        }
        if let Some(span) = span.as_mut() {
            span.annotate("out_rows", out_rows);
        }
        Ok(outputs)
    }

    /// Flush stateful kernels at end-of-stream. A kernel's flush flows
    /// through all *later* kernels (so a count after a pre-aggregation sees
    /// the flushed groups) and then out through the partitioner.
    pub fn finish(&mut self) -> Result<Vec<(usize, Batch)>> {
        let trace = self.trace.clone();
        let _span = trace.as_ref().map(|(t, lane)| t.span(*lane, "finish"));
        let mut finished = Vec::new();
        for idx in 0..self.kernels.len() {
            let flushed = match &mut self.kernels[idx] {
                KernelState::PreAgg { agg, .. } => match agg.as_mut() {
                    Some(a) => {
                        let out = a.finish().map_err(NetError::Storage)?;
                        *agg = None;
                        (!out.is_empty()).then_some(out)
                    }
                    None => None,
                },
                KernelState::Count { output, count } => {
                    let schema =
                        Schema::new(vec![Field::new(output.clone(), DataType::Int64)]).into_ref();
                    let batch = Batch::new(schema, vec![Column::from_i64(vec![*count])])
                        .map_err(NetError::Data)?;
                    *count = 0;
                    Some(batch)
                }
                KernelState::Stateless(_) => None,
            };
            if let Some(batch) = flushed {
                let mut current = Some(batch);
                for kernel in &mut self.kernels[idx + 1..] {
                    let Some(b) = current.take() else { break };
                    current = Self::apply(kernel, b)?;
                }
                if let Some(b) = current {
                    if !b.is_empty() {
                        finished.push(b);
                    }
                }
            }
        }
        let mut outputs = Vec::new();
        for batch in finished {
            outputs.extend(self.fan_out(batch)?);
        }
        for (_, b) in &outputs {
            self.stats.rows_out += b.rows() as u64;
            self.stats.bytes_out += b.byte_size() as u64;
        }
        Ok(outputs)
    }

    fn apply(kernel: &mut KernelState, batch: Batch) -> Result<Option<Batch>> {
        Ok(match kernel {
            KernelState::Stateless(NicKernel::Filter(pred)) => {
                let selection = pred.evaluate(&batch).map_err(NetError::Storage)?;
                if selection.all_set() {
                    Some(batch)
                } else {
                    Some(batch.filter(&selection)?)
                }
            }
            KernelState::Stateless(NicKernel::Project(names)) => {
                let cols: Vec<&str> = names.iter().map(String::as_str).collect();
                Some(batch.project_names(&cols)?)
            }
            KernelState::Stateless(NicKernel::AppendHash { columns, output }) => {
                let key_cols: Vec<&Column> = columns
                    .iter()
                    .map(|n| batch.column_by_name(n))
                    .collect::<df_data::Result<_>>()?;
                let hashes: Vec<i64> = (0..batch.rows())
                    .map(|r| hash_row(&key_cols, r) as i64)
                    .collect();
                let mut fields = batch.schema().fields().to_vec();
                fields.push(Field::new(output.clone(), DataType::Int64));
                let mut columns_out = batch.columns().to_vec();
                columns_out.push(Column::from_i64(hashes));
                Some(Batch::new(Schema::new(fields).into_ref(), columns_out)?)
            }
            KernelState::Stateless(_) => unreachable!("partition handled in fan_out"),
            KernelState::PreAgg { spec, agg } => {
                let aggregator = match agg {
                    Some(a) => a,
                    None => {
                        PartialAggregator::output_schema(spec, batch.schema())
                            .map_err(NetError::Storage)?;
                        agg.get_or_insert_with(|| {
                            PartialAggregator::new(spec.clone(), batch.schema())
                        })
                    }
                };
                aggregator.consume(&batch).map_err(NetError::Storage)?;
                aggregator.take_flush()
            }
            KernelState::Count { count, .. } => {
                *count += batch.rows() as i64;
                None // data is discarded at the NIC
            }
        })
    }

    fn fan_out(&self, batch: Batch) -> Result<Vec<(usize, Batch)>> {
        match &self.partition {
            None => Ok(vec![(0, batch)]),
            Some((columns, fanout)) => {
                let key_cols: Vec<&Column> = columns
                    .iter()
                    .map(|n| batch.column_by_name(n))
                    .collect::<df_data::Result<_>>()?;
                let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); *fanout];
                for row in 0..batch.rows() {
                    let h = hash_row(&key_cols, row);
                    buckets[(h % *fanout as u64) as usize].push(row);
                }
                Ok(buckets
                    .into_iter()
                    .enumerate()
                    .filter(|(_, rows)| !rows.is_empty())
                    .map(|(p, rows)| (p, batch.gather(&rows)))
                    .collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_data::batch::batch_of;
    use df_storage::smart::AggFunc;
    use df_storage::zonemap::CmpOp;

    fn sample(n: usize) -> Batch {
        batch_of(vec![
            ("k", Column::from_i64((0..n as i64).collect())),
            (
                "grp",
                Column::from_strs(&(0..n).map(|i| format!("g{}", i % 5)).collect::<Vec<_>>()),
            ),
            (
                "v",
                Column::from_i64((0..n as i64).map(|i| i * 2).collect()),
            ),
        ])
    }

    #[test]
    fn filter_kernel_drops_rows() {
        let mut nic = NicPipeline::new(vec![NicKernel::Filter(StoragePredicate::cmp(
            "k",
            CmpOp::Lt,
            10i64,
        ))])
        .unwrap();
        let out = nic.push(sample(100)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.rows(), 10);
        assert!(nic.stats().reduction_factor() > 5.0);
    }

    #[test]
    fn project_kernel_prunes_columns() {
        let mut nic = NicPipeline::new(vec![NicKernel::Project(vec!["v".into()])]).unwrap();
        let out = nic.push(sample(10)).unwrap();
        assert_eq!(out[0].1.schema().len(), 1);
        assert_eq!(out[0].1.schema().field(0).name, "v");
    }

    #[test]
    fn append_hash_is_deterministic() {
        let kernels = || {
            NicPipeline::new(vec![NicKernel::AppendHash {
                columns: vec!["grp".into()],
                output: "h".into(),
            }])
            .unwrap()
        };
        let a = kernels().push(sample(50)).unwrap();
        let b = kernels().push(sample(50)).unwrap();
        assert_eq!(a[0].1.canonical_rows(), b[0].1.canonical_rows());
        // Same group value -> same hash.
        let batch = &a[0].1;
        let h = batch.column_by_name("h").unwrap().i64_values().unwrap();
        let g0_hashes: Vec<i64> = (0..50).filter(|i| i % 5 == 0).map(|i| h[i]).collect();
        assert!(g0_hashes.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn partition_covers_all_rows_exactly_once() {
        let mut nic = NicPipeline::new(vec![NicKernel::Partition {
            columns: vec!["k".into()],
            fanout: 4,
        }])
        .unwrap();
        let out = nic.push(sample(1000)).unwrap();
        let total: usize = out.iter().map(|(_, b)| b.rows()).sum();
        assert_eq!(total, 1000);
        // All partition ids valid and more than one used.
        assert!(out.iter().all(|(p, _)| *p < 4));
        assert!(out.len() > 1);
        // Same key always lands in the same partition: partition again.
        let mut nic2 = NicPipeline::new(vec![NicKernel::Partition {
            columns: vec!["k".into()],
            fanout: 4,
        }])
        .unwrap();
        let out2 = nic2.push(sample(1000)).unwrap();
        for ((p1, b1), (p2, b2)) in out.iter().zip(out2.iter()) {
            assert_eq!(p1, p2);
            assert_eq!(b1.canonical_rows(), b2.canonical_rows());
        }
    }

    #[test]
    fn partition_not_last_rejected() {
        let err = NicPipeline::new(vec![
            NicKernel::Partition {
                columns: vec!["k".into()],
                fanout: 2,
            },
            NicKernel::Count { output: "n".into() },
        ]);
        assert!(err.is_err());
    }

    #[test]
    fn count_discards_data_and_reports_total() {
        let mut nic = NicPipeline::new(vec![NicKernel::Count { output: "n".into() }]).unwrap();
        for _ in 0..4 {
            let out = nic.push(sample(250)).unwrap();
            assert!(out.is_empty(), "count must not forward data");
        }
        let fin = nic.finish().unwrap();
        assert_eq!(fin.len(), 1);
        assert_eq!(fin[0].1.column(0).i64_values().unwrap(), &[1000]);
        // Everything was absorbed at the NIC: bytes_out is just the count row.
        assert!(nic.stats().bytes_out < 100);
        assert!(nic.stats().bytes_in > 10_000);
    }

    #[test]
    fn preagg_kernel_reduces_stream() {
        let spec = PreAggSpec {
            group_by: vec!["grp".into()],
            aggs: vec![(AggFunc::Sum, "v".into())],
            max_groups: 1024,
        };
        let mut nic = NicPipeline::new(vec![NicKernel::PreAggregate(spec)]).unwrap();
        for chunk in sample(1000).split(100).unwrap() {
            nic.push(chunk).unwrap();
        }
        let fin = nic.finish().unwrap();
        let merged =
            Batch::concat(&fin.iter().map(|(_, b)| b.clone()).collect::<Vec<_>>()).unwrap();
        assert_eq!(merged.rows(), 5);
        let total: i64 = (0..merged.rows())
            .map(|r| merged.column(1).scalar_at(r).as_int().unwrap())
            .sum();
        let expect: i64 = (0..1000i64).map(|i| i * 2).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn figure3_pipeline_filter_project_hash() {
        // Projection at storage is modelled by the caller; the NIC chains
        // filter -> project -> hash as in Figure 3's receiving side.
        let mut nic = NicPipeline::new(vec![
            NicKernel::Filter(StoragePredicate::cmp("v", CmpOp::Ge, 100i64)),
            NicKernel::Project(vec!["grp".into(), "v".into()]),
            NicKernel::AppendHash {
                columns: vec!["grp".into()],
                output: "h".into(),
            },
        ])
        .unwrap();
        let out = nic.push(sample(100)).unwrap();
        let batch = &out[0].1;
        assert_eq!(batch.schema().len(), 3);
        assert_eq!(batch.rows(), 50);
    }

    #[test]
    fn preagg_then_count_via_finish_chain() {
        // A flushed pre-agg result must flow through later kernels.
        let spec = PreAggSpec {
            group_by: vec!["grp".into()],
            aggs: vec![(AggFunc::Count, "k".into())],
            max_groups: 1024,
        };
        let mut nic = NicPipeline::new(vec![
            NicKernel::PreAggregate(spec),
            NicKernel::Count {
                output: "groups".into(),
            },
        ])
        .unwrap();
        nic.push(sample(1000)).unwrap();
        let fin = nic.finish().unwrap();
        assert_eq!(fin.len(), 1);
        // 5 groups flowed from the pre-agg flush into the counter.
        assert_eq!(fin[0].1.column(0).i64_values().unwrap(), &[5]);
    }

    #[test]
    fn empty_batches_produce_no_output() {
        let mut nic = NicPipeline::new(vec![NicKernel::Filter(StoragePredicate::cmp(
            "k",
            CmpOp::Lt,
            -1i64,
        ))])
        .unwrap();
        let out = nic.push(sample(10)).unwrap();
        assert!(out.is_empty());
    }
}
