//! Node-to-node transport: wire frames over channels with byte accounting.
//!
//! This is the functional counterpart of the fabric's timing model: real
//! encoded bytes move between real threads here, while `df-fabric` accounts
//! what that movement would cost on a given interconnect. Keeping the two
//! separate lets the engine verify *correctness* under concurrency and the
//! simulator report *time* deterministically.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

use df_codec::wire::{decode_batch, encode_batch, WireOptions};
use df_data::Batch;

use crate::{NetError, Result};

/// What a frame carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameKind {
    /// A wire-encoded batch.
    Data,
    /// End of stream from the sender (no payload).
    Eos,
    /// Small control message (credits, doorbells).
    Control,
}

/// One message on the wire.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Sending node.
    pub from: usize,
    /// Frame type.
    pub kind: FrameKind,
    /// Encoded payload (empty for EOS).
    pub payload: Vec<u8>,
}

/// Per-direction transfer statistics.
#[derive(Debug, Clone, Default)]
pub struct TransportStats {
    /// `bytes[from][to]` moved so far.
    pub bytes: Vec<Vec<u64>>,
    /// `frames[from][to]` sent so far.
    pub frames: Vec<Vec<u64>>,
}

impl TransportStats {
    /// Total bytes over all directed pairs.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().flatten().sum()
    }

    /// Bytes that crossed between *different* nodes (excludes loopback).
    pub fn cross_node_bytes(&self) -> u64 {
        let mut total = 0;
        for (from, row) in self.bytes.iter().enumerate() {
            for (to, &b) in row.iter().enumerate() {
                if from != to {
                    total += b;
                }
            }
        }
        total
    }
}

/// A fully connected message-passing network among `n` nodes.
pub struct Network {
    senders: Vec<Sender<Frame>>,
    receivers: Vec<Mutex<Receiver<Frame>>>,
    stats: Mutex<TransportStats>,
}

impl Network {
    /// A network of `n` nodes.
    pub fn new(n: usize) -> Network {
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(Mutex::new(rx));
        }
        Network {
            senders,
            receivers,
            stats: Mutex::new(TransportStats {
                bytes: vec![vec![0; n]; n],
                frames: vec![vec![0; n]; n],
            }),
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.senders.len()
    }

    fn check_node(&self, node: usize) -> Result<()> {
        if node < self.nodes() {
            Ok(())
        } else {
            Err(NetError::UnknownNode(node))
        }
    }

    /// Send a raw frame.
    pub fn send(&self, from: usize, to: usize, kind: FrameKind, payload: Vec<u8>) -> Result<()> {
        self.check_node(from)?;
        self.check_node(to)?;
        {
            let mut stats = self.stats.lock().expect("stats lock poisoned");
            stats.bytes[from][to] += payload.len() as u64;
            stats.frames[from][to] += 1;
        }
        self.senders[to]
            .send(Frame {
                from,
                kind,
                payload,
            })
            .map_err(|_| NetError::Disconnected(to))
    }

    /// Encode and send a batch.
    pub fn send_batch(
        &self,
        from: usize,
        to: usize,
        batch: &Batch,
        opts: &WireOptions,
    ) -> Result<()> {
        let payload = encode_batch(batch, opts);
        self.send(from, to, FrameKind::Data, payload)
    }

    /// Signal end-of-stream from `from` to `to`.
    pub fn send_eos(&self, from: usize, to: usize) -> Result<()> {
        self.send(from, to, FrameKind::Eos, Vec::new())
    }

    /// Blocking receive of the next frame addressed to `node`.
    pub fn recv(&self, node: usize) -> Result<Frame> {
        self.check_node(node)?;
        self.receivers[node]
            .lock()
            .expect("receiver lock poisoned")
            .recv()
            .map_err(|_| NetError::Disconnected(node))
    }

    /// Receive and decode a data frame; `Ok(None)` for EOS.
    pub fn recv_batch(&self, node: usize) -> Result<Option<(usize, Batch)>> {
        match self.recv_frame(node)? {
            (_, None) => Ok(None),
            (from, Some(batch)) => Ok(Some((from, batch))),
        }
    }

    /// Receive and decode the next frame addressed to `node`, always
    /// reporting the sender: `(from, Some(batch))` for data, `(from, None)`
    /// for that sender's EOS.
    pub fn recv_frame(&self, node: usize) -> Result<(usize, Option<Batch>)> {
        let frame = self.recv(node)?;
        match frame.kind {
            FrameKind::Eos => Ok((frame.from, None)),
            FrameKind::Data | FrameKind::Control => {
                let batch = decode_batch(&frame.payload, None)?;
                Ok((frame.from, Some(batch)))
            }
        }
    }

    /// Snapshot of the transfer statistics.
    pub fn stats(&self) -> TransportStats {
        self.stats.lock().expect("stats lock poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_data::batch::batch_of;
    use df_data::Column;

    fn sample() -> Batch {
        batch_of(vec![("x", Column::from_i64(vec![1, 2, 3]))])
    }

    #[test]
    fn batch_roundtrip_between_nodes() {
        let net = Network::new(2);
        net.send_batch(0, 1, &sample(), &WireOptions::plain())
            .unwrap();
        let (from, got) = net.recv_batch(1).unwrap().unwrap();
        assert_eq!(from, 0);
        assert_eq!(got.canonical_rows(), sample().canonical_rows());
    }

    #[test]
    fn eos_signals_none() {
        let net = Network::new(2);
        net.send_eos(0, 1).unwrap();
        assert!(net.recv_batch(1).unwrap().is_none());
    }

    #[test]
    fn stats_track_bytes_per_pair() {
        let net = Network::new(3);
        net.send_batch(0, 1, &sample(), &WireOptions::plain())
            .unwrap();
        net.send_batch(0, 2, &sample(), &WireOptions::plain())
            .unwrap();
        net.send_batch(1, 1, &sample(), &WireOptions::plain())
            .unwrap();
        let stats = net.stats();
        assert!(stats.bytes[0][1] > 0);
        assert_eq!(stats.bytes[0][1], stats.bytes[0][2]);
        assert_eq!(stats.frames[0][1], 1);
        // Loopback is excluded from cross-node traffic.
        assert_eq!(
            stats.cross_node_bytes(),
            stats.total_bytes() - stats.bytes[1][1]
        );
    }

    #[test]
    fn unknown_node_rejected() {
        let net = Network::new(1);
        assert!(matches!(
            net.send(0, 5, FrameKind::Eos, vec![]),
            Err(NetError::UnknownNode(5))
        ));
        assert!(net.recv(9).is_err());
    }

    #[test]
    fn compressed_frames_shrink_on_wire() {
        // Floats encode plain (no RLE), so block compression is what shrinks them.
        let batch = batch_of(vec![("k", Column::from_f64(vec![7.5; 10_000]))]);
        let plain_net = Network::new(2);
        plain_net
            .send_batch(0, 1, &batch, &WireOptions::plain())
            .unwrap();
        let comp_net = Network::new(2);
        comp_net
            .send_batch(0, 1, &batch, &WireOptions::compressed())
            .unwrap();
        assert!(comp_net.stats().total_bytes() < plain_net.stats().total_bytes() / 5);
        let (_, got) = comp_net.recv_batch(1).unwrap().unwrap();
        assert_eq!(got.rows(), 10_000);
    }

    #[test]
    fn concurrent_senders_one_receiver() {
        let net = std::sync::Arc::new(Network::new(3));
        std::thread::scope(|scope| {
            for sender in 0..2 {
                let net = net.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        net.send_batch(sender, 2, &sample(), &WireOptions::plain())
                            .unwrap();
                    }
                    net.send_eos(sender, 2).unwrap();
                });
            }
            let mut data = 0;
            let mut eos = 0;
            while eos < 2 {
                match net.recv_batch(2).unwrap() {
                    Some(_) => data += 1,
                    None => eos += 1,
                }
            }
            assert_eq!(data, 100);
        });
    }
}
