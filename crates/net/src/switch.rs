//! The programmable switch: in-network aggregation and multicast.
//!
//! §4.4's cascade ends in the network core: partial aggregates flowing from
//! many sources toward one destination can be merged *in the switch*, so
//! the destination receives one combined stream instead of N. The switch
//! holds only the bounded group table — the same stateless-ish discipline
//! as every other in-path device.

use df_codec::wire::WireOptions;
use df_storage::smart::{merge_partial_aggregates, PreAggSpec};

use crate::transport::Network;
use crate::{NetError, Result};

/// Statistics of one switch pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Frames entering the switch.
    pub frames_in: u64,
    /// Rows entering.
    pub rows_in: u64,
    /// Rows leaving after in-network merging.
    pub rows_out: u64,
}

impl SwitchStats {
    /// Row reduction achieved inside the network.
    pub fn reduction_factor(&self) -> f64 {
        if self.rows_out == 0 {
            f64::INFINITY
        } else {
            self.rows_in as f64 / self.rows_out as f64
        }
    }
}

/// Merge partial-aggregate batches in the network: receive until `senders`
/// EOS markers at `switch_node`, merge per `spec`, and forward a single
/// combined stream to `destination`.
pub fn in_network_aggregate(
    network: &Network,
    switch_node: usize,
    senders: usize,
    destination: usize,
    spec: &PreAggSpec,
    wire: &WireOptions,
) -> Result<SwitchStats> {
    let mut stats = SwitchStats::default();
    let mut partials = Vec::new();
    let mut eos = 0;
    while eos < senders {
        match network.recv_batch(switch_node)? {
            Some((_, batch)) => {
                stats.frames_in += 1;
                stats.rows_in += batch.rows() as u64;
                partials.push(batch);
            }
            None => eos += 1,
        }
    }
    if partials.is_empty() {
        network.send_eos(switch_node, destination)?;
        return Ok(stats);
    }
    let merged = merge_partial_aggregates(&partials, spec).map_err(NetError::Storage)?;
    stats.rows_out = merged.rows() as u64;
    network.send_batch(switch_node, destination, &merged, wire)?;
    network.send_eos(switch_node, destination)?;
    Ok(stats)
}

/// Multicast every received frame to all destinations until `senders` EOS
/// markers arrive (replication trees for broadcast joins).
pub fn multicast(
    network: &Network,
    switch_node: usize,
    senders: usize,
    destinations: &[usize],
    wire: &WireOptions,
) -> Result<SwitchStats> {
    let mut stats = SwitchStats::default();
    let mut eos = 0;
    while eos < senders {
        match network.recv_batch(switch_node)? {
            Some((_, batch)) => {
                stats.frames_in += 1;
                stats.rows_in += batch.rows() as u64;
                stats.rows_out += batch.rows() as u64 * destinations.len() as u64;
                for &dest in destinations {
                    network.send_batch(switch_node, dest, &batch, wire)?;
                }
            }
            None => eos += 1,
        }
    }
    for &dest in destinations {
        network.send_eos(switch_node, dest)?;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::gather;
    use df_data::batch::batch_of;
    use df_data::Batch;
    use df_data::Column;
    use df_storage::smart::AggFunc;

    fn partial(groups: &[(&str, i64)]) -> Batch {
        batch_of(vec![
            (
                "grp",
                Column::from_strs(&groups.iter().map(|(g, _)| *g).collect::<Vec<_>>()),
            ),
            (
                "sum_v",
                Column::from_i64(groups.iter().map(|(_, s)| *s).collect()),
            ),
        ])
    }

    fn spec() -> PreAggSpec {
        PreAggSpec {
            group_by: vec!["grp".into()],
            aggs: vec![(AggFunc::Sum, "v".into())],
            max_groups: 1024,
        }
    }

    #[test]
    fn switch_merges_partials_from_two_sources() {
        let net = Network::new(4); // 0,1 = sources, 2 = switch, 3 = dest
        let wire = WireOptions::plain();
        net.send_batch(0, 2, &partial(&[("a", 10), ("b", 1)]), &wire)
            .unwrap();
        net.send_eos(0, 2).unwrap();
        net.send_batch(1, 2, &partial(&[("a", 5), ("c", 7)]), &wire)
            .unwrap();
        net.send_eos(1, 2).unwrap();

        let stats = in_network_aggregate(&net, 2, 2, 3, &spec(), &wire).unwrap();
        assert_eq!(stats.rows_in, 4);
        assert_eq!(stats.rows_out, 3);

        let got = Batch::concat(&gather(&net, 3, 1).unwrap()).unwrap();
        assert_eq!(got.rows(), 3);
        for row in 0..got.rows() {
            let g = got.column(0).str_at(row);
            let s = got.column(1).scalar_at(row).as_int().unwrap();
            match g {
                "a" => assert_eq!(s, 15),
                "b" => assert_eq!(s, 1),
                "c" => assert_eq!(s, 7),
                other => panic!("unexpected group {other}"),
            }
        }
    }

    #[test]
    fn empty_sources_forward_eos_only() {
        let net = Network::new(3);
        net.send_eos(0, 1).unwrap();
        let stats = in_network_aggregate(&net, 1, 1, 2, &spec(), &WireOptions::plain()).unwrap();
        assert_eq!(stats.rows_in, 0);
        assert!(gather(&net, 2, 1).unwrap().is_empty());
    }

    #[test]
    fn multicast_replicates_to_all() {
        let net = Network::new(5); // 0 source, 1 switch, 2-4 dests
        let wire = WireOptions::plain();
        net.send_batch(0, 1, &partial(&[("a", 1)]), &wire).unwrap();
        net.send_eos(0, 1).unwrap();
        let stats = multicast(&net, 1, 1, &[2, 3, 4], &wire).unwrap();
        assert_eq!(stats.rows_in, 1);
        assert_eq!(stats.rows_out, 3);
        for node in 2..5 {
            assert_eq!(gather(&net, node, 1).unwrap().len(), 1);
        }
    }
}
