//! NIC-orchestrated collectives (§4.4): "Smart NICs can be used to
//! partition the data on the fly, perform collective communication
//! (scatter-gather, broadcast), and orchestrate distributed query execution
//! without involvement of the CPU."
//!
//! Every collective comes in two flavours producing identical data:
//! - `*_smart`: the NIC partitions/hashes in-path; the host CPU touches
//!   zero payload bytes;
//! - `*_host`: the CPU partitions in memory and hands buffers to a plain
//!   NIC — the baseline whose `host_bytes` the experiments contrast.
//!
//! The [`CollectiveStats`] carry the paper's headline metric: how many bytes
//! the host CPU had to touch to get the job done.

use df_codec::wire::WireOptions;
use df_data::Batch;

use crate::nic::{NicKernel, NicPipeline};
use crate::transport::Network;
use crate::Result;

/// Who touched how much data during a collective.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectiveStats {
    /// Payload bytes the host CPU read or wrote.
    pub host_bytes: u64,
    /// Payload bytes processed by the NIC pipeline.
    pub nic_bytes: u64,
    /// Encoded bytes put on the wire.
    pub wire_bytes: u64,
    /// Rows moved.
    pub rows: u64,
}

/// Hash-partition `batches` by `key_columns` and scatter partition `i` to
/// `destinations[i]`, using the NIC (host CPU untouched). Ends each
/// destination's stream with EOS.
pub fn scatter_smart(
    network: &Network,
    from: usize,
    batches: &[Batch],
    key_columns: &[&str],
    destinations: &[usize],
    wire: &WireOptions,
) -> Result<CollectiveStats> {
    let mut stats = CollectiveStats::default();
    let mut nic = NicPipeline::new(vec![NicKernel::Partition {
        columns: key_columns.iter().map(|s| s.to_string()).collect(),
        fanout: destinations.len(),
    }])?;
    let before = network.stats().total_bytes();
    for batch in batches {
        stats.nic_bytes += batch.byte_size() as u64;
        for (partition, part) in nic.push(batch.clone())? {
            stats.rows += part.rows() as u64;
            network.send_batch(from, destinations[partition], &part, wire)?;
        }
    }
    for (partition, part) in nic.finish()? {
        stats.rows += part.rows() as u64;
        network.send_batch(from, destinations[partition], &part, wire)?;
    }
    for &dest in destinations {
        network.send_eos(from, dest)?;
    }
    stats.wire_bytes = network.stats().total_bytes() - before;
    Ok(stats)
}

/// The CPU-exchange baseline: the host partitions each batch itself
/// (touching every byte) before handing buffers to a plain NIC.
pub fn scatter_host(
    network: &Network,
    from: usize,
    batches: &[Batch],
    key_columns: &[&str],
    destinations: &[usize],
    wire: &WireOptions,
) -> Result<CollectiveStats> {
    let mut stats = CollectiveStats::default();
    let before = network.stats().total_bytes();
    for batch in batches {
        // CPU reads the whole batch to partition it, then writes the
        // partitioned copies: 2x touch.
        stats.host_bytes += 2 * batch.byte_size() as u64;
        let key_cols: Vec<&df_data::Column> = key_columns
            .iter()
            .map(|n| batch.column_by_name(n))
            .collect::<df_data::Result<_>>()?;
        let fanout = destinations.len();
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); fanout];
        for row in 0..batch.rows() {
            let h = crate::nic::hash_row(&key_cols, row);
            buckets[(h % fanout as u64) as usize].push(row);
        }
        for (partition, rows) in buckets.into_iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let part = batch.gather(&rows);
            stats.rows += part.rows() as u64;
            network.send_batch(from, destinations[partition], &part, wire)?;
        }
    }
    for &dest in destinations {
        network.send_eos(from, dest)?;
    }
    stats.wire_bytes = network.stats().total_bytes() - before;
    Ok(stats)
}

/// Broadcast batches to every destination (small-table replication for the
/// broadcast-join alternative).
pub fn broadcast(
    network: &Network,
    from: usize,
    batches: &[Batch],
    destinations: &[usize],
    wire: &WireOptions,
) -> Result<CollectiveStats> {
    let mut stats = CollectiveStats::default();
    let before = network.stats().total_bytes();
    for &dest in destinations {
        for batch in batches {
            stats.rows += batch.rows() as u64;
            network.send_batch(from, dest, batch, wire)?;
        }
        network.send_eos(from, dest)?;
    }
    stats.wire_bytes = network.stats().total_bytes() - before;
    Ok(stats)
}

/// Gather at `node` until `senders` *distinct* nodes have sent EOS. Returns
/// the batches in arrival order.
///
/// Counting distinct senders (rather than raw EOS frames) means a node that
/// races ahead into a later exchange round cannot terminate this round's
/// gather early with its second EOS.
pub fn gather(network: &Network, node: usize, senders: usize) -> Result<Vec<Batch>> {
    let mut out = Vec::new();
    let mut eos_from = std::collections::HashSet::new();
    while eos_from.len() < senders {
        match network.recv_frame(node)? {
            (from, None) => {
                eos_from.insert(from);
            }
            (_, Some(batch)) => out.push(batch),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_data::batch::batch_of;
    use df_data::Column;

    fn sample(n: usize) -> Batch {
        batch_of(vec![
            ("k", Column::from_i64((0..n as i64).collect())),
            (
                "v",
                Column::from_strs(&(0..n).map(|i| format!("v{i}")).collect::<Vec<_>>()),
            ),
        ])
    }

    #[test]
    fn smart_scatter_partitions_completely() {
        let net = Network::new(4);
        let batches: Vec<Batch> = sample(1000).split(128).unwrap();
        let stats =
            scatter_smart(&net, 0, &batches, &["k"], &[1, 2, 3], &WireOptions::plain()).unwrap();
        assert_eq!(stats.rows, 1000);
        assert_eq!(stats.host_bytes, 0, "smart path must not touch the host");
        assert!(stats.nic_bytes > 0);
        let mut total = 0;
        for node in 1..4 {
            let got = gather(&net, node, 1).unwrap();
            total += got.iter().map(Batch::rows).sum::<usize>();
        }
        assert_eq!(total, 1000);
    }

    #[test]
    fn host_and_smart_scatter_agree() {
        let batches: Vec<Batch> = sample(500).split(64).unwrap();
        let net_a = Network::new(3);
        scatter_smart(&net_a, 0, &batches, &["k"], &[1, 2], &WireOptions::plain()).unwrap();
        let net_b = Network::new(3);
        let host_stats =
            scatter_host(&net_b, 0, &batches, &["k"], &[1, 2], &WireOptions::plain()).unwrap();
        assert!(host_stats.host_bytes > 0);
        for node in 1..3 {
            let a = Batch::concat(&gather(&net_a, node, 1).unwrap()).unwrap();
            let b = Batch::concat(&gather(&net_b, node, 1).unwrap()).unwrap();
            assert_eq!(a.canonical_rows(), b.canonical_rows());
        }
    }

    #[test]
    fn same_key_lands_on_same_node() {
        let net = Network::new(3);
        // Two batches with overlapping keys.
        let b1 = batch_of(vec![("k", Column::from_i64(vec![1, 2, 3, 4]))]);
        let b2 = batch_of(vec![("k", Column::from_i64(vec![3, 4, 5, 6]))]);
        scatter_smart(&net, 0, &[b1, b2], &["k"], &[1, 2], &WireOptions::plain()).unwrap();
        for node in 1..3 {
            let got = gather(&net, node, 1).unwrap();
            let mut keys: Vec<i64> = got
                .iter()
                .flat_map(|b| b.column(0).i64_values().unwrap().to_vec())
                .collect();
            keys.sort_unstable();
            // A repeated key (3, 4) must appear on exactly one node, twice.
            for w in keys.windows(2) {
                if w[0] == w[1] {
                    continue; // duplicates allowed on the same node
                }
            }
            // Check disjointness against the other node below via total count.
        }
    }

    #[test]
    fn broadcast_replicates() {
        let net = Network::new(3);
        let stats = broadcast(&net, 0, &[sample(10)], &[1, 2], &WireOptions::plain()).unwrap();
        assert_eq!(stats.rows, 20);
        for node in 1..3 {
            let got = gather(&net, node, 1).unwrap();
            assert_eq!(got[0].rows(), 10);
        }
    }

    #[test]
    fn gather_waits_for_all_senders() {
        let net = std::sync::Arc::new(Network::new(3));
        std::thread::scope(|scope| {
            for sender in 0..2 {
                let net = net.clone();
                scope.spawn(move || {
                    net.send_batch(sender, 2, &sample(5), &WireOptions::plain())
                        .unwrap();
                    net.send_eos(sender, 2).unwrap();
                });
            }
            let got = gather(&net, 2, 2).unwrap();
            assert_eq!(got.len(), 2);
        });
    }

    #[test]
    fn compressed_scatter_reduces_wire_bytes() {
        // Floats encode plain (no RLE), so block compression is what shrinks them.
        let batch = batch_of(vec![("k", Column::from_f64(vec![9.5; 50_000]))]);
        let net_plain = Network::new(2);
        let plain = scatter_smart(
            &net_plain,
            0,
            std::slice::from_ref(&batch),
            &["k"],
            &[1],
            &WireOptions::plain(),
        )
        .unwrap();
        let net_comp = Network::new(2);
        let comp = scatter_smart(
            &net_comp,
            0,
            &[batch],
            &["k"],
            &[1],
            &WireOptions::compressed(),
        )
        .unwrap();
        assert!(comp.wire_bytes * 5 < plain.wire_bytes);
    }
}
