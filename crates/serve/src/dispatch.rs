//! The query execution pipeline: plan → compile → verify + deadlock-check
//! → admit → gated execute.
//!
//! This is the dispatcher/merger shape: one [`QueryService`] fronts the
//! engine, every concurrent query flows through the same four gates before
//! its pipelines touch a device:
//!
//! 1. **Compile** — the chosen physical plan becomes a
//!    [`df_core::pipeline::PipelineGraph`];
//! 2. **Verify** — `verify_or_err` (static invariants + placement routes)
//!    and `df_check::deadlock::analyze` (credit-flow deadlock freedom); a
//!    failing graph never executes;
//! 3. **Admit** — the graph's per-link byte demand is offered to the
//!    [`crate::admission::AdmissionController`]; oversized queries are
//!    rejected, contended ones wait in FIFO order;
//! 4. **Execute** — the plan runs under a [`QueryGate`], the
//!    [`df_core::exec::push::ExecGate`] that charges one fair-share credit
//!    per batch and yields to higher-priority queries at batch boundaries.
//!
//! Credits and admission reservations are released on **every** exit path
//! (success, engine error, client disconnect), which is what keeps the
//! credit ledger's conservation invariant intact under fault injection.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use df_core::error::EngineError;
use df_core::exec::push::ExecGate;
use df_core::pipeline::{PipelineGraph, DEFAULT_QUEUE_CAPACITY};
use df_core::session::{QueryResult, Session};
use df_fabric::device::{DeviceId, DeviceKind};
use df_fabric::topology::Topology;

use crate::admission::{AdmissionController, Ticket, Verdict};
use crate::sched::{FairScheduler, QueryId};
use crate::tenant::{TenantId, TenantSpec};
use crate::{Result, ServeError};

/// Cooperative cancellation flag; the server trips it when a client
/// disconnects mid-stream and the query's gate aborts at the next batch
/// boundary.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-tripped token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trip the token: the query aborts at its next batch boundary.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Thread-safe wrapper around the [`FairScheduler`]: a mutex for the state
/// machine, a condvar so gates can sleep until credits free up.
#[derive(Debug)]
pub struct SchedulerHandle {
    inner: Mutex<FairScheduler>,
    cv: Condvar,
}

impl SchedulerHandle {
    /// Wrap a scheduler for sharing across session threads.
    pub fn new(sched: FairScheduler) -> Arc<SchedulerHandle> {
        Arc::new(SchedulerHandle {
            inner: Mutex::new(sched),
            cv: Condvar::new(),
        })
    }

    /// Run `f` under the lock and wake every waiting gate afterwards.
    pub fn with<R>(&self, f: impl FnOnce(&mut FairScheduler) -> R) -> R {
        let mut guard = self.inner.lock().expect("scheduler lock poisoned");
        let out = f(&mut guard);
        self.cv.notify_all();
        out
    }
}

/// How long a gate waits for credits before giving up (a watchdog against
/// scheduler bugs, not a tuning knob — the conservation invariant means a
/// healthy system always recycles credits).
const GATE_WAIT: Duration = Duration::from_secs(10);

/// The per-query [`ExecGate`]: consulted by the executors before every
/// batch. Each `acquire` is a batch boundary — the previous batch's credit
/// is repaid, held credits are yielded if a higher-priority query waits,
/// and one credit is charged for the next batch (sleeping until the
/// scheduler grants one).
#[derive(Debug)]
pub struct QueryGate {
    sched: Arc<SchedulerHandle>,
    query: QueryId,
    cancel: CancelToken,
}

impl QueryGate {
    /// A gate charging `query`'s account on `sched`.
    pub fn new(sched: Arc<SchedulerHandle>, query: QueryId, cancel: CancelToken) -> QueryGate {
        QueryGate {
            sched,
            query,
            cancel,
        }
    }
}

impl ExecGate for QueryGate {
    fn acquire(&self, _pipeline: usize) -> df_core::error::Result<()> {
        let q = self.query;
        let mut guard = self.sched.inner.lock().expect("scheduler lock poisoned");
        loop {
            if self.cancel.is_cancelled() {
                return Err(EngineError::Internal(format!(
                    "query q{} cancelled (client disconnected)",
                    q.0
                )));
            }
            // Batch boundary: repay the previous batch's credit first.
            if guard.in_flight(q) {
                guard.complete_batch(q);
                self.sched.cv.notify_all();
            }
            // Preemption point: a higher-priority query is waiting — give
            // back unused credits and re-queue behind it.
            if guard.should_yield(q) && guard.held(q) > 0 {
                guard.yield_credits(q);
                self.sched.cv.notify_all();
            }
            if guard.held(q) == 0 {
                guard.request(q);
            }
            if guard.held(q) > 0 {
                guard.use_credit(q);
                return Ok(());
            }
            let (g, timeout) = self
                .sched
                .cv
                .wait_timeout(guard, GATE_WAIT)
                .expect("scheduler lock poisoned");
            guard = g;
            if timeout.timed_out() {
                return Err(EngineError::Internal(format!(
                    "query q{} starved: no credit within {GATE_WAIT:?}",
                    q.0
                )));
            }
        }
    }
}

/// Sizing knobs for a [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Concurrent credits across all queries (device slots).
    pub slots: u64,
    /// Credits granted per scheduler pick.
    pub quantum: u64,
    /// Admission-control capacity window.
    pub window: df_sim::SimDuration,
    /// Admission queue bound.
    pub max_queue: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            slots: 8,
            quantum: 2,
            window: df_sim::SimDuration::from_secs_f64(0.1),
            max_queue: 32,
        }
    }
}

/// Everything one served query returns.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The engine-side result (rows, variant, movement ledger).
    pub result: QueryResult,
    /// Scheduler credits the query consumed.
    pub credits: u64,
    /// The scheduler's query id.
    pub query: QueryId,
}

/// The multi-tenant query front-end: one shared [`Session`], one shared
/// scheduler, one admission controller.
pub struct QueryService {
    session: Session,
    sched: Arc<SchedulerHandle>,
    admission: Mutex<AdmissionController>,
    admission_cv: Condvar,
    default_device: DeviceId,
}

impl QueryService {
    /// Wrap a session in the serving layer.
    pub fn new(session: Session, config: ServiceConfig) -> QueryService {
        let topology = session.topology().clone();
        let default_device = default_compute_device(&topology);
        QueryService {
            session,
            sched: SchedulerHandle::new(FairScheduler::new(config.slots, config.quantum)),
            admission: Mutex::new(AdmissionController::with_window(
                topology,
                config.window,
                config.max_queue,
            )),
            admission_cv: Condvar::new(),
            default_device,
        }
    }

    /// The underlying session (table creation, explain, …).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The shared scheduler handle (ledger inspection, decision digests).
    pub fn scheduler(&self) -> &Arc<SchedulerHandle> {
        &self.sched
    }

    /// Register (or look up) a tenant.
    pub fn register_tenant(&self, spec: TenantSpec) -> TenantId {
        self.sched.with(|s| s.register_tenant(spec))
    }

    /// Plan, verify, admit, and execute one SQL query for `tenant`,
    /// charging its credits to the fair-share scheduler. Blocks until the
    /// query finishes, is rejected, or `cancel` trips.
    pub fn run_sql(
        &self,
        tenant: TenantId,
        sql: &str,
        cancel: CancelToken,
    ) -> Result<QueryOutcome> {
        let logical = self.session.logical_plan(sql)?;
        let mut variants = self.session.variants(&logical)?;
        if variants.is_empty() {
            return Err(ServeError::Engine(EngineError::Plan(
                "no executable variant".into(),
            )));
        }
        let best = variants.remove(0);
        let plan = best.plan;

        // Gate 2: static verification + credit-flow deadlock analysis.
        let profiles = self.session.profiles();
        let topology = self.session.topology().clone();
        let graph = PipelineGraph::compile(
            &plan,
            Some(&profiles),
            Some(&topology),
            DEFAULT_QUEUE_CAPACITY,
        );
        graph
            .verify_or_err(Some(&topology))
            .map_err(|e| ServeError::PlanRejected(e.to_string()))?;
        let deadlock = df_check::deadlock::analyze(&graph);
        if !deadlock.is_deadlock_free() {
            let msgs: Vec<String> = deadlock.findings.iter().map(|f| f.to_string()).collect();
            return Err(ServeError::PlanRejected(format!(
                "credit-flow deadlock: {}",
                msgs.join("; ")
            )));
        }

        // Gate 3: admission against the flow-model link capacity.
        let tenant_name = self.sched.with(|s| s.registry().spec(tenant).name.clone());
        let specs = graph
            .to_flow_specs(self.default_device, &format!("t.{tenant_name}"))?
            .into_iter()
            .map(|s| s.for_tenant(tenant_name.clone()))
            .collect::<Vec<_>>();
        let ticket = self.admit(&tenant_name, &specs, &cancel)?;

        // Gate 4: gated execution, with unconditional cleanup.
        let query = self.sched.with(|s| s.begin_query(tenant));
        let gate: Arc<dyn ExecGate> = Arc::new(QueryGate::new(self.sched.clone(), query, cancel));
        let executed = self.session.execute_plan_gated(&plan, Some(gate));
        let credits = self.sched.with(|s| {
            s.finish_query(query);
            s.query_credits(query)
        });
        self.release(ticket);
        let mut result = executed.map_err(ServeError::Engine)?;
        result.cost = best.cost;
        Ok(QueryOutcome {
            result,
            credits,
            query,
        })
    }

    /// Offer the query to admission control; blocks while queued.
    fn admit(
        &self,
        tenant: &str,
        specs: &[df_fabric::flow::PipelineSpec],
        cancel: &CancelToken,
    ) -> Result<Ticket> {
        let mut ac = self.admission.lock().expect("admission lock poisoned");
        let demand = ac.demand_of(specs).map_err(ServeError::PlanRejected)?;
        match ac.offer(demand) {
            Verdict::Admitted(t) => {
                self.sched
                    .with(|s| s.note(format!("admit tenant={tenant} ticket={}", t.0)));
                Ok(t)
            }
            Verdict::Rejected(why) => {
                self.sched
                    .with(|s| s.note(format!("reject tenant={tenant}: {why}")));
                Err(ServeError::Rejected(why))
            }
            Verdict::Queued(t) => {
                self.sched
                    .with(|s| s.note(format!("queue tenant={tenant} ticket={}", t.0)));
                loop {
                    if cancel.is_cancelled() {
                        ac.release(t);
                        return Err(ServeError::Disconnected);
                    }
                    if ac.is_admitted(t) {
                        return Ok(t);
                    }
                    let (g, timeout) = self
                        .admission_cv
                        .wait_timeout(ac, GATE_WAIT)
                        .expect("admission lock poisoned");
                    ac = g;
                    if timeout.timed_out() {
                        ac.release(t);
                        return Err(ServeError::Rejected(format!(
                            "admission wait exceeded {GATE_WAIT:?}"
                        )));
                    }
                }
            }
        }
    }

    /// Release an admission reservation and wake queued queries.
    fn release(&self, ticket: Ticket) {
        let mut ac = self.admission.lock().expect("admission lock poisoned");
        ac.release(ticket);
        self.admission_cv.notify_all();
    }
}

/// The device hosting unplaced stages: the first CPU in the topology (every
/// shipped topology has one).
pub fn default_compute_device(topology: &Topology) -> DeviceId {
    topology
        .devices()
        .iter()
        .find(|d| matches!(d.profile.kind, DeviceKind::Cpu { .. }))
        .map(|d| d.id)
        .unwrap_or(DeviceId(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_data::batch::batch_of;
    use df_data::{Column, Scalar};

    fn service() -> QueryService {
        let session = Session::in_memory().unwrap();
        session
            .create_table(
                "orders",
                &[batch_of(vec![
                    ("id", Column::from_i64((0..500).collect())),
                    (
                        "amount",
                        Column::from_f64((0..500).map(|i| (i % 90) as f64).collect()),
                    ),
                ])],
            )
            .unwrap();
        QueryService::new(session, ServiceConfig::default())
    }

    #[test]
    fn served_query_matches_direct_execution_and_balances() {
        let svc = service();
        let t = svc.register_tenant(TenantSpec::new("alice", 1));
        let sql = "SELECT COUNT(*) AS n FROM orders WHERE amount > 10.0";
        let out = svc.run_sql(t, sql, CancelToken::new()).unwrap();
        let direct = svc.session().sql(sql).unwrap();
        assert_eq!(out.result.batch.row(0)[0], direct.batch.row(0)[0]);
        assert!(out.credits > 0, "gated execution must consume credits");
        svc.scheduler().with(|s| {
            assert!(s.ledger().check_balanced().is_ok());
            assert_eq!(s.ledger().granted("alice"), out.credits);
        });
    }

    #[test]
    fn cancelled_query_aborts_and_balances() {
        let svc = service();
        let t = svc.register_tenant(TenantSpec::new("bob", 1));
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = svc
            .run_sql(t, "SELECT COUNT(*) AS n FROM orders", cancel)
            .unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::Engine(EngineError::Internal(_)) | ServeError::Disconnected
            ),
            "got {err}"
        );
        svc.scheduler()
            .with(|s| assert!(s.ledger().check_balanced().is_ok()));
    }

    #[test]
    fn parse_error_surfaces_before_scheduling() {
        let svc = service();
        let t = svc.register_tenant(TenantSpec::new("carol", 1));
        let err = svc
            .run_sql(t, "SELEKT nope", CancelToken::new())
            .unwrap_err();
        assert!(matches!(err, ServeError::Engine(_)));
        svc.scheduler().with(|s| {
            assert_eq!(s.ledger().granted("carol"), 0);
            assert!(s.ledger().check_balanced().is_ok());
        });
    }

    #[test]
    fn scalar_result_is_int() {
        let svc = service();
        let t = svc.register_tenant(TenantSpec::new("dave", 2));
        let out = svc
            .run_sql(t, "SELECT COUNT(*) AS n FROM orders", CancelToken::new())
            .unwrap();
        assert_eq!(out.result.batch.row(0)[0], Scalar::Int(500));
    }
}
