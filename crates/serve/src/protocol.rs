//! The wire protocol: length-prefixed frames over any byte stream.
//!
//! Every frame is `u32-LE payload length` followed by the payload: one
//! kind byte and a kind-specific body. Integers are little-endian; strings
//! are UTF-8 with a `u32` length prefix. Result batches travel in the
//! engine's wire encoding (`df_codec::wire::encode_batch`), so the serving
//! layer reuses the same columnar frame format the fabric edges use.
//!
//! A session is: `Hello` → `HelloOk`, then any number of `Query` →
//! (`Batch`* `Done`) | `Error` | `Rejected` exchanges, then `Bye`.

use std::io::{Read, Write};

use df_codec::wire::{decode_batch, encode_batch, WireOptions};
use df_data::Batch;

use crate::{Result, ServeError};

/// Upper bound on a single frame's payload (guards against garbage length
/// prefixes from a confused peer).
pub const MAX_FRAME: u32 = 64 << 20;

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Session open: tenant name, fair-share weight, priority class.
    Hello {
        /// Tenant name (registry key).
        tenant: String,
        /// Fair-share weight (≥ 1).
        weight: u32,
        /// Priority class (higher preempts lower).
        priority: u8,
    },
    /// Session accepted.
    HelloOk,
    /// Run a SQL query.
    Query {
        /// The SQL text.
        sql: String,
    },
    /// One wire-encoded result batch.
    Batch(Vec<u8>),
    /// Query finished: row count and scheduler credits consumed.
    Done {
        /// Result rows streamed.
        rows: u64,
        /// Fair-share credits the query consumed.
        credits: u64,
    },
    /// Query failed (engine or protocol error).
    Error(String),
    /// Admission control or plan verification rejected the query.
    Rejected(String),
    /// Session close.
    Bye,
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::HelloOk => 2,
            Frame::Query { .. } => 3,
            Frame::Batch(_) => 4,
            Frame::Done { .. } => 5,
            Frame::Error(_) => 6,
            Frame::Rejected(_) => 7,
            Frame::Bye => 8,
        }
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn take_str(buf: &[u8], at: &mut usize) -> Result<String> {
    let n = take_u32(buf, at)? as usize;
    let end = at
        .checked_add(n)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| ServeError::Protocol("string runs past frame end".into()))?;
    let s = std::str::from_utf8(&buf[*at..end])
        .map_err(|_| ServeError::Protocol("string is not UTF-8".into()))?
        .to_string();
    *at = end;
    Ok(s)
}

fn take_u32(buf: &[u8], at: &mut usize) -> Result<u32> {
    let end = *at + 4;
    if end > buf.len() {
        return Err(ServeError::Protocol("u32 runs past frame end".into()));
    }
    let v = u32::from_le_bytes(buf[*at..end].try_into().expect("4 bytes"));
    *at = end;
    Ok(v)
}

fn take_u64(buf: &[u8], at: &mut usize) -> Result<u64> {
    let end = *at + 8;
    if end > buf.len() {
        return Err(ServeError::Protocol("u64 runs past frame end".into()));
    }
    let v = u64::from_le_bytes(buf[*at..end].try_into().expect("8 bytes"));
    *at = end;
    Ok(v)
}

/// Serialize one frame to a writer.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<()> {
    let mut payload = vec![frame.kind()];
    match frame {
        Frame::Hello {
            tenant,
            weight,
            priority,
        } => {
            put_str(&mut payload, tenant);
            payload.extend_from_slice(&weight.to_le_bytes());
            payload.push(*priority);
        }
        Frame::HelloOk | Frame::Bye => {}
        Frame::Query { sql } => put_str(&mut payload, sql),
        Frame::Batch(bytes) => payload.extend_from_slice(bytes),
        Frame::Done { rows, credits } => {
            payload.extend_from_slice(&rows.to_le_bytes());
            payload.extend_from_slice(&credits.to_le_bytes());
        }
        Frame::Error(msg) | Frame::Rejected(msg) => put_str(&mut payload, msg),
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame. A clean EOF at a frame boundary is
/// [`ServeError::Disconnected`]; a short read inside a frame is a
/// protocol error.
pub fn read_frame(r: &mut impl Read) -> Result<Frame> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            return Err(ServeError::Disconnected)
        }
        Err(e) => return Err(ServeError::Io(e)),
    }
    let len = u32::from_le_bytes(len);
    if len == 0 || len > MAX_FRAME {
        return Err(ServeError::Protocol(format!("bad frame length {len}")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|_| ServeError::Protocol("frame truncated".into()))?;
    let body = &payload[1..];
    let mut at = 0usize;
    let frame = match payload[0] {
        1 => {
            let tenant = take_str(body, &mut at)?;
            let weight = take_u32(body, &mut at)?;
            let priority = *body
                .get(at)
                .ok_or_else(|| ServeError::Protocol("hello missing priority".into()))?;
            Frame::Hello {
                tenant,
                weight,
                priority,
            }
        }
        2 => Frame::HelloOk,
        3 => Frame::Query {
            sql: take_str(body, &mut at)?,
        },
        4 => Frame::Batch(body.to_vec()),
        5 => Frame::Done {
            rows: take_u64(body, &mut at)?,
            credits: take_u64(body, &mut at)?,
        },
        6 => Frame::Error(take_str(body, &mut at)?),
        7 => Frame::Rejected(take_str(body, &mut at)?),
        8 => Frame::Bye,
        k => return Err(ServeError::Protocol(format!("unknown frame kind {k}"))),
    };
    Ok(frame)
}

/// Wire-encode a result batch for a [`Frame::Batch`].
pub fn encode_result(batch: &Batch) -> Vec<u8> {
    encode_batch(batch, &WireOptions::plain())
}

/// Decode a [`Frame::Batch`] payload back into a batch.
pub fn decode_result(bytes: &[u8]) -> Result<Batch> {
    decode_batch(bytes, None).map_err(|e| ServeError::Protocol(format!("bad batch frame: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_data::batch::batch_of;
    use df_data::Column;

    #[test]
    fn frames_round_trip() {
        let frames = vec![
            Frame::Hello {
                tenant: "alice".into(),
                weight: 4,
                priority: 2,
            },
            Frame::HelloOk,
            Frame::Query {
                sql: "SELECT 1 AS one".into(),
            },
            Frame::Batch(vec![1, 2, 3]),
            Frame::Done {
                rows: 42,
                credits: 7,
            },
            Frame::Error("boom".into()),
            Frame::Rejected("too big".into()),
            Frame::Bye,
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for f in &frames {
            assert_eq!(&read_frame(&mut cursor).unwrap(), f);
        }
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ServeError::Disconnected)
        ));
    }

    #[test]
    fn batches_survive_the_wire() {
        let batch = batch_of(vec![
            ("id", Column::from_i64(vec![1, 2, 3])),
            ("name", Column::from_strs(&["a", "b", "c"])),
        ]);
        let decoded = decode_result(&encode_result(&batch)).unwrap();
        assert_eq!(batch.canonical_rows(), decoded.canonical_rows());
    }

    #[test]
    fn truncated_frame_is_a_protocol_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Bye).unwrap();
        buf.truncate(buf.len() - 1);
        // Length prefix promises more bytes than arrive.
        let mut short = std::io::Cursor::new(&buf[..4]);
        assert!(matches!(
            read_frame(&mut short),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn garbage_length_is_rejected() {
        let mut buf = (MAX_FRAME + 1).to_le_bytes().to_vec();
        buf.push(8);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ServeError::Protocol(_))
        ));
    }
}
