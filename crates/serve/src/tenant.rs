//! The session/tenant registry.
//!
//! Every connection declares a tenant in its `Hello` frame; the registry
//! maps tenant names to fair-share weights and priorities. Weights drive
//! the stride scheduler's credit shares (a weight-4 tenant receives 4× the
//! credits of a weight-1 tenant under saturation); priorities gate
//! preemption (a higher-priority query forces lower-priority pipelines to
//! yield their credits at the next batch boundary).

use std::collections::BTreeMap;

/// A tenant declaration: name, fair-share weight, priority class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Registry key; also the trace-lane suffix (`tenant.<name>`).
    pub name: String,
    /// Fair-share weight (≥ 1). Credit grants under saturation converge to
    /// `weight / Σ weights`.
    pub weight: u32,
    /// Priority class; higher preempts lower at batch boundaries.
    pub priority: u8,
}

impl TenantSpec {
    /// A tenant with the given weight at priority 0.
    pub fn new(name: impl Into<String>, weight: u32) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            weight: weight.max(1),
            priority: 0,
        }
    }

    /// Set the priority class.
    pub fn with_priority(mut self, priority: u8) -> TenantSpec {
        self.priority = priority;
        self
    }
}

/// Dense handle into the registry (and the scheduler's tenant table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TenantId(pub usize);

/// Name → tenant table. Insertion is idempotent by name: reconnecting
/// sessions reuse the existing entry (first-registered weight/priority
/// win, so one tenant cannot inflate its share by reconnecting).
#[derive(Debug, Default)]
pub struct TenantRegistry {
    specs: Vec<TenantSpec>,
    by_name: BTreeMap<String, TenantId>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> TenantRegistry {
        TenantRegistry::default()
    }

    /// Register (or look up) a tenant by name.
    pub fn register(&mut self, spec: TenantSpec) -> TenantId {
        if let Some(&id) = self.by_name.get(&spec.name) {
            return id;
        }
        let id = TenantId(self.specs.len());
        self.by_name.insert(spec.name.clone(), id);
        self.specs.push(spec);
        id
    }

    /// Look up a tenant by name.
    pub fn get(&self, name: &str) -> Option<TenantId> {
        self.by_name.get(name).copied()
    }

    /// The spec behind a handle.
    pub fn spec(&self, id: TenantId) -> &TenantSpec {
        &self.specs[id.0]
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Iterate `(id, spec)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (TenantId, &TenantSpec)> {
        self.specs.iter().enumerate().map(|(i, s)| (TenantId(i), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_by_name() {
        let mut reg = TenantRegistry::new();
        let a = reg.register(TenantSpec::new("alice", 2));
        let b = reg.register(TenantSpec::new("bob", 1).with_priority(3));
        let a2 = reg.register(TenantSpec::new("alice", 9));
        assert_eq!(a, a2);
        assert_eq!(reg.spec(a).weight, 2, "first registration wins");
        assert_eq!(reg.spec(b).priority, 3);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get("bob"), Some(b));
        assert_eq!(reg.get("carol"), None);
    }

    #[test]
    fn zero_weight_is_clamped() {
        assert_eq!(TenantSpec::new("t", 0).weight, 1);
    }
}
