//! The cross-query fair-share credit scheduler.
//!
//! The unit of arbitration is the **credit**: permission to push one batch
//! through a pipeline (§7.1's flow-control token, lifted from a single
//! fabric edge to the whole engine). In-flight queries compete for a fixed
//! pool of `slots` credits — the device time the host can actually serve
//! concurrently — and the scheduler hands them out by **stride
//! scheduling**: each tenant carries a *pass* value advanced by
//! `STRIDE_SCALE / weight` per credit, and the next credit always goes to
//! the eligible tenant with the smallest pass. Under saturation the grant
//! counts converge to the weight vector (within one quantum per tenant) and
//! no tenant starves: a waiting tenant's pass stays put while everyone
//! else's grows, so it eventually becomes the minimum.
//!
//! Priorities sit above fairness: credits are only offered to the highest
//! priority class with waiting queries, and a running lower-priority query
//! observes [`FairScheduler::should_yield`] at its next batch boundary and
//! returns its unused credits ([`FairScheduler::yield_credits`]) — that is
//! the preemption point; batches are never interrupted mid-flight.
//!
//! Every grant and return moves through a
//! [`df_core::scheduler::CreditLedger`], whose conservation invariant
//! (`granted == returned` once the system drains) the fault-injection
//! suite checks after disconnects, verify failures and admission
//! rejections. Every decision is appended to a log so harness runs can be
//! compared byte-for-byte.

use std::collections::BTreeMap;

use df_core::scheduler::CreditLedger;

use crate::tenant::{TenantId, TenantRegistry, TenantSpec};

/// Pass increment for a weight-1 tenant; a weight-w tenant advances by
/// `STRIDE_SCALE / w` per credit.
pub const STRIDE_SCALE: u64 = 1 << 20;

/// Handle to one in-flight query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct QueryId(pub u64);

#[derive(Debug)]
struct QueryState {
    tenant: TenantId,
    /// Credits granted but not yet attached to a batch.
    held: u64,
    /// Whether a credit is currently attached to an in-flight batch.
    in_use: bool,
    granted_total: u64,
    finished: bool,
}

/// The multi-query scheduler. Single-threaded state machine; the server
/// wraps it in a mutex + condvar, the harness drives it on the sim clock.
#[derive(Debug)]
pub struct FairScheduler {
    registry: TenantRegistry,
    /// Per-tenant stride pass, parallel to the registry.
    passes: Vec<u64>,
    queries: BTreeMap<u64, QueryState>,
    next_query: u64,
    /// Queries waiting for a grant, in arrival order.
    waiting: Vec<u64>,
    /// Credits currently out (held + in use), bounded by `slots`.
    outstanding: u64,
    slots: u64,
    quantum: u64,
    ledger: CreditLedger,
    decisions: Vec<String>,
}

impl FairScheduler {
    /// A scheduler arbitrating `slots` concurrent credits, granting up to
    /// `quantum` credits per pick (a window a preempted query can yield).
    pub fn new(slots: u64, quantum: u64) -> FairScheduler {
        FairScheduler {
            registry: TenantRegistry::new(),
            passes: Vec::new(),
            queries: BTreeMap::new(),
            next_query: 0,
            waiting: Vec::new(),
            outstanding: 0,
            slots: slots.max(1),
            quantum: quantum.max(1),
            ledger: CreditLedger::new(),
            decisions: Vec::new(),
        }
    }

    /// Register (or look up) a tenant. New tenants start at the current
    /// minimum pass so they neither starve nor monopolize on arrival.
    pub fn register_tenant(&mut self, spec: TenantSpec) -> TenantId {
        let before = self.registry.len();
        let id = self.registry.register(spec);
        if self.registry.len() > before {
            let start = self.passes.iter().copied().min().unwrap_or(0);
            self.passes.push(start);
            let s = self.registry.spec(id);
            self.decisions.push(format!(
                "register tenant={} weight={} priority={}",
                s.name, s.weight, s.priority
            ));
        }
        id
    }

    /// The tenant registry.
    pub fn registry(&self) -> &TenantRegistry {
        &self.registry
    }

    /// Start a query for `tenant`. Logs preemption notices against every
    /// active lower-priority query holding credits — those queries will
    /// observe [`FairScheduler::should_yield`] at their next batch
    /// boundary.
    pub fn begin_query(&mut self, tenant: TenantId) -> QueryId {
        let id = self.next_query;
        self.next_query += 1;
        let priority = self.registry.spec(tenant).priority;
        let victims: Vec<u64> = self
            .queries
            .iter()
            .filter(|(_, q)| {
                !q.finished
                    && (q.held > 0 || q.in_use)
                    && self.registry.spec(q.tenant).priority < priority
            })
            .map(|(&qid, _)| qid)
            .collect();
        self.queries.insert(
            id,
            QueryState {
                tenant,
                held: 0,
                in_use: false,
                granted_total: 0,
                finished: false,
            },
        );
        self.decisions.push(format!(
            "start q{id} tenant={}",
            self.registry.spec(tenant).name
        ));
        for v in victims {
            self.decisions.push(format!("preempt q{v} by q{id}"));
        }
        QueryId(id)
    }

    /// Ask for credits at a batch boundary: the query joins the wait queue
    /// (unless it already holds credits) and a dispense round runs. Check
    /// [`FairScheduler::held`] afterwards; 0 means the caller must wait
    /// for a future round (server: condvar; harness: a later sim event).
    pub fn request(&mut self, q: QueryId) {
        let Some(state) = self.queries.get(&q.0) else {
            return;
        };
        if !state.finished && state.held == 0 && !self.waiting.contains(&q.0) {
            self.waiting.push(q.0);
        }
        self.dispense();
    }

    /// Credits the query holds (granted, not yet attached to a batch).
    pub fn held(&self, q: QueryId) -> u64 {
        self.queries.get(&q.0).map_or(0, |s| s.held)
    }

    /// True while a batch (with its credit) is in flight for the query.
    pub fn in_flight(&self, q: QueryId) -> bool {
        self.queries.get(&q.0).is_some_and(|s| s.in_use)
    }

    /// Attach one held credit to a batch about to execute.
    ///
    /// # Panics
    /// Panics when the query holds no credit or already has a batch in
    /// flight — both are caller bugs.
    pub fn use_credit(&mut self, q: QueryId) {
        let state = self.queries.get_mut(&q.0).expect("unknown query");
        assert!(state.held > 0, "use_credit without a held credit");
        assert!(!state.in_use, "one batch in flight per pipeline");
        state.held -= 1;
        state.in_use = true;
    }

    /// The batch finished: its credit returns to the pool (and the
    /// ledger), then a dispense round runs.
    pub fn complete_batch(&mut self, q: QueryId) {
        let state = self.queries.get_mut(&q.0).expect("unknown query");
        assert!(state.in_use, "complete_batch without a batch in flight");
        state.in_use = false;
        let tenant = self.registry.spec(state.tenant).name.clone();
        self.ledger.repay(&tenant, 1);
        self.outstanding -= 1;
        self.dispense();
    }

    /// True when a strictly higher-priority query is waiting for credits —
    /// the preemption signal a lower-priority pipeline checks at each batch
    /// boundary.
    pub fn should_yield(&self, q: QueryId) -> bool {
        let Some(state) = self.queries.get(&q.0) else {
            return false;
        };
        let mine = self.registry.spec(state.tenant).priority;
        self.waiting.iter().any(|other| {
            self.queries
                .get(other)
                .is_some_and(|o| !o.finished && self.registry.spec(o.tenant).priority > mine)
        })
    }

    /// Give back all held (unused) credits — the preemption yield at a
    /// batch boundary. Returns how many were yielded.
    pub fn yield_credits(&mut self, q: QueryId) -> u64 {
        let state = self.queries.get_mut(&q.0).expect("unknown query");
        let n = state.held;
        if n == 0 {
            return 0;
        }
        state.held = 0;
        let tenant = self.registry.spec(state.tenant).name.clone();
        self.ledger.repay(&tenant, n);
        self.outstanding -= n;
        self.decisions.push(format!("yield q{} n={n}", q.0));
        self.dispense();
        n
    }

    /// Query is done (or aborted): return any in-flight and held credits,
    /// leave the wait queue, and run a dispense round. Idempotent.
    pub fn finish_query(&mut self, q: QueryId) {
        let Some(state) = self.queries.get_mut(&q.0) else {
            return;
        };
        if state.finished {
            return;
        }
        state.finished = true;
        let tenant = self.registry.spec(state.tenant).name.clone();
        let mut giving_back = state.held;
        if state.in_use {
            giving_back += 1;
            state.in_use = false;
        }
        state.held = 0;
        if giving_back > 0 {
            self.ledger.repay(&tenant, giving_back);
            self.outstanding -= giving_back;
        }
        self.waiting.retain(|&w| w != q.0);
        self.decisions.push(format!("finish q{}", q.0));
        self.dispense();
    }

    /// Append an external decision (admission verdicts) to the log so the
    /// harness digest covers the whole control plane.
    pub fn note(&mut self, msg: impl Into<String>) {
        self.decisions.push(msg.into());
    }

    /// Total credits ever granted to the query.
    pub fn query_credits(&self, q: QueryId) -> u64 {
        self.queries.get(&q.0).map_or(0, |s| s.granted_total)
    }

    /// The credit ledger (conservation checks, fairness measurements).
    pub fn ledger(&self) -> &CreditLedger {
        &self.ledger
    }

    /// Credits ever granted, per tenant name.
    pub fn granted_by_tenant(&self) -> BTreeMap<String, u64> {
        self.ledger
            .accounts()
            .map(|(t, a)| (t.to_string(), a.granted))
            .collect()
    }

    /// The decision log, one line per decision, in order.
    pub fn decisions(&self) -> &[String] {
        &self.decisions
    }

    /// The decision log as one string — the harness determinism digest.
    pub fn decision_digest(&self) -> String {
        self.decisions.join("\n")
    }

    /// One stride dispense round: hand out credits while slots remain and
    /// queries wait. Only the highest waiting priority class is served;
    /// within it the tenant with the smallest (pass, id) wins, and its
    /// earliest-arrived query receives up to `quantum` credits.
    fn dispense(&mut self) {
        loop {
            if self.outstanding >= self.slots || self.waiting.is_empty() {
                return;
            }
            let top = self
                .waiting
                .iter()
                .filter_map(|qid| self.queries.get(qid))
                .map(|s| self.registry.spec(s.tenant).priority)
                .max()
                .expect("waiting non-empty");
            let winner_tenant = self
                .waiting
                .iter()
                .filter_map(|qid| self.queries.get(qid))
                .filter(|s| self.registry.spec(s.tenant).priority == top)
                .map(|s| s.tenant)
                .min_by_key(|t| (self.passes[t.0], t.0))
                .expect("priority class non-empty");
            let pos = self
                .waiting
                .iter()
                .position(|qid| {
                    self.queries
                        .get(qid)
                        .is_some_and(|s| s.tenant == winner_tenant)
                })
                .expect("winner has a waiting query");
            let qid = self.waiting.remove(pos);
            let n = self.quantum.min(self.slots - self.outstanding);
            let spec = self.registry.spec(winner_tenant);
            let stride = STRIDE_SCALE / u64::from(spec.weight.max(1));
            let name = spec.name.clone();
            self.passes[winner_tenant.0] += stride * n;
            self.ledger.grant(&name, n);
            self.outstanding += n;
            let state = self.queries.get_mut(&qid).expect("waiting query exists");
            state.held += n;
            state.granted_total += n;
            self.decisions
                .push(format!("grant q{qid} tenant={name} n={n}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn saturated_run(weights: &[u32], rounds: usize) -> BTreeMap<String, u64> {
        // Every tenant has one query that immediately re-requests after
        // each batch — permanent saturation with 1 slot, quantum 1.
        let mut sched = FairScheduler::new(1, 1);
        let queries: Vec<QueryId> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let t = sched.register_tenant(TenantSpec::new(format!("t{i}"), w));
                sched.begin_query(t)
            })
            .collect();
        for q in &queries {
            sched.request(*q);
        }
        for _ in 0..rounds {
            let &running = queries
                .iter()
                .find(|q| sched.held(**q) > 0)
                .expect("one query granted");
            sched.use_credit(running);
            sched.request(running); // rejoin the queue before completing
            sched.complete_batch(running);
        }
        for q in &queries {
            sched.finish_query(*q);
        }
        assert!(sched.ledger().check_balanced().is_ok());
        sched.granted_by_tenant()
    }

    #[test]
    fn grants_track_weights_under_saturation() {
        let grants = saturated_run(&[1, 2, 4], 700);
        let total: u64 = grants.values().sum();
        for (i, w) in [1u64, 2, 4].iter().enumerate() {
            let got = grants[&format!("t{i}")] as f64 / total as f64;
            let want = *w as f64 / 7.0;
            assert!(
                (got - want).abs() < 0.02,
                "tenant t{i}: share {got:.3} vs weight share {want:.3}"
            );
        }
    }

    #[test]
    fn higher_priority_query_preempts_and_wins_grants() {
        let mut sched = FairScheduler::new(2, 2);
        let low = sched.register_tenant(TenantSpec::new("low", 1));
        let high = sched.register_tenant(TenantSpec::new("high", 1).with_priority(2));
        let ql = sched.begin_query(low);
        sched.request(ql);
        assert_eq!(sched.held(ql), 2, "low holds the full quantum");
        sched.use_credit(ql); // one batch in flight, one credit held

        let qh = sched.begin_query(high);
        sched.request(qh);
        assert!(sched.should_yield(ql), "high-priority query is waiting");
        assert!(
            sched
                .decisions()
                .iter()
                .any(|d| d.starts_with("preempt q0")),
            "preemption logged: {:?}",
            sched.decisions()
        );
        // Low-priority pipeline reaches its batch boundary: yields its
        // unused credit, finishes the in-flight one.
        assert_eq!(sched.yield_credits(ql), 1);
        // The yielded credit went straight to the high-priority query (it
        // left the wait queue with it, so only one was dispensed).
        assert_eq!(sched.held(qh), 1);
        sched.complete_batch(ql);
        assert_eq!(sched.held(ql), 0, "low gets nothing back while high runs");
        sched.finish_query(ql);
        sched.finish_query(qh);
        assert!(sched.ledger().check_balanced().is_ok());
    }

    #[test]
    fn finish_is_idempotent_and_conserving() {
        let mut sched = FairScheduler::new(4, 2);
        let t = sched.register_tenant(TenantSpec::new("a", 1));
        let q = sched.begin_query(t);
        sched.request(q);
        sched.use_credit(q);
        sched.finish_query(q); // returns in-flight + held
        sched.finish_query(q); // no-op
        assert!(sched.ledger().check_balanced().is_ok());
        assert_eq!(sched.ledger().granted("a"), 2);
    }
}
