#![deny(unsafe_code)]
#![warn(missing_docs)]
//! The serving layer: a multi-tenant query front-end over the pipeline-graph
//! engine.
//!
//! The paper's data-flow architecture only pays off when many queries
//! contend for the same devices and fabric links; this crate supplies the
//! missing multi-query front-end:
//!
//! - [`protocol`] — a simple length-prefixed wire protocol (frames over any
//!   byte stream; batches travel wire-encoded via `df_codec::wire`);
//! - [`tenant`] — the session/tenant registry: name, fair-share weight,
//!   priority;
//! - [`sched`] — the cross-query scheduler: per-tenant **weighted fair
//!   share** over credit grants (stride scheduling), priority preemption at
//!   batch boundaries, and a conservation-checked
//!   [`df_core::scheduler::CreditLedger`];
//! - [`admission`] — admission control that rejects or queues queries whose
//!   placed graphs exceed the flow-model link capacity;
//! - [`dispatch`] — the query execution pipeline (plan → compile → verify +
//!   deadlock-check → admit → gated execute → merge/stream), in the
//!   dispatcher/merger shape;
//! - [`server`] — a TCP server (and client) speaking the protocol, one
//!   session thread per connection, all sharing one scheduler;
//! - [`harness`] — a `SimRng`-seeded deterministic concurrency harness that
//!   replays N-tenant query mixes on the **sim clock**, so scheduler
//!   decisions, per-tenant latency histograms, and trace bytes are
//!   bit-reproducible in CI.

pub mod admission;
pub mod dispatch;
pub mod harness;
pub mod protocol;
pub mod sched;
pub mod server;
pub mod tenant;

use std::fmt;

/// Errors from the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// Engine-side failure (parse, plan, execute).
    Engine(df_core::error::EngineError),
    /// The compiled graph failed static verification or deadlock analysis.
    PlanRejected(String),
    /// Admission control rejected the query.
    Rejected(String),
    /// Wire / socket failure.
    Io(std::io::Error),
    /// Malformed frame or protocol-state violation.
    Protocol(String),
    /// A server-side failure reported to a client over the wire.
    Remote(String),
    /// The peer went away mid-stream.
    Disconnected,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "engine: {e}"),
            ServeError::PlanRejected(msg) => write!(f, "plan rejected: {msg}"),
            ServeError::Rejected(msg) => write!(f, "admission rejected: {msg}"),
            ServeError::Io(e) => write!(f, "io: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ServeError::Remote(msg) => write!(f, "server: {msg}"),
            ServeError::Disconnected => write!(f, "peer disconnected"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<df_core::error::EngineError> for ServeError {
    fn from(e: df_core::error::EngineError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Result alias for serving-layer operations.
pub type Result<T> = std::result::Result<T, ServeError>;
