//! `df-serve`: the multi-tenant query server.
//!
//! ```text
//! df-serve [--port P]          start a server with the demo table, print
//!                              the bound address, serve until killed
//! df-serve harness [--seed S]  run the deterministic concurrency harness
//!                              and print its report
//! ```
//!
//! Quick start (two concurrent clients) — see README.md §Serving.

use std::sync::Arc;

use df_core::session::Session;
use df_data::batch::batch_of;
use df_data::Column;
use df_serve::dispatch::{QueryService, ServiceConfig};
use df_serve::harness::{run, TenantLoad, Workload};
use df_serve::server::serve;
use df_serve::tenant::TenantSpec;

fn demo_service() -> QueryService {
    let session = Session::in_memory().expect("in-memory session");
    let n = 10_000usize;
    session
        .create_table(
            "orders",
            &[batch_of(vec![
                ("id", Column::from_i64((0..n as i64).collect())),
                (
                    "region",
                    Column::from_strs(
                        &(0..n)
                            .map(|i| ["eu", "us", "ap"][i % 3].to_string())
                            .collect::<Vec<_>>(),
                    ),
                ),
                (
                    "amount",
                    Column::from_f64((0..n).map(|i| (i % 100) as f64).collect()),
                ),
            ])],
        )
        .expect("demo table");
    QueryService::new(session, ServiceConfig::default())
}

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn run_harness(seed: u64) {
    let report = run(&Workload {
        tenants: vec![
            TenantLoad::new(TenantSpec::new("bronze", 1), 16),
            TenantLoad::new(TenantSpec::new("silver", 2), 16),
            TenantLoad::new(TenantSpec::new("gold", 4), 16),
        ],
        seed,
        slots: 2,
        quantum: 1,
    });
    println!("harness seed {seed}: makespan {}", report.makespan);
    for (name, s) in &report.tenants {
        println!(
            "  {name}: completed={} credits={} p50={}ns p99={}ns credit-wait={}ns",
            s.completed,
            s.credits,
            s.latency.quantile(0.5),
            s.latency.quantile(0.99),
            s.credit_wait_nanos,
        );
    }
    println!(
        "decision log: {} lines, digest length {} bytes",
        report.decisions.lines().count(),
        report.decisions.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("harness") {
        run_harness(flag_value(&args, "--seed").unwrap_or(42));
        return;
    }
    let port = flag_value(&args, "--port").unwrap_or(0) as u16;
    let service = Arc::new(demo_service());
    let handle = serve(service, port).expect("bind server");
    println!("df-serve listening on {}", handle.addr());
    println!("demo table: orders(id BIGINT, region TEXT, amount DOUBLE), 10000 rows");
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
