//! Admission control against the flow-model link capacity.
//!
//! Before a query runs, its placed graph is lowered to flow-simulator
//! pipeline specs ([`df_core::pipeline::PipelineGraph::to_flow_specs`]) and
//! each inter-stage hop is charged to the physical links of its route —
//! bytes chained through the stage selectivities, exactly the byte model
//! FlowSim replays. The controller compares that demand against each
//! link's capacity over a fixed scheduling window (`bandwidth × window`):
//!
//! - a query whose demand **alone** exceeds some link's window capacity can
//!   never run without starving everyone else — **rejected**;
//! - a query that fits alone but not alongside the currently admitted set
//!   is **queued** (FIFO) and admitted when capacity releases;
//! - otherwise it is **admitted** and its demand stays committed until
//!   [`AdmissionController::release`].

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use df_fabric::flow::PipelineSpec;
use df_fabric::link::LinkId;
use df_fabric::topology::Topology;
use df_sim::SimDuration;

/// Handle for one admitted or queued query's capacity reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Ticket(pub u64);

/// Outcome of offering a query to the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Capacity reserved; run now, `release` when done.
    Admitted(Ticket),
    /// Fits alone but not alongside the admitted set; waits in FIFO order.
    Queued(Ticket),
    /// Can never fit (or the queue is full). The message names the reason.
    Rejected(String),
}

/// Per-link byte demand of one query over the scheduling window.
pub type LinkDemand = BTreeMap<LinkId, u64>;

/// The admission controller: committed per-link bytes plus a bounded FIFO
/// of queries waiting for capacity.
#[derive(Debug)]
pub struct AdmissionController {
    topology: Arc<Topology>,
    window: SimDuration,
    /// Bytes committed per link by currently admitted queries.
    committed: BTreeMap<LinkId, u64>,
    /// Demand behind each live (admitted) ticket.
    admitted: BTreeMap<u64, LinkDemand>,
    queue: VecDeque<(u64, LinkDemand)>,
    max_queue: usize,
    next_ticket: u64,
}

impl AdmissionController {
    /// A controller over `topology` with a 100 ms scheduling window and a
    /// queue of at most 32 waiting queries.
    pub fn new(topology: Arc<Topology>) -> AdmissionController {
        AdmissionController::with_window(topology, SimDuration::from_secs_f64(0.1), 32)
    }

    /// A controller with an explicit capacity window and queue bound.
    pub fn with_window(
        topology: Arc<Topology>,
        window: SimDuration,
        max_queue: usize,
    ) -> AdmissionController {
        AdmissionController {
            topology,
            window,
            committed: BTreeMap::new(),
            admitted: BTreeMap::new(),
            queue: VecDeque::new(),
            max_queue,
            next_ticket: 0,
        }
    }

    /// A link's byte capacity over the scheduling window.
    pub fn link_capacity(&self, link: LinkId) -> u64 {
        let bw = self.topology.link(link).tech.bandwidth().as_bytes_per_sec();
        (bw * self.window.as_secs_f64()) as u64
    }

    /// Per-link byte demand of a query's flow specs: source bytes chained
    /// through each stage's selectivity, charged to every link on the route
    /// between consecutive stages' devices. Returns an error naming the
    /// hop when two placed devices have no route.
    pub fn demand_of(&self, specs: &[PipelineSpec]) -> Result<LinkDemand, String> {
        let mut demand = LinkDemand::new();
        for spec in specs {
            let mut bytes = spec.source_bytes as f64;
            for pair in spec.stages.windows(2) {
                bytes *= pair[0].selectivity;
                let (from, to) = (pair[0].device, pair[1].device);
                let route = self.topology.route(from, to).ok_or_else(|| {
                    format!("pipeline '{}': no route from {from} to {to}", spec.name)
                })?;
                let hop = bytes.round() as u64;
                for link in &route.links {
                    *demand.entry(*link).or_insert(0) += hop;
                }
            }
        }
        Ok(demand)
    }

    /// Offer a query's demand. See the module docs for the three verdicts.
    pub fn offer(&mut self, demand: LinkDemand) -> Verdict {
        for (&link, &bytes) in &demand {
            let cap = self.link_capacity(link);
            if bytes > cap {
                return Verdict::Rejected(format!(
                    "demand {bytes} B exceeds capacity {cap} B on link {} within the {} window",
                    self.topology.link(link).tech.name(),
                    self.window,
                ));
            }
        }
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        // FIFO: nobody overtakes a queued query.
        if self.queue.is_empty() && self.fits(&demand) {
            self.commit(ticket.0, demand);
            Verdict::Admitted(ticket)
        } else if self.queue.len() >= self.max_queue {
            Verdict::Rejected(format!(
                "admission queue full ({} waiting)",
                self.queue.len()
            ))
        } else {
            self.queue.push_back((ticket.0, demand));
            Verdict::Queued(ticket)
        }
    }

    /// Release an admitted query's reservation (or drop it from the queue),
    /// then admit as many queued queries as now fit, in FIFO order.
    /// Returns the tickets admitted by this release.
    pub fn release(&mut self, ticket: Ticket) -> Vec<Ticket> {
        if let Some(demand) = self.admitted.remove(&ticket.0) {
            for (link, bytes) in demand {
                let slot = self.committed.get_mut(&link).expect("committed link");
                *slot -= bytes;
            }
        } else {
            self.queue.retain(|(t, _)| *t != ticket.0);
        }
        let mut admitted = Vec::new();
        while let Some((t, demand)) = self.queue.front() {
            if !self.fits(demand) {
                break;
            }
            let (t, demand) = (*t, demand.clone());
            self.queue.pop_front();
            self.commit(t, demand);
            admitted.push(Ticket(t));
        }
        admitted
    }

    /// Whether a ticket currently holds committed capacity.
    pub fn is_admitted(&self, ticket: Ticket) -> bool {
        self.admitted.contains_key(&ticket.0)
    }

    /// Number of queries currently holding capacity.
    pub fn admitted_count(&self) -> usize {
        self.admitted.len()
    }

    /// Number of queries waiting in the queue.
    pub fn queued_count(&self) -> usize {
        self.queue.len()
    }

    fn fits(&self, demand: &LinkDemand) -> bool {
        demand.iter().all(|(&link, &bytes)| {
            self.committed.get(&link).copied().unwrap_or(0) + bytes <= self.link_capacity(link)
        })
    }

    fn commit(&mut self, ticket: u64, demand: LinkDemand) {
        for (&link, &bytes) in &demand {
            *self.committed.entry(link).or_insert(0) += bytes;
        }
        self.admitted.insert(ticket, demand);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_fabric::device::OpClass;
    use df_fabric::flow::StageSpec;

    fn controller() -> (AdmissionController, Vec<df_fabric::device::DeviceId>) {
        let topo = Topology::conventional_server();
        let devices: Vec<_> = topo.devices().iter().map(|d| d.id).collect();
        (
            AdmissionController::with_window(Arc::new(topo), SimDuration::from_secs_f64(0.001), 2),
            devices,
        )
    }

    fn spec(devices: &[df_fabric::device::DeviceId], bytes: u64) -> PipelineSpec {
        // A cross-device hop (ssd → cpu) so the demand lands on a real link.
        PipelineSpec::new(
            "q",
            vec![
                StageSpec::new(devices[0], OpClass::Filter, 1.0),
                StageSpec::new(devices[1], OpClass::AggregateFinal, 0.1),
            ],
            bytes,
        )
    }

    #[test]
    fn oversized_query_is_rejected_outright() {
        let (mut ac, devices) = controller();
        let demand = ac.demand_of(&[spec(&devices, u64::MAX / 4)]).unwrap();
        assert!(matches!(ac.offer(demand), Verdict::Rejected(_)));
    }

    #[test]
    fn codec_priced_demand_admits_where_plain_queues() {
        // The same placed plan lowered twice: plain, and with a 0.25-ratio
        // codec pair on its fabric edge. The codec's Compress stage scales
        // the crossing's link bytes, so a query that cannot share the link
        // with a plain copy of itself fits alongside the coded one.
        use df_codec::edge::EdgeEncoding;
        use df_core::logical::AggCall;
        use df_core::ops::AggMode;
        use df_core::physical::{PhysNode, PhysicalPlan};
        use df_core::pipeline::{PipelineGraph, DEFAULT_QUEUE_CAPACITY};
        use df_data::batch::batch_of;
        use df_data::{Column, DataType, Field, Schema};
        use df_fabric::topology::DisaggregatedConfig;

        let topo = Arc::new(Topology::disaggregated(&DisaggregatedConfig::default()));
        let nic = topo.expect_device("compute0.nic");
        let cpu = topo.expect_device("compute0.cpu");
        let batch = batch_of(vec![("v", Column::from_i64((0..20_000i64).collect()))]);
        let out_schema = Schema::new(vec![Field::nullable("n", DataType::Int64)]).into_ref();
        let plan = PhysicalPlan::new(
            PhysNode::Aggregate {
                input: Box::new(PhysNode::Values {
                    schema: batch.schema().clone(),
                    batches: vec![batch],
                    device: Some(nic),
                }),
                group_by: vec![],
                aggs: vec![AggCall::count_star("n")],
                mode: AggMode::Final,
                final_schema: out_schema,
                device: Some(cpu),
            },
            "admission",
        );
        let mut graph = PipelineGraph::compile(&plan, None, Some(&topo), DEFAULT_QUEUE_CAPACITY);
        let plain_specs = graph.to_flow_specs(cpu, "q.plain").unwrap();
        let eid = graph
            .edges
            .iter()
            .position(|e| e.crosses_devices())
            .expect("nic -> cpu fabric edge");
        graph.set_edge_encoding(eid, EdgeEncoding::ColumnarLz, 0.25);
        let codec_specs = graph.to_flow_specs(cpu, "q.codec").unwrap();

        // Size the window so one plain query fills 2/3 of the bottleneck.
        let probe = AdmissionController::new(topo.clone());
        let plain = probe.demand_of(&plain_specs).unwrap();
        let codec = probe.demand_of(&codec_specs).unwrap();
        let (&bottleneck, &plain_bytes) =
            plain.iter().max_by_key(|(_, &b)| b).expect("link demand");
        assert!(
            codec[&bottleneck] <= plain_bytes / 2,
            "codec demand {} must be at most half of plain {}",
            codec[&bottleneck],
            plain_bytes
        );
        let bw = topo.link(bottleneck).tech.bandwidth().as_bytes_per_sec();
        let window = SimDuration::from_secs_f64(plain_bytes as f64 * 1.5 / bw);

        // Plain cannot share the link with itself...
        let mut ac = AdmissionController::with_window(topo.clone(), window, 4);
        assert!(matches!(ac.offer(plain.clone()), Verdict::Admitted(_)));
        assert!(matches!(ac.offer(plain.clone()), Verdict::Queued(_)));

        // ...but the codec-priced copy fits alongside it.
        let mut ac = AdmissionController::with_window(topo.clone(), window, 4);
        assert!(matches!(ac.offer(plain.clone()), Verdict::Admitted(_)));
        assert!(matches!(ac.offer(codec.clone()), Verdict::Admitted(_)));
    }

    #[test]
    fn saturation_queues_then_release_admits_fifo() {
        let (mut ac, devices) = controller();
        // Each query takes more than half a link's window capacity, so only
        // one fits at a time.
        let link_cap = ac.link_capacity(LinkId(0));
        let demand = ac.demand_of(&[spec(&devices, link_cap * 3 / 4)]).unwrap();
        assert!(!demand.is_empty(), "cross-device hop must touch links");

        let first = match ac.offer(demand.clone()) {
            Verdict::Admitted(t) => t,
            v => panic!("expected admit, got {v:?}"),
        };
        let second = match ac.offer(demand.clone()) {
            Verdict::Queued(t) => t,
            v => panic!("expected queue, got {v:?}"),
        };
        let third = match ac.offer(demand.clone()) {
            Verdict::Queued(t) => t,
            v => panic!("expected queue, got {v:?}"),
        };
        // Queue bound is 2: the fourth is rejected.
        assert!(matches!(ac.offer(demand.clone()), Verdict::Rejected(_)));

        assert_eq!(ac.release(first), vec![second]);
        assert_eq!(ac.release(second), vec![third]);
        assert_eq!(ac.release(third), vec![]);
        assert_eq!(ac.admitted_count(), 0);
        assert_eq!(ac.queued_count(), 0);
    }
}
