//! The deterministic concurrency harness: N-tenant query mixes replayed on
//! the **sim clock**.
//!
//! Threads and wall clocks make concurrency tests flaky; this harness
//! removes both. A [`Workload`] describes each tenant's query mix (count,
//! arrival process, batches per query, per-batch service time); a single
//! [`df_sim::SimRng`] seed fixes every draw; and a discrete-event loop
//! drives the *real* [`crate::sched::FairScheduler`] — the same state
//! machine the TCP server locks — over simulated time. Two runs with the
//! same seed produce byte-identical scheduler decision logs, per-tenant
//! latency histograms, and trace timelines, so CI can assert on all three.
//!
//! Per-tenant trace lanes record a span per batch, a `credit-wait` span
//! whenever a query sits without credits, and a `preempt` instant when a
//! query yields to a higher-priority arrival — the exact artifacts the
//! golden-trace suite pins.

use std::collections::BTreeMap;

use df_sim::metrics::Histogram;
use df_sim::trace::Tracer;
use df_sim::{SimDuration, SimRng, SimTime};

use crate::sched::{FairScheduler, QueryId};
use crate::tenant::TenantSpec;

/// One tenant's slice of the workload.
#[derive(Debug, Clone)]
pub struct TenantLoad {
    /// Name, weight, priority.
    pub spec: TenantSpec,
    /// Queries this tenant submits.
    pub queries: usize,
    /// Mean inter-arrival time (exponential draws).
    pub mean_interarrival: SimDuration,
    /// Batches per query, drawn uniformly from this inclusive range.
    pub batches: (u64, u64),
    /// Mean per-batch service time (exponential draws).
    pub mean_service: SimDuration,
}

impl TenantLoad {
    /// A load of `queries` queries with 4–8 batches each, 1 ms mean
    /// inter-arrival, 200 µs mean service.
    pub fn new(spec: TenantSpec, queries: usize) -> TenantLoad {
        TenantLoad {
            spec,
            queries,
            mean_interarrival: SimDuration::from_secs_f64(1e-3),
            batches: (4, 8),
            mean_service: SimDuration::from_secs_f64(200e-6),
        }
    }
}

/// A complete harness workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The tenants and their loads.
    pub tenants: Vec<TenantLoad>,
    /// RNG seed fixing every draw.
    pub seed: u64,
    /// Scheduler slots (concurrent credits).
    pub slots: u64,
    /// Scheduler quantum (credits per pick).
    pub quantum: u64,
}

/// Per-tenant outcome of a harness run.
#[derive(Debug)]
pub struct TenantStats {
    /// Queries completed.
    pub completed: u64,
    /// Credits granted (the fairness measure).
    pub credits: u64,
    /// Query latency histogram (arrival → completion), nanoseconds.
    pub latency: Histogram,
    /// Total time queries spent waiting for credits, nanoseconds.
    pub credit_wait_nanos: u64,
}

/// Everything one harness run produced.
#[derive(Debug)]
pub struct HarnessReport {
    /// Scheduler decision log, one line per decision.
    pub decisions: String,
    /// Per-tenant stats, keyed by tenant name.
    pub tenants: BTreeMap<String, TenantStats>,
    /// The sim-lane timeline (byte-identical across same-seed runs).
    pub timeline: String,
    /// When the last query completed.
    pub makespan: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A tenant's next query arrives.
    Arrive { tenant: usize },
    /// A query's in-flight batch completes.
    BatchDone { query: u64 },
}

struct LiveQuery {
    tenant: usize,
    qid: QueryId,
    arrival: SimTime,
    remaining: u64,
    /// Set while the query sits without credits (credit-wait span start).
    waiting_since: Option<SimTime>,
    /// Set while a batch is in flight.
    running: bool,
}

/// Run a workload to completion on the sim clock.
pub fn run(workload: &Workload) -> HarnessReport {
    let mut rng = SimRng::new(workload.seed);
    let mut sched = FairScheduler::new(workload.slots, workload.quantum);
    let tracer = Tracer::new();

    let tenant_ids: Vec<_> = workload
        .tenants
        .iter()
        .map(|t| sched.register_tenant(t.spec.clone()))
        .collect();
    let lanes: Vec<_> = workload
        .tenants
        .iter()
        .map(|t| tracer.tenant_lane(&t.spec.name))
        .collect();
    let mut stats: BTreeMap<String, TenantStats> = workload
        .tenants
        .iter()
        .map(|t| {
            (
                t.spec.name.clone(),
                TenantStats {
                    completed: 0,
                    credits: 0,
                    latency: Histogram::exponential(40),
                    credit_wait_nanos: 0,
                },
            )
        })
        .collect();

    // Event queue keyed by (time, seq): ties break deterministically in
    // insertion order.
    let mut events: BTreeMap<(u64, u64), Event> = BTreeMap::new();
    let mut seq = 0u64;
    let push = |events: &mut BTreeMap<(u64, u64), Event>, seq: &mut u64, at: SimTime, e| {
        events.insert((at.nanos(), *seq), e);
        *seq += 1;
    };

    // Seed each tenant's first arrival.
    let mut remaining_arrivals: Vec<usize> = workload.tenants.iter().map(|t| t.queries).collect();
    for (i, t) in workload.tenants.iter().enumerate() {
        if t.queries > 0 {
            let dt = rng.exponential(t.mean_interarrival.as_secs_f64());
            push(
                &mut events,
                &mut seq,
                SimTime::ZERO + SimDuration::from_secs_f64(dt),
                Event::Arrive { tenant: i },
            );
        }
    }

    let mut live: BTreeMap<u64, LiveQuery> = BTreeMap::new();
    let mut makespan = SimTime::ZERO;

    while let Some((&(nanos, _), _)) = events.iter().next() {
        let key = *events.keys().next().expect("non-empty");
        let event = events.remove(&key).expect("present");
        let now = SimTime(nanos);
        makespan = now;
        match event {
            Event::Arrive { tenant } => {
                remaining_arrivals[tenant] -= 1;
                let load = &workload.tenants[tenant];
                let qid = sched.begin_query(tenant_ids[tenant]);
                let batches = rng.range_inclusive(load.batches.0.max(1), load.batches.1.max(1));
                tracer.instant_at_with(
                    lanes[tenant],
                    "arrive",
                    now,
                    &[("query", qid.0), ("batches", batches)],
                );
                live.insert(
                    qid.0,
                    LiveQuery {
                        tenant,
                        qid,
                        arrival: now,
                        remaining: batches,
                        waiting_since: Some(now),
                        running: false,
                    },
                );
                sched.request(qid);
                if remaining_arrivals[tenant] > 0 {
                    let dt = rng.exponential(load.mean_interarrival.as_secs_f64());
                    push(
                        &mut events,
                        &mut seq,
                        now + SimDuration::from_secs_f64(dt),
                        Event::Arrive { tenant },
                    );
                }
            }
            Event::BatchDone { query } => {
                let q = live.get_mut(&query).expect("live query");
                q.running = false;
                q.remaining -= 1;
                sched.complete_batch(q.qid);
                if q.remaining == 0 {
                    let tenant = q.tenant;
                    let qid = q.qid;
                    let arrival = q.arrival;
                    live.remove(&query);
                    let credits = sched.query_credits(qid);
                    sched.finish_query(qid);
                    tracer.instant_at_with(
                        lanes[tenant],
                        "done",
                        now,
                        &[("query", qid.0), ("credits", credits)],
                    );
                    let name = &workload.tenants[tenant].spec.name;
                    let s = stats.get_mut(name).expect("tenant stats");
                    s.completed += 1;
                    s.latency.record(now.since(arrival).nanos());
                } else if sched.should_yield(q.qid) && sched.held(q.qid) > 0 {
                    // Preemption point: give the held credits back and
                    // re-queue behind the higher-priority query.
                    let tenant = q.tenant;
                    let qid = q.qid;
                    let yielded = sched.yield_credits(qid);
                    tracer.instant_at_with(
                        lanes[tenant],
                        "preempt",
                        now,
                        &[("query", qid.0), ("yielded", yielded)],
                    );
                    q.waiting_since = Some(now);
                    sched.request(qid);
                } else if sched.held(q.qid) == 0 {
                    q.waiting_since = Some(now);
                    sched.request(q.qid);
                }
            }
        }
        // Pump: start a batch on every query that holds a credit and is
        // not already running. BTreeMap order keeps this deterministic.
        let runnable: Vec<u64> = live
            .iter()
            .filter(|(_, q)| !q.running && q.remaining > 0 && sched.held(q.qid) > 0)
            .map(|(&id, _)| id)
            .collect();
        for id in runnable {
            let q = live.get_mut(&id).expect("runnable query");
            let tenant = q.tenant;
            if let Some(since) = q.waiting_since.take() {
                if now.nanos() > since.nanos() {
                    tracer.span_at(
                        lanes[tenant],
                        "credit-wait",
                        since,
                        now,
                        &[("query", q.qid.0)],
                    );
                    let name = &workload.tenants[tenant].spec.name;
                    stats.get_mut(name).expect("tenant stats").credit_wait_nanos +=
                        now.since(since).nanos();
                }
            }
            sched.use_credit(q.qid);
            q.running = true;
            let load = &workload.tenants[tenant];
            let dt = rng.exponential(load.mean_service.as_secs_f64());
            let end = now + SimDuration::from_secs_f64(dt.max(1e-9));
            tracer.span_at(lanes[tenant], "batch", now, end, &[("query", q.qid.0)]);
            push(&mut events, &mut seq, end, Event::BatchDone { query: id });
        }
    }

    debug_assert!(live.is_empty(), "all queries must drain");
    assert!(
        sched.ledger().check_balanced().is_ok(),
        "harness drained with an unbalanced ledger: {:?}",
        sched.ledger().check_balanced()
    );
    for (name, s) in stats.iter_mut() {
        s.credits = sched.ledger().granted(name);
    }
    HarnessReport {
        decisions: sched.decision_digest(),
        tenants: stats,
        timeline: tracer.sim_timeline(),
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(seed: u64) -> Workload {
        Workload {
            tenants: vec![
                TenantLoad::new(TenantSpec::new("bronze", 1), 12),
                TenantLoad::new(TenantSpec::new("silver", 2), 12),
                TenantLoad::new(TenantSpec::new("gold", 4), 12),
            ],
            seed,
            slots: 2,
            quantum: 1,
        }
    }

    #[test]
    fn same_seed_reproduces_bit_for_bit() {
        let a = run(&workload(7));
        let b = run(&workload(7));
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.timeline, b.timeline);
        assert_eq!(a.makespan, b.makespan);
        for (name, sa) in &a.tenants {
            let sb = &b.tenants[name];
            assert_eq!(sa.credits, sb.credits);
            assert_eq!(sa.latency.count(), sb.latency.count());
            assert_eq!(sa.credit_wait_nanos, sb.credit_wait_nanos);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run(&workload(7));
        let b = run(&workload(8));
        assert_ne!(a.timeline, b.timeline, "seeds must matter");
    }

    #[test]
    fn all_queries_complete_and_shares_track_weights() {
        let report = run(&workload(42));
        let total: u64 = report.tenants.values().map(|s| s.credits).sum();
        for (name, s) in &report.tenants {
            assert_eq!(s.completed, 12, "{name} must finish all queries");
            assert!(s.credits > 0);
        }
        // Weighted tenants get more credits under contention (exact ratios
        // are asserted by the saturated property tests; arrivals here are
        // finite so we only require the ordering).
        assert!(total > 0);
        assert!(report.tenants["gold"].credits >= report.tenants["bronze"].credits);
    }
}
