//! The TCP server and client for the serving layer.
//!
//! One accept loop, one session thread per connection, all sessions
//! sharing a single [`QueryService`] (and therefore one fair-share
//! scheduler and one admission controller). Each connection additionally
//! gets a reader thread so a client that disconnects **mid-query** trips
//! the running query's [`CancelToken`]; the gate aborts at the next batch
//! boundary and the scheduler/admission cleanup runs as on any other
//! error path — the credit ledger stays balanced.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use df_data::Batch;

use crate::dispatch::{CancelToken, QueryService};
use crate::protocol::{encode_result, read_frame, write_frame, Frame};
use crate::tenant::TenantSpec;
use crate::{Result, ServeError};

/// Rows per streamed [`Frame::Batch`]; results larger than this arrive in
/// several frames so mid-stream disconnects are observable.
pub const STREAM_CHUNK_ROWS: usize = 1024;

/// Handle to a running server; dropping it (or calling
/// [`ServerHandle::shutdown`]) stops the accept loop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (ephemeral port when started with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept loop. Sessions in
    /// flight finish their current exchange.
    pub fn shutdown(mut self) {
        self.stop_accept_loop();
    }

    fn stop_accept_loop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_accept_loop();
        }
    }
}

/// Start serving `service` on `127.0.0.1:<port>` (0 = ephemeral). Returns
/// once the listener is bound; connections are handled on background
/// threads.
pub fn serve(service: Arc<QueryService>, port: u16) -> Result<ServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let accept = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if stop2.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let service = service.clone();
            std::thread::spawn(move || {
                let _ = handle_connection(stream, service);
            });
        }
    });
    Ok(ServerHandle {
        addr,
        stop,
        accept: Some(accept),
    })
}

/// One session: Hello handshake, then a query loop until Bye/disconnect.
fn handle_connection(stream: TcpStream, service: Arc<QueryService>) -> Result<()> {
    let mut writer = stream.try_clone()?;
    let reader_stream = stream.try_clone()?;
    // The cancel token of the query currently executing on this session,
    // tripped by the reader thread when the peer goes away.
    let current: Arc<Mutex<Option<CancelToken>>> = Arc::new(Mutex::new(None));
    let current_reader = current.clone();
    let (tx, rx) = mpsc::channel::<Frame>();
    let reader = std::thread::spawn(move || {
        let mut r = BufReader::new(reader_stream);
        loop {
            match read_frame(&mut r) {
                Ok(frame) => {
                    let done = matches!(frame, Frame::Bye);
                    if tx.send(frame).is_err() || done {
                        break;
                    }
                }
                Err(_) => {
                    if let Some(cancel) = current_reader.lock().expect("cancel lock").as_ref() {
                        cancel.cancel();
                    }
                    break;
                }
            }
        }
    });

    let outcome = session_loop(&mut writer, &rx, &current, &service);
    drop(rx); // unblocks the reader's send if it is mid-frame
    let _ = stream.shutdown(std::net::Shutdown::Both);
    let _ = reader.join();
    outcome
}

fn session_loop(
    writer: &mut TcpStream,
    rx: &mpsc::Receiver<Frame>,
    current: &Arc<Mutex<Option<CancelToken>>>,
    service: &Arc<QueryService>,
) -> Result<()> {
    let tenant = match rx.recv() {
        Ok(Frame::Hello {
            tenant,
            weight,
            priority,
        }) => {
            let spec = TenantSpec::new(tenant, weight).with_priority(priority);
            let id = service.register_tenant(spec);
            write_frame(writer, &Frame::HelloOk)?;
            id
        }
        Ok(other) => {
            let msg = format!("expected Hello, got {other:?}");
            let _ = write_frame(writer, &Frame::Error(msg.clone()));
            return Err(ServeError::Protocol(msg));
        }
        Err(_) => return Err(ServeError::Disconnected),
    };

    loop {
        let frame = match rx.recv() {
            Ok(f) => f,
            Err(_) => return Err(ServeError::Disconnected),
        };
        match frame {
            Frame::Query { sql } => {
                let cancel = CancelToken::new();
                *current.lock().expect("cancel lock") = Some(cancel.clone());
                let ran = service.run_sql(tenant, &sql, cancel);
                *current.lock().expect("cancel lock") = None;
                match ran {
                    Ok(outcome) => {
                        stream_result(writer, &outcome.result.batch, outcome.credits)?;
                    }
                    Err(ServeError::Rejected(msg)) | Err(ServeError::PlanRejected(msg)) => {
                        write_frame(writer, &Frame::Rejected(msg))?;
                    }
                    Err(ServeError::Disconnected) => return Err(ServeError::Disconnected),
                    Err(e) => {
                        write_frame(writer, &Frame::Error(e.to_string()))?;
                    }
                }
            }
            Frame::Bye => {
                let _ = write_frame(writer, &Frame::Bye);
                return Ok(());
            }
            other => {
                let msg = format!("unexpected frame {other:?}");
                let _ = write_frame(writer, &Frame::Error(msg.clone()));
                return Err(ServeError::Protocol(msg));
            }
        }
    }
}

/// Stream a result batch in [`STREAM_CHUNK_ROWS`]-row frames, then `Done`.
fn stream_result(writer: &mut TcpStream, batch: &Batch, credits: u64) -> Result<()> {
    let rows = batch.rows();
    let mut at = 0usize;
    while at < rows {
        let n = STREAM_CHUNK_ROWS.min(rows - at);
        let chunk = batch.slice(at, n);
        write_frame(writer, &Frame::Batch(encode_result(&chunk)))?;
        at += n;
    }
    write_frame(
        writer,
        &Frame::Done {
            rows: rows as u64,
            credits,
        },
    )
}

/// A result the client assembled from one query exchange.
#[derive(Debug)]
pub struct QueryReply {
    /// The streamed batches, in arrival order.
    pub batches: Vec<Batch>,
    /// Total rows the server reported in `Done`.
    pub rows: u64,
    /// Scheduler credits the query consumed.
    pub credits: u64,
}

impl QueryReply {
    /// All batches concatenated (empty-schema batch when none arrived).
    pub fn batch(&self) -> Option<Batch> {
        if self.batches.is_empty() {
            None
        } else {
            Batch::concat(&self.batches).ok()
        }
    }
}

/// A blocking protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect and perform the Hello handshake.
    pub fn connect(addr: SocketAddr, spec: &TenantSpec) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer,
        };
        write_frame(
            &mut client.writer,
            &Frame::Hello {
                tenant: spec.name.clone(),
                weight: spec.weight,
                priority: spec.priority,
            },
        )?;
        match read_frame(&mut client.reader)? {
            Frame::HelloOk => Ok(client),
            other => Err(ServeError::Protocol(format!(
                "expected HelloOk, got {other:?}"
            ))),
        }
    }

    /// Run one query, collecting all streamed batches.
    pub fn query(&mut self, sql: &str) -> Result<QueryReply> {
        write_frame(&mut self.writer, &Frame::Query { sql: sql.into() })?;
        let mut batches = Vec::new();
        loop {
            match read_frame(&mut self.reader)? {
                Frame::Batch(bytes) => batches.push(crate::protocol::decode_result(&bytes)?),
                Frame::Done { rows, credits } => {
                    return Ok(QueryReply {
                        batches,
                        rows,
                        credits,
                    })
                }
                Frame::Rejected(msg) => return Err(ServeError::Rejected(msg)),
                Frame::Error(msg) => return Err(ServeError::Remote(msg)),
                other => return Err(ServeError::Protocol(format!("unexpected frame {other:?}"))),
            }
        }
    }

    /// Close the session politely.
    pub fn bye(mut self) -> Result<()> {
        write_frame(&mut self.writer, &Frame::Bye)?;
        match read_frame(&mut self.reader) {
            Ok(Frame::Bye) | Err(ServeError::Disconnected) => Ok(()),
            Ok(other) => Err(ServeError::Protocol(format!("expected Bye, got {other:?}"))),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::ServiceConfig;
    use df_core::session::Session;
    use df_data::batch::batch_of;
    use df_data::{Column, Scalar};

    fn service() -> Arc<QueryService> {
        let session = Session::in_memory().unwrap();
        session
            .create_table(
                "orders",
                &[batch_of(vec![
                    ("id", Column::from_i64((0..3000).collect())),
                    (
                        "amount",
                        Column::from_f64((0..3000).map(|i| (i % 90) as f64).collect()),
                    ),
                ])],
            )
            .unwrap();
        Arc::new(QueryService::new(session, ServiceConfig::default()))
    }

    #[test]
    fn two_concurrent_clients_get_correct_results() {
        let handle = serve(service(), 0).unwrap();
        let addr = handle.addr();
        let spawn = |name: &str, weight: u32| {
            let name = name.to_string();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, &TenantSpec::new(name, weight)).unwrap();
                let reply = c
                    .query("SELECT COUNT(*) AS n FROM orders WHERE amount > 10.0")
                    .unwrap();
                let batch = reply.batch().expect("one batch");
                assert!(reply.credits > 0);
                c.bye().unwrap();
                batch.row(0)[0].clone()
            })
        };
        let a = spawn("alice", 1);
        let b = spawn("bob", 4);
        let va = a.join().unwrap();
        let vb = b.join().unwrap();
        assert_eq!(va, vb);
        // amount = id % 90; 79 of every 90 rows exceed 10, plus 19 of the
        // trailing partial cycle of 30.
        assert_eq!(va, Scalar::Int(33 * 79 + 19));
        handle.shutdown();
    }

    #[test]
    fn large_results_stream_in_chunks() {
        let handle = serve(service(), 0).unwrap();
        let mut c = Client::connect(handle.addr(), &TenantSpec::new("bulk", 1)).unwrap();
        let reply = c.query("SELECT id FROM orders").unwrap();
        assert_eq!(reply.rows, 3000);
        assert!(
            reply.batches.len() >= 2,
            "3000 rows must span several {STREAM_CHUNK_ROWS}-row frames"
        );
        c.bye().unwrap();
        handle.shutdown();
    }

    #[test]
    fn bad_sql_reports_error_and_session_survives() {
        let handle = serve(service(), 0).unwrap();
        let mut c = Client::connect(handle.addr(), &TenantSpec::new("erin", 1)).unwrap();
        assert!(matches!(c.query("SELEKT"), Err(ServeError::Remote(_))));
        let reply = c.query("SELECT COUNT(*) AS n FROM orders").unwrap();
        assert_eq!(reply.batch().unwrap().row(0)[0], Scalar::Int(3000));
        c.bye().unwrap();
        handle.shutdown();
    }
}
