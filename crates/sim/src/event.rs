//! The event queue and simulation driver.
//!
//! A [`Simulation`] owns a priority queue of timestamped events. An event is
//! a boxed closure that receives `&mut Simulation` and may schedule further
//! events — the classic "process interaction via continuations" style, which
//! keeps component code (queues, links, DMA engines) free of trait
//! boilerplate.
//!
//! Determinism: ties on time are broken by a monotonically increasing
//! sequence number, so two runs of the same model produce identical event
//! orders.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::metrics::Metrics;
use crate::time::{SimDuration, SimTime};

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

type Action = Box<dyn FnOnce(&mut Simulation)>;

struct Event {
    time: SimTime,
    seq: u64,
    id: EventId,
    action: Option<Action>,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event simulation.
///
/// ```
/// use df_sim::{Simulation, SimDuration};
///
/// let mut sim = Simulation::new();
/// sim.schedule(SimDuration::from_micros(5), |sim| {
///     sim.metrics_mut().counter("ticks").add(1);
/// });
/// sim.run();
/// assert_eq!(sim.now().nanos(), 5_000);
/// assert_eq!(sim.metrics().counter_value("ticks"), 1);
/// ```
pub struct Simulation {
    now: SimTime,
    queue: BinaryHeap<Event>,
    next_seq: u64,
    cancelled: std::collections::HashSet<EventId>,
    metrics: Metrics,
    executed: u64,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// An empty simulation at time zero.
    pub fn new() -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            metrics: Metrics::new(),
            executed: 0,
        }
    }

    /// The current simulated instant.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Shared metrics registry for model components.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to the metrics registry.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Schedule `action` to run `delay` after the current instant.
    pub fn schedule<F>(&mut self, delay: SimDuration, action: F) -> EventId
    where
        F: FnOnce(&mut Simulation) + 'static,
    {
        self.schedule_at(self.now + delay, action)
    }

    /// Schedule `action` at an absolute instant. Instants in the past are
    /// clamped to "now" (the event still runs, immediately).
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F) -> EventId
    where
        F: FnOnce(&mut Simulation) + 'static,
    {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.queue.push(Event {
            time: at,
            seq,
            id,
            action: Some(Box::new(action)),
        });
        id
    }

    /// Cancel a previously scheduled event. Cancelling an already-executed
    /// or unknown event is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Run a single event if one is pending; returns `false` when the queue
    /// is empty.
    pub fn step(&mut self) -> bool {
        while let Some(mut ev) = self.queue.pop() {
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            debug_assert!(ev.time >= self.now, "time must be monotonic");
            self.now = ev.time;
            self.executed += 1;
            let action = ev.action.take().expect("event action present");
            action(self);
            return true;
        }
        false
    }

    /// Run until the event queue drains. Returns the final instant.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Run until the queue drains or the clock passes `deadline`, whichever
    /// comes first. Events scheduled after the deadline remain queued.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(ev) = self.queue.peek() {
            if ev.time > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(self.now).min(deadline.max(self.now));
        self.now
    }

    /// Run with a safety cap on executed events; returns `true` if the queue
    /// drained before the cap. Useful to detect accidental event storms in
    /// tests.
    pub fn run_capped(&mut self, max_events: u64) -> bool {
        let start = self.executed;
        while self.executed - start < max_events {
            if !self.step() {
                return true;
            }
        }
        self.queue.is_empty()
    }

    /// Number of events still pending (including cancelled-but-unpopped).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        for (label, t) in [("c", 30u64), ("a", 10), ("b", 20)] {
            let order = order.clone();
            sim.schedule(SimDuration::from_nanos(t), move |_| {
                order.borrow_mut().push(label);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!["a", "b", "c"]);
        assert_eq!(sim.now(), SimTime(30));
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        for label in ["first", "second", "third"] {
            let order = order.clone();
            sim.schedule(SimDuration::from_nanos(7), move |_| {
                order.borrow_mut().push(label);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!["first", "second", "third"]);
    }

    #[test]
    fn events_can_schedule_events() {
        let hits = Rc::new(RefCell::new(0u32));
        let mut sim = Simulation::new();
        fn chain(sim: &mut Simulation, hits: Rc<RefCell<u32>>, left: u32) {
            if left == 0 {
                return;
            }
            sim.schedule(SimDuration::from_nanos(1), move |sim| {
                *hits.borrow_mut() += 1;
                chain(sim, hits.clone(), left - 1);
            });
        }
        chain(&mut sim, hits.clone(), 5);
        sim.run();
        assert_eq!(*hits.borrow(), 5);
        assert_eq!(sim.now(), SimTime(5));
    }

    #[test]
    fn cancel_prevents_execution() {
        let hits = Rc::new(RefCell::new(0u32));
        let mut sim = Simulation::new();
        let h = hits.clone();
        let id = sim.schedule(SimDuration::from_nanos(5), move |_| {
            *h.borrow_mut() += 1;
        });
        sim.cancel(id);
        sim.run();
        assert_eq!(*hits.borrow(), 0);
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    fn run_until_leaves_future_events() {
        let mut sim = Simulation::new();
        sim.schedule(SimDuration::from_nanos(10), |_| {});
        sim.schedule(SimDuration::from_nanos(100), |_| {});
        sim.run_until(SimTime(50));
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.events_executed(), 1);
    }

    #[test]
    fn run_capped_detects_storms() {
        let mut sim = Simulation::new();
        // An infinite self-rescheduling loop.
        fn forever(sim: &mut Simulation) {
            sim.schedule(SimDuration::from_nanos(1), forever);
        }
        forever(&mut sim);
        assert!(!sim.run_capped(1000));
    }

    #[test]
    fn past_schedule_clamps_to_now() {
        let mut sim = Simulation::new();
        sim.schedule(SimDuration::from_nanos(10), |sim| {
            // Absolute time 3 is in the past once we're at t=10.
            sim.schedule_at(SimTime(3), |sim| {
                assert_eq!(sim.now(), SimTime(10));
            });
        });
        sim.run();
        assert_eq!(sim.events_executed(), 2);
    }
}
