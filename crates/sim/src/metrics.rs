//! Lightweight metrics for simulation models: named counters, gauges, and
//! fixed-boundary histograms.
//!
//! The fabric components record bytes-per-link, queue occupancies, message
//! counts, and latency distributions here; the experiment harness reads them
//! out to build the paper-figure tables.

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing counter.
#[derive(Debug, Default, Clone, Copy)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Increment by `delta`.
    #[inline]
    pub fn add(&mut self, delta: u64) {
        self.value = self.value.saturating_add(delta);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A histogram with caller-supplied bucket upper bounds plus an implicit
/// overflow bucket. Also tracks count/sum/min/max for summary statistics.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with the given ascending bucket upper bounds.
    pub fn with_bounds(bounds: Vec<u64>) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            buckets: vec![0; n],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// A general-purpose exponential layout: 1, 2, 4, ... up to 2^`levels`.
    pub fn exponential(levels: u32) -> Self {
        Self::with_bounds((0..levels).map(|i| 1u64 << i).collect())
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile (0.0..=1.0) from bucket boundaries: returns the
    /// upper bound of the bucket containing the q-th observation. Exact for
    /// the overflow bucket it returns the recorded max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
            }
        }
        self.max
    }
}

/// A registry of named counters, gauges, and histograms.
///
/// Names are `&'static str`-like strings; the registry is a `BTreeMap` so
/// report output is deterministically ordered.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_string()).or_default()
    }

    /// Read a counter; 0 if absent.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, |c| c.get())
    }

    /// Set the gauge `name`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Read a gauge; 0.0 if absent.
    pub fn gauge_value(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Get or create the histogram `name` with an exponential layout.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::exponential(40))
    }

    /// Read-only access to a histogram, if present.
    pub fn histogram_ref(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// Iterate gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Reset everything (between experiment repetitions).
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in self.counters() {
            writeln!(f, "{name}: {v}")?;
        }
        for (name, v) in self.gauges() {
            writeln!(f, "{name}: {v:.3}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "{name}: n={} mean={:.1} min={} p50={} p99={} max={}",
                h.count(),
                h.mean(),
                h.min(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.counter("bytes").add(10);
        m.counter("bytes").add(5);
        assert_eq!(m.counter_value("bytes"), 15);
        assert_eq!(m.counter_value("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = Metrics::new();
        m.set_gauge("util", 0.5);
        m.set_gauge("util", 0.9);
        assert!((m.gauge_value("util") - 0.9).abs() < 1e-12);
    }

    #[test]
    fn histogram_summary_stats() {
        let mut h = Histogram::exponential(10);
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 22.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_bound_data() {
        let mut h = Histogram::exponential(20);
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // Bucketed quantiles are upper bounds of the containing bucket.
        assert!((512..=1024).contains(&p50), "p50={p50}");
        assert!(p99 >= p50);
        assert!(h.quantile(1.0) >= p99);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = Histogram::with_bounds(vec![10, 100]);
        h.record(5000);
        assert_eq!(h.max(), 5000);
        assert_eq!(h.quantile(1.0), 5000);
    }

    #[test]
    fn histogram_value_on_bucket_boundary_stays_in_bucket() {
        // `bounds` are *upper* bounds: a value equal to a bound lands in
        // that bound's bucket, not the next one. partition_point with
        // `b < value` gives the first bound >= value.
        let mut h = Histogram::with_bounds(vec![10, 100, 1000]);
        h.record(10); // == first bound
        h.record(100); // == second bound
        h.record(11); // just over the first bound
        assert_eq!(h.buckets, vec![1, 2, 0, 0]);
        // Quantile of a boundary observation reports the bucket's bound.
        let mut exact = Histogram::with_bounds(vec![10, 100]);
        exact.record(10);
        assert_eq!(exact.quantile(1.0), 10);
    }

    #[test]
    fn counter_add_saturates_instead_of_wrapping() {
        let mut c = Counter::default();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::exponential(4);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn display_is_deterministic() {
        let mut m = Metrics::new();
        m.counter("zeta").inc();
        m.counter("alpha").inc();
        let s = m.to_string();
        assert!(s.find("alpha").unwrap() < s.find("zeta").unwrap());
    }
}
