//! A small, deterministic pseudo-random generator for simulation models.
//!
//! Components that need stochastic behaviour (arrival jitter, sampled
//! workloads inside the flow simulator) use [`SimRng`] instead of pulling in
//! a full RNG stack, keeping the DES kernel dependency-free. The algorithm is
//! SplitMix64 for seeding plus xoshiro256++ for the stream — well-studied,
//! fast, and reproducible across platforms.

/// Deterministic 64-bit PRNG (xoshiro256++ seeded via SplitMix64).
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// A generator seeded deterministically from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, bound)`. Uses Lemire's multiply-shift
    /// rejection method to avoid modulo bias. `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Rejection sampling on the 128-bit product.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform value in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range must be non-empty");
        if lo == hi {
            return lo;
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to \[0,1\]).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// An exponentially distributed value with the given mean (inter-arrival
    /// modelling). Always finite and non-negative.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            assert!(rng.next_below(13) < 13);
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut rng = SimRng::new(99);
        let mut buckets = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[rng.next_below(8) as usize] += 1;
        }
        let expect = n / 8;
        for &b in &buckets {
            assert!(
                (b as i64 - expect as i64).unsigned_abs() < expect as u64 / 10,
                "bucket {b} far from {expect}"
            );
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = SimRng::new(3);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            match rng.range_inclusive(5, 8) {
                5 => lo_seen = true,
                8 => hi_seen = true,
                v => assert!((5..=8).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::new(11);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::new(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(10.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean={mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(21);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should change order");
    }
}
