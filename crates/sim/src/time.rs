//! Simulated time: nanosecond-resolution instants, durations, and bandwidths.
//!
//! All fabric timing reduces to two primitives: a latency (a
//! [`SimDuration`]) and a service time derived from a [`Bandwidth`] and a
//! byte count. Keeping these as explicit newtypes (rather than bare `u64`s)
//! prevents the classic unit-confusion bugs in cost models.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This instant expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`. Saturates at zero rather than
    /// panicking so callers comparing out-of-order observations get a sane
    /// answer.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build a duration from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Build a duration from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Build a duration from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Build a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Whole nanoseconds in this duration.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// This duration in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This duration in fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating multiply by an integer factor.
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_human_ns(f, self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_human_ns(f, self.0)
    }
}

fn write_human_ns(f: &mut fmt::Formatter<'_>, ns: u64) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{ns}ns")
    }
}

/// A data rate in bytes per second.
///
/// Used for link bandwidths and device streaming throughputs. The key
/// operation is [`Bandwidth::time_for_bytes`], which converts a payload size
/// into a [`SimDuration`].
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth {
    bytes_per_sec: f64,
}

impl Bandwidth {
    /// A bandwidth from raw bytes per second. Panics if non-positive or
    /// non-finite: a zero-bandwidth link is a configuration error, not a
    /// runtime condition.
    pub fn bytes_per_sec(bps: f64) -> Self {
        assert!(
            bps.is_finite() && bps > 0.0,
            "bandwidth must be positive and finite, got {bps}"
        );
        Bandwidth { bytes_per_sec: bps }
    }

    /// A bandwidth from gigabytes per second (GB = 1e9 bytes).
    pub fn gbytes_per_sec(gbs: f64) -> Self {
        Self::bytes_per_sec(gbs * 1e9)
    }

    /// A bandwidth from megabytes per second (MB = 1e6 bytes).
    pub fn mbytes_per_sec(mbs: f64) -> Self {
        Self::bytes_per_sec(mbs * 1e6)
    }

    /// A bandwidth from gigabits per second, the customary unit for NICs.
    pub fn gbits_per_sec(gbits: f64) -> Self {
        Self::bytes_per_sec(gbits * 1e9 / 8.0)
    }

    /// Raw rate in bytes per second.
    #[inline]
    pub fn as_bytes_per_sec(self) -> f64 {
        self.bytes_per_sec
    }

    /// Rate in GB/s, for display.
    #[inline]
    pub fn as_gbytes_per_sec(self) -> f64 {
        self.bytes_per_sec / 1e9
    }

    /// The serialization time for `bytes` at this rate.
    #[inline]
    pub fn time_for_bytes(self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Scale the bandwidth (e.g. to model sharing or derating).
    pub fn scaled(self, factor: f64) -> Self {
        Self::bytes_per_sec(self.bytes_per_sec * factor)
    }

    /// The smaller of two bandwidths — the bottleneck of a two-hop path.
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        if self.bytes_per_sec <= other.bytes_per_sec {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GB/s", self.as_gbytes_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_duration() {
        let t = SimTime(100) + SimDuration::from_nanos(50);
        assert_eq!(t, SimTime(150));
    }

    #[test]
    fn duration_constructors_are_consistent() {
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs_f64(1.0).nanos(), 1_000_000_000);
    }

    #[test]
    fn since_saturates() {
        assert_eq!(SimTime(5).since(SimTime(10)), SimDuration::ZERO);
        assert_eq!(SimTime(10).since(SimTime(5)), SimDuration::from_nanos(5));
    }

    #[test]
    fn bandwidth_transfer_time() {
        // 1 GB at 1 GB/s takes one second.
        let bw = Bandwidth::gbytes_per_sec(1.0);
        assert_eq!(bw.time_for_bytes(1_000_000_000).as_secs_f64(), 1.0);
        // 100 Gb/s NIC = 12.5 GB/s.
        let nic = Bandwidth::gbits_per_sec(100.0);
        assert!((nic.as_gbytes_per_sec() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_min_is_bottleneck() {
        let a = Bandwidth::gbytes_per_sec(2.0);
        let b = Bandwidth::gbytes_per_sec(8.0);
        assert_eq!(a.min(b), a);
        assert_eq!(b.min(a), a);
    }

    #[test]
    fn from_secs_f64_clamps_garbage() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn display_is_human_scaled() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs_f64(1.5).to_string(), "1.500s");
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = Bandwidth::bytes_per_sec(0.0);
    }
}
