//! Query-level tracing: hierarchical spans and instants on named lanes.
//!
//! A [`Tracer`] records what every simulated device (and, optionally, every
//! real executor thread) was doing and when. Lanes come in two kinds:
//!
//! - **Sim lanes** ([`LaneKind::Sim`]) carry events stamped with simulated
//!   [`SimTime`] from the fabric model. They are *deterministic*: the same
//!   topology, workload and RNG seed produce a byte-identical
//!   [`Tracer::sim_timeline`]. Golden-trace tests rely on this contract.
//! - **Wall lanes** ([`LaneKind::Wall`]) carry events stamped with real
//!   elapsed nanoseconds since the tracer was created. The push executor's
//!   operator and morsel spans live here; they are useful for profiling but
//!   excluded from golden comparisons.
//!
//! Tracing is strictly opt-in: components hold an `Option<Arc<Tracer>>` and
//! skip every call when it is `None`, so the disabled path costs one branch
//! and takes no locks.
//!
//! Exporters:
//! - [`Tracer::chrome_trace_json`] — Chrome `trace_event` JSON, loadable in
//!   Perfetto / `chrome://tracing` (one `pid` per lane kind, one `tid` per
//!   lane);
//! - [`Tracer::summary`] — a plain-text per-lane utilization table;
//! - [`Tracer::sim_timeline`] — the canonical text form of the sim-time
//!   lanes used for determinism checks.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

use crate::time::SimTime;

/// Whether a lane's timestamps come from the simulated clock or the real one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneKind {
    /// Deterministic simulated time ([`SimTime`] nanoseconds).
    Sim,
    /// Real elapsed nanoseconds since [`Tracer::new`].
    Wall,
}

/// Handle to a lane, returned by [`Tracer::lane`]. Cheap to copy and share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneId(usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Begin,
    End,
    Instant,
}

#[derive(Debug, Clone)]
struct TraceEvent {
    phase: Phase,
    /// Span/instant name; empty for `End` (the matching `Begin` names it).
    name: String,
    /// Nanoseconds — simulated for sim lanes, wall-elapsed for wall lanes.
    ts: u64,
    /// Numeric annotations (`rows`, `bytes`, ...).
    args: Vec<(String, u64)>,
}

#[derive(Debug)]
struct Lane {
    name: String,
    kind: LaneKind,
    events: Vec<TraceEvent>,
}

#[derive(Debug, Default)]
struct Inner {
    lanes: Vec<Lane>,
    index: HashMap<String, usize>,
}

/// A hierarchical span/event recorder. See the module docs for the model.
#[derive(Debug)]
pub struct Tracer {
    inner: Mutex<Inner>,
    wall_origin: Instant,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// An empty tracer. Wall-lane timestamps are measured from this call.
    pub fn new() -> Tracer {
        Tracer {
            inner: Mutex::new(Inner::default()),
            wall_origin: Instant::now(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("tracer lock poisoned")
    }

    fn wall_now(&self) -> u64 {
        self.wall_origin.elapsed().as_nanos() as u64
    }

    /// Create-or-get the **per-tenant** sim lane `tenant.<name>`. The
    /// serving layer records each tenant's query activity (batch service
    /// spans, `credit-wait` spans, `preempt` instants) on these lanes so a
    /// multi-query trace can be read per tenant; golden-trace tests slice
    /// them back out with [`Tracer::sim_timeline_for`].
    pub fn tenant_lane(&self, tenant: &str) -> LaneId {
        self.lane(&format!("tenant.{tenant}"), LaneKind::Sim)
    }

    /// Create-or-get the lane called `name`. Creating the same name twice
    /// returns the same lane; the `kind` of the first creation wins.
    pub fn lane(&self, name: &str, kind: LaneKind) -> LaneId {
        let mut inner = self.lock();
        if let Some(&i) = inner.index.get(name) {
            return LaneId(i);
        }
        let i = inner.lanes.len();
        inner.lanes.push(Lane {
            name: name.to_string(),
            kind,
            events: Vec::new(),
        });
        inner.index.insert(name.to_string(), i);
        LaneId(i)
    }

    /// Names of all lanes, in creation order.
    pub fn lane_names(&self) -> Vec<String> {
        self.lock().lanes.iter().map(|l| l.name.clone()).collect()
    }

    /// Total number of recorded events across all lanes.
    pub fn event_count(&self) -> usize {
        self.lock().lanes.iter().map(|l| l.events.len()).sum()
    }

    fn push(&self, lane: LaneId, event: TraceEvent) {
        self.lock().lanes[lane.0].events.push(event);
    }

    /// Open a span on a sim lane at simulated time `at`.
    pub fn begin_at(&self, lane: LaneId, name: &str, at: SimTime) {
        self.begin_at_with(lane, name, at, &[]);
    }

    /// [`Tracer::begin_at`] with numeric annotations.
    pub fn begin_at_with(&self, lane: LaneId, name: &str, at: SimTime, args: &[(&str, u64)]) {
        self.push(
            lane,
            TraceEvent {
                phase: Phase::Begin,
                name: name.to_string(),
                ts: at.nanos(),
                args: own_args(args),
            },
        );
    }

    /// Close the innermost open span on a sim lane at simulated time `at`.
    pub fn end_at(&self, lane: LaneId, at: SimTime) {
        self.end_at_with(lane, at, &[]);
    }

    /// [`Tracer::end_at`] with numeric annotations.
    pub fn end_at_with(&self, lane: LaneId, at: SimTime, args: &[(&str, u64)]) {
        self.push(
            lane,
            TraceEvent {
                phase: Phase::End,
                name: String::new(),
                ts: at.nanos(),
                args: own_args(args),
            },
        );
    }

    /// Record a complete `[start, end]` span on a sim lane in one call —
    /// the common shape when the simulator knows the service time up front.
    pub fn span_at(
        &self,
        lane: LaneId,
        name: &str,
        start: SimTime,
        end: SimTime,
        args: &[(&str, u64)],
    ) {
        let mut inner = self.lock();
        let events = &mut inner.lanes[lane.0].events;
        events.push(TraceEvent {
            phase: Phase::Begin,
            name: name.to_string(),
            ts: start.nanos(),
            args: own_args(args),
        });
        events.push(TraceEvent {
            phase: Phase::End,
            name: String::new(),
            ts: end.nanos().max(start.nanos()),
            args: Vec::new(),
        });
    }

    /// Record a point event on a sim lane.
    pub fn instant_at(&self, lane: LaneId, name: &str, at: SimTime) {
        self.instant_at_with(lane, name, at, &[]);
    }

    /// [`Tracer::instant_at`] with numeric annotations.
    pub fn instant_at_with(&self, lane: LaneId, name: &str, at: SimTime, args: &[(&str, u64)]) {
        self.push(
            lane,
            TraceEvent {
                phase: Phase::Instant,
                name: name.to_string(),
                ts: at.nanos(),
                args: own_args(args),
            },
        );
    }

    /// Open a wall-clock span; it closes when the returned guard drops.
    pub fn span<'a>(&'a self, lane: LaneId, name: &str) -> SpanGuard<'a> {
        self.span_with(lane, name, &[])
    }

    /// [`Tracer::span`] with numeric annotations on the opening event.
    pub fn span_with<'a>(
        &'a self,
        lane: LaneId,
        name: &str,
        args: &[(&str, u64)],
    ) -> SpanGuard<'a> {
        let now = self.wall_now();
        self.push(
            lane,
            TraceEvent {
                phase: Phase::Begin,
                name: name.to_string(),
                ts: now,
                args: own_args(args),
            },
        );
        SpanGuard {
            tracer: self,
            lane,
            args: Vec::new(),
        }
    }

    /// Record a wall-clock point event.
    pub fn instant(&self, lane: LaneId, name: &str) {
        let now = self.wall_now();
        self.push(
            lane,
            TraceEvent {
                phase: Phase::Instant,
                name: name.to_string(),
                ts: now,
                args: Vec::new(),
            },
        );
    }

    fn end_wall(&self, lane: LaneId, args: Vec<(String, u64)>) {
        let now = self.wall_now();
        self.push(
            lane,
            TraceEvent {
                phase: Phase::End,
                name: String::new(),
                ts: now,
                args,
            },
        );
    }

    /// Check every lane for structural soundness:
    /// - timestamps are non-decreasing in record order;
    /// - every `End` closes an open `Begin` (stack discipline — spans on a
    ///   lane are properly nested, never partially overlapping);
    /// - no span is left open.
    ///
    /// Wall lanes tolerate clock reversals of 0 (identical stamps are fine).
    pub fn validate(&self) -> Result<(), String> {
        let inner = self.lock();
        for lane in &inner.lanes {
            let mut last_ts = 0u64;
            let mut stack: Vec<&str> = Vec::new();
            for (i, ev) in lane.events.iter().enumerate() {
                if ev.ts < last_ts {
                    return Err(format!(
                        "lane `{}` event {i}: timestamp {} goes backwards (prev {})",
                        lane.name, ev.ts, last_ts
                    ));
                }
                last_ts = ev.ts;
                match ev.phase {
                    Phase::Begin => stack.push(&ev.name),
                    Phase::End => {
                        if stack.pop().is_none() {
                            return Err(format!(
                                "lane `{}` event {i}: End with no open span",
                                lane.name
                            ));
                        }
                    }
                    Phase::Instant => {}
                }
            }
            if let Some(open) = stack.last() {
                return Err(format!(
                    "lane `{}`: span `{open}` (and {} more) never closed",
                    lane.name,
                    stack.len() - 1
                ));
            }
        }
        Ok(())
    }

    /// The canonical text form of the **sim lanes only**, in lane-creation
    /// and record order. Two runs with the same seed must produce identical
    /// strings — this is the golden-trace determinism contract. Wall lanes
    /// are excluded because real time is never reproducible.
    pub fn sim_timeline(&self) -> String {
        self.sim_timeline_filtered(|_| true)
    }

    /// [`Tracer::sim_timeline`] restricted to sim lanes whose name starts
    /// with `prefix` — e.g. `tenant.alice` for one tenant's view of a
    /// multi-query run.
    pub fn sim_timeline_for(&self, prefix: &str) -> String {
        self.sim_timeline_filtered(|name| name.starts_with(prefix))
    }

    fn sim_timeline_filtered(&self, keep: impl Fn(&str) -> bool) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for lane in inner
            .lanes
            .iter()
            .filter(|l| l.kind == LaneKind::Sim && keep(&l.name))
        {
            for ev in &lane.events {
                let ph = match ev.phase {
                    Phase::Begin => 'B',
                    Phase::End => 'E',
                    Phase::Instant => 'I',
                };
                let _ = write!(out, "{}\t{}\t{}\t{}", lane.name, ph, ev.ts, ev.name);
                for (k, v) in &ev.args {
                    let _ = write!(out, "\t{k}={v}");
                }
                out.push('\n');
            }
        }
        out
    }

    /// Export every lane as Chrome `trace_event` JSON (the "JSON array
    /// format"): load the file in Perfetto or `chrome://tracing`. Sim lanes
    /// live under `pid` 1, wall lanes under `pid` 2; each lane is a named
    /// `tid` (thread metadata events carry the lane names). Timestamps are
    /// microseconds with nanosecond precision.
    pub fn chrome_trace_json(&self) -> String {
        let inner = self.lock();
        let mut out = String::from("[\n");
        let mut first = true;
        let mut emit = |line: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&line);
        };
        emit(
            r#"{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"simulated"}}"#
                .to_string(),
            &mut out,
        );
        emit(
            r#"{"ph":"M","pid":2,"tid":0,"name":"process_name","args":{"name":"wall-clock"}}"#
                .to_string(),
            &mut out,
        );
        for (tid, lane) in inner.lanes.iter().enumerate() {
            let pid = match lane.kind {
                LaneKind::Sim => 1,
                LaneKind::Wall => 2,
            };
            emit(
                format!(
                    r#"{{"ph":"M","pid":{pid},"tid":{tid},"name":"thread_name","args":{{"name":"{}"}}}}"#,
                    escape_json(&lane.name)
                ),
                &mut out,
            );
            for ev in &lane.events {
                let ph = match ev.phase {
                    Phase::Begin => "B",
                    Phase::End => "E",
                    Phase::Instant => "i",
                };
                let mut line = format!(
                    r#"{{"ph":"{ph}","pid":{pid},"tid":{tid},"ts":{}.{:03}"#,
                    ev.ts / 1_000,
                    ev.ts % 1_000
                );
                if !ev.name.is_empty() {
                    let _ = write!(line, r#","name":"{}""#, escape_json(&ev.name));
                }
                if ev.phase == Phase::Instant {
                    line.push_str(r#","s":"t""#);
                }
                if !ev.args.is_empty() {
                    line.push_str(r#","args":{"#);
                    for (i, (k, v)) in ev.args.iter().enumerate() {
                        if i > 0 {
                            line.push(',');
                        }
                        let _ = write!(line, r#""{}":{v}"#, escape_json(k));
                    }
                    line.push('}');
                }
                line.push('}');
                emit(line, &mut out);
            }
        }
        out.push_str("\n]\n");
        out
    }

    /// A plain-text per-lane utilization table: top-level busy time, span
    /// and instant counts, and busy share of the lane's active window.
    pub fn summary(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>6} {:>8} {:>14} {:>14} {:>6}",
            "lane", "kind", "spans", "busy", "window", "util"
        );
        for lane in &inner.lanes {
            let mut depth = 0u32;
            let mut open_at = 0u64;
            let mut busy = 0u64;
            let mut spans = 0u64;
            let mut first: Option<u64> = None;
            let mut last = 0u64;
            for ev in &lane.events {
                first.get_or_insert(ev.ts);
                last = last.max(ev.ts);
                match ev.phase {
                    Phase::Begin => {
                        if depth == 0 {
                            open_at = ev.ts;
                        }
                        depth += 1;
                        spans += 1;
                    }
                    Phase::End => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            busy += ev.ts.saturating_sub(open_at);
                        }
                    }
                    Phase::Instant => {}
                }
            }
            let window = last.saturating_sub(first.unwrap_or(0));
            let util = if window > 0 {
                busy as f64 / window as f64 * 100.0
            } else {
                0.0
            };
            let kind = match lane.kind {
                LaneKind::Sim => "sim",
                LaneKind::Wall => "wall",
            };
            let _ = writeln!(
                out,
                "{:<28} {:>6} {:>8} {:>12}ns {:>12}ns {:>5.1}%",
                lane.name, kind, spans, busy, window, util
            );
        }
        out
    }
}

/// RAII guard for a wall-clock span: records the `End` event when dropped.
/// Use [`SpanGuard::annotate`] to attach numbers (rows, bytes) that are only
/// known once the work finishes.
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    lane: LaneId,
    args: Vec<(String, u64)>,
}

impl SpanGuard<'_> {
    /// Attach a numeric annotation to the span's closing event.
    pub fn annotate(&mut self, key: &str, value: u64) {
        self.args.push((key.to_string(), value));
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.tracer
            .end_wall(self.lane, std::mem::take(&mut self.args));
    }
}

fn own_args(args: &[(&str, u64)]) -> Vec<(String, u64)> {
    args.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn lanes_are_deduplicated() {
        let tracer = Tracer::new();
        let a = tracer.lane("dev.a", LaneKind::Sim);
        let b = tracer.lane("dev.a", LaneKind::Sim);
        assert_eq!(a, b);
        assert_eq!(tracer.lane_names(), vec!["dev.a".to_string()]);
    }

    #[test]
    fn sim_timeline_is_stable_and_excludes_wall() {
        let tracer = Tracer::new();
        let sim = tracer.lane("link.pcie", LaneKind::Sim);
        let wall = tracer.lane("worker.0", LaneKind::Wall);
        tracer.span_at(sim, "xfer", SimTime(10), SimTime(30), &[("bytes", 64)]);
        tracer.instant_at(sim, "credit", SimTime(35));
        drop(tracer.span(wall, "op"));
        let timeline = tracer.sim_timeline();
        assert_eq!(
            timeline,
            "link.pcie\tB\t10\txfer\tbytes=64\nlink.pcie\tE\t30\t\nlink.pcie\tI\t35\tcredit\n"
        );
        assert!(!timeline.contains("worker"));
    }

    #[test]
    fn validate_accepts_nested_and_rejects_malformed() {
        let tracer = Tracer::new();
        let lane = tracer.lane("cpu", LaneKind::Sim);
        tracer.begin_at(lane, "outer", SimTime(0));
        tracer.begin_at(lane, "inner", SimTime(5));
        tracer.end_at(lane, SimTime(9));
        tracer.end_at(lane, SimTime(20));
        assert!(tracer.validate().is_ok());

        let bad = Tracer::new();
        let lane = bad.lane("cpu", LaneKind::Sim);
        bad.begin_at(lane, "open", SimTime(0));
        assert!(bad.validate().unwrap_err().contains("never closed"));

        let worse = Tracer::new();
        let lane = worse.lane("cpu", LaneKind::Sim);
        worse.end_at(lane, SimTime(0));
        assert!(worse.validate().unwrap_err().contains("no open span"));

        let backwards = Tracer::new();
        let lane = backwards.lane("cpu", LaneKind::Sim);
        backwards.instant_at(lane, "late", SimTime(10));
        backwards.instant_at(lane, "early", SimTime(5));
        assert!(backwards.validate().unwrap_err().contains("backwards"));
    }

    #[test]
    fn tenant_lanes_slice_out_of_the_timeline() {
        let tracer = Tracer::new();
        let alice = tracer.tenant_lane("alice");
        let bob = tracer.tenant_lane("bob");
        assert_eq!(alice, tracer.tenant_lane("alice"));
        tracer.span_at(alice, "batch", SimTime(0), SimTime(10), &[]);
        tracer.instant_at(bob, "preempt", SimTime(5));
        let full = tracer.sim_timeline();
        assert!(full.contains("tenant.alice") && full.contains("tenant.bob"));
        let only_alice = tracer.sim_timeline_for("tenant.alice");
        assert!(only_alice.contains("batch"));
        assert!(!only_alice.contains("preempt"));
    }

    #[test]
    fn span_guard_closes_on_drop() {
        let tracer = Tracer::new();
        let lane = tracer.lane("worker", LaneKind::Wall);
        {
            let mut guard = tracer.span(lane, "scan");
            guard.annotate("rows", 123);
        }
        assert!(tracer.validate().is_ok());
        assert_eq!(tracer.event_count(), 2);
        let json = tracer.chrome_trace_json();
        assert!(json.contains(r#""rows":123"#));
    }

    #[test]
    fn chrome_json_shape() {
        let tracer = Tracer::new();
        let lane = tracer.lane("storage.ssd", LaneKind::Sim);
        tracer.span_at(
            lane,
            "read \"x\"",
            SimTime(1_500),
            SimTime(2_500),
            &[("bytes", 7)],
        );
        let json = tracer.chrome_trace_json();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains(r#""ph":"B""#));
        assert!(json.contains(r#""ph":"E""#));
        // 1500 ns = 1.500 us, with escaped quotes in the name.
        assert!(json.contains(r#""ts":1.500"#));
        assert!(json.contains(r#"read \"x\""#));
        assert!(json.contains(r#""thread_name","args":{"name":"storage.ssd"}"#));
    }

    #[test]
    fn summary_reports_utilization() {
        let tracer = Tracer::new();
        let lane = tracer.lane("nic", LaneKind::Sim);
        tracer.span_at(lane, "a", SimTime(0), SimTime(50), &[]);
        tracer.span_at(lane, "b", SimTime(50), SimTime(100), &[]);
        let summary = tracer.summary();
        assert!(summary.contains("nic"));
        assert!(summary.contains("100.0%"), "{summary}");
    }
}
