#![warn(missing_docs)]
#![deny(unsafe_code)]
//! # df-sim — discrete-event simulation kernel
//!
//! The timing substrate for the fabric model. Everything that "takes time" in
//! the reproduced system (link transfers, device service, credit returns) is
//! expressed as events on a [`Simulation`]'s queue. The kernel is
//! deterministic: same inputs, same event order, same results.
//!
//! Modules:
//! - [`time`] — nanosecond simulated time and rate/duration arithmetic
//! - [`event`] — the event queue and simulation driver
//! - [`metrics`] — counters, gauges and fixed-bound histograms
//! - [`rng`] — a small deterministic SplitMix64/xoshiro RNG
//! - [`trace`] — hierarchical span/event tracing on per-device lanes

pub mod event;
pub mod metrics;
pub mod rng;
pub mod time;
pub mod trace;

pub use event::{EventId, Simulation};
pub use metrics::{Counter, Histogram, Metrics};
pub use rng::SimRng;
pub use time::{Bandwidth, SimDuration, SimTime};
pub use trace::{LaneId, LaneKind, SpanGuard, Tracer};
