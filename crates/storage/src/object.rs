//! Object-store abstraction: the interface "real cloud storage" exposes
//! (§3.2) — whole objects, byte-range gets, no notion of blocks or files.

use std::collections::BTreeMap;
use std::sync::Arc;

use std::sync::RwLock;

use crate::{Result, StorageError};

/// Byte-level access statistics an object store keeps — the basis of the
//  Query-As-A-Service billing model ("these systems charge for the amount
/// of data read from storage", §3.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObjectStoreStats {
    /// Bytes written via `put`.
    pub bytes_written: u64,
    /// Bytes returned by `get`/`get_range`.
    pub bytes_read: u64,
    /// Number of GET operations (each has a request cost in the cloud).
    pub get_ops: u64,
    /// Number of PUT operations.
    pub put_ops: u64,
}

/// An object store: flat keys, immutable-ish values, range reads.
pub trait ObjectStore: Send + Sync {
    /// Store `data` under `key`, replacing any previous object.
    fn put(&self, key: &str, data: Vec<u8>) -> Result<()>;

    /// Fetch a whole object.
    fn get(&self, key: &str) -> Result<Vec<u8>>;

    /// Fetch `len` bytes starting at `offset`.
    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>>;

    /// Size of an object in bytes.
    fn size(&self, key: &str) -> Result<u64>;

    /// Keys with the given prefix, sorted.
    fn list(&self, prefix: &str) -> Vec<String>;

    /// Delete an object (idempotent).
    fn delete(&self, key: &str);

    /// Access statistics so far.
    fn stats(&self) -> ObjectStoreStats;

    /// Reset statistics (between experiment repetitions).
    fn reset_stats(&self);
}

/// Shared handle to an object store.
pub type ObjectStoreRef = Arc<dyn ObjectStore>;

/// An in-memory object store. Cost/latency of access is modelled by the
/// fabric layer, not here; this type provides correct semantics plus exact
/// byte accounting.
#[derive(Debug, Default)]
pub struct MemObjectStore {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    objects: BTreeMap<String, Arc<Vec<u8>>>,
    stats: ObjectStoreStats,
}

impl MemObjectStore {
    /// An empty store.
    pub fn new() -> Self {
        MemObjectStore::default()
    }

    /// An empty store behind an `Arc<dyn ObjectStore>`.
    pub fn shared() -> ObjectStoreRef {
        Arc::new(MemObjectStore::new())
    }
}

impl ObjectStore for MemObjectStore {
    fn put(&self, key: &str, data: Vec<u8>) -> Result<()> {
        let mut inner = self.inner.write().expect("lock poisoned");
        inner.stats.bytes_written += data.len() as u64;
        inner.stats.put_ops += 1;
        inner.objects.insert(key.to_string(), Arc::new(data));
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        let mut inner = self.inner.write().expect("lock poisoned");
        let obj = inner
            .objects
            .get(key)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(key.to_string()))?;
        inner.stats.bytes_read += obj.len() as u64;
        inner.stats.get_ops += 1;
        Ok(obj.as_ref().clone())
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        let mut inner = self.inner.write().expect("lock poisoned");
        let obj = inner
            .objects
            .get(key)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(key.to_string()))?;
        let size = obj.len() as u64;
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= size)
            .ok_or(StorageError::BadRange { offset, len, size })?;
        inner.stats.bytes_read += len;
        inner.stats.get_ops += 1;
        Ok(obj[offset as usize..end as usize].to_vec())
    }

    fn size(&self, key: &str) -> Result<u64> {
        self.inner
            .read()
            .expect("lock poisoned")
            .objects
            .get(key)
            .map(|o| o.len() as u64)
            .ok_or_else(|| StorageError::NotFound(key.to_string()))
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.inner
            .read()
            .expect("lock poisoned")
            .objects
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    fn delete(&self, key: &str) {
        self.inner
            .write()
            .expect("lock poisoned")
            .objects
            .remove(key);
    }

    fn stats(&self) -> ObjectStoreStats {
        self.inner.read().expect("lock poisoned").stats
    }

    fn reset_stats(&self) {
        self.inner.write().expect("lock poisoned").stats = ObjectStoreStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let store = MemObjectStore::new();
        store.put("a/b", vec![1, 2, 3]).unwrap();
        assert_eq!(store.get("a/b").unwrap(), vec![1, 2, 3]);
        assert_eq!(store.size("a/b").unwrap(), 3);
    }

    #[test]
    fn missing_key_errors() {
        let store = MemObjectStore::new();
        assert!(matches!(store.get("nope"), Err(StorageError::NotFound(_))));
        assert!(store.size("nope").is_err());
    }

    #[test]
    fn range_reads() {
        let store = MemObjectStore::new();
        store.put("k", (0u8..100).collect()).unwrap();
        assert_eq!(
            store.get_range("k", 10, 5).unwrap(),
            vec![10, 11, 12, 13, 14]
        );
        assert_eq!(store.get_range("k", 95, 5).unwrap().len(), 5);
        assert!(matches!(
            store.get_range("k", 95, 6),
            Err(StorageError::BadRange { .. })
        ));
        assert!(store.get_range("k", u64::MAX, 2).is_err());
    }

    #[test]
    fn list_by_prefix_sorted() {
        let store = MemObjectStore::new();
        for key in ["t1/seg2", "t1/seg1", "t2/seg1"] {
            store.put(key, vec![]).unwrap();
        }
        assert_eq!(store.list("t1/"), vec!["t1/seg1", "t1/seg2"]);
        assert_eq!(store.list(""), vec!["t1/seg1", "t1/seg2", "t2/seg1"]);
    }

    #[test]
    fn stats_account_bytes() {
        let store = MemObjectStore::new();
        store.put("k", vec![0; 100]).unwrap();
        store.get("k").unwrap();
        store.get_range("k", 0, 10).unwrap();
        let stats = store.stats();
        assert_eq!(stats.bytes_written, 100);
        assert_eq!(stats.bytes_read, 110);
        assert_eq!(stats.get_ops, 2);
        assert_eq!(stats.put_ops, 1);
        store.reset_stats();
        assert_eq!(store.stats(), ObjectStoreStats::default());
    }

    #[test]
    fn overwrite_replaces() {
        let store = MemObjectStore::new();
        store.put("k", vec![1]).unwrap();
        store.put("k", vec![2, 3]).unwrap();
        assert_eq!(store.get("k").unwrap(), vec![2, 3]);
    }

    #[test]
    fn delete_is_idempotent() {
        let store = MemObjectStore::new();
        store.put("k", vec![1]).unwrap();
        store.delete("k");
        store.delete("k");
        assert!(store.get("k").is_err());
    }
}
