//! Multi-segment tables over an object store.
//!
//! A table is a prefix in the object store: a `_meta` object holding the
//! schema plus numbered segment objects. This mirrors how cloud warehouses
//! lay tables out over object storage (§3.2) — no file system, no blocks,
//! just immutable objects.

use df_codec::wire;
use df_data::{Batch, SchemaRef};

use crate::object::ObjectStoreRef;
use crate::segment::{SegmentReader, SegmentWriter, DEFAULT_PAGE_ROWS};
use crate::zonemap::ZoneMap;
use crate::{Result, StorageError};

/// Default rows per segment object.
pub const DEFAULT_SEGMENT_ROWS: usize = 1 << 20;

/// A handle for reading and writing tables in an object store.
#[derive(Clone)]
pub struct TableStore {
    store: ObjectStoreRef,
}

impl TableStore {
    /// Wrap an object store.
    pub fn new(store: ObjectStoreRef) -> Self {
        TableStore { store }
    }

    /// The underlying object store (for byte accounting).
    pub fn object_store(&self) -> &ObjectStoreRef {
        &self.store
    }

    fn meta_key(table: &str) -> String {
        format!("{table}/_meta")
    }

    fn segment_key(table: &str, index: u64) -> String {
        format!("{table}/seg{index:08}")
    }

    /// Create (or replace) a table with the given schema.
    pub fn create(&self, table: &str, schema: &SchemaRef) -> Result<()> {
        for key in self.store.list(&format!("{table}/")) {
            self.store.delete(&key);
        }
        let mut meta = Vec::new();
        wire::encode_schema(&mut meta, schema);
        self.store.put(&Self::meta_key(table), meta)
    }

    /// The table's schema.
    pub fn schema(&self, table: &str) -> Result<SchemaRef> {
        let meta = self.store.get(&Self::meta_key(table))?;
        let mut pos = 0usize;
        let schema = wire::decode_schema(&meta, &mut pos)?;
        Ok(schema.into_ref())
    }

    /// Keys of the table's segments, in order.
    pub fn segments(&self, table: &str) -> Vec<String> {
        self.store
            .list(&format!("{table}/seg"))
            .into_iter()
            .collect()
    }

    /// Append batches as new segments of at most `segment_rows` rows each.
    pub fn append(
        &self,
        table: &str,
        batches: &[Batch],
        segment_rows: usize,
        page_rows: usize,
    ) -> Result<()> {
        let schema = self.schema(table)?;
        let next_index = self.segments(table).len() as u64;
        let mut writer = SegmentWriter::new(schema.clone(), page_rows);
        let mut seg_index = next_index;
        let mut rows_in_segment = 0usize;
        for batch in batches {
            let mut offset = 0usize;
            while offset < batch.rows() {
                let take = (segment_rows - rows_in_segment).min(batch.rows() - offset);
                writer.push(&batch.slice(offset, take))?;
                rows_in_segment += take;
                offset += take;
                if rows_in_segment >= segment_rows {
                    let finished = std::mem::replace(
                        &mut writer,
                        SegmentWriter::new(schema.clone(), page_rows),
                    );
                    self.store
                        .put(&Self::segment_key(table, seg_index), finished.finish()?)?;
                    seg_index += 1;
                    rows_in_segment = 0;
                }
            }
        }
        if rows_in_segment > 0 {
            self.store
                .put(&Self::segment_key(table, seg_index), writer.finish()?)?;
        }
        Ok(())
    }

    /// Convenience: create and load a table in one call with defaults.
    pub fn create_and_load(&self, table: &str, batches: &[Batch]) -> Result<()> {
        let schema = batches
            .first()
            .map(|b| b.schema().clone())
            .ok_or_else(|| StorageError::Corrupt("no batches to load".into()))?;
        self.create(table, &schema)?;
        self.append(table, batches, DEFAULT_SEGMENT_ROWS, DEFAULT_PAGE_ROWS)
    }

    /// Open readers for every segment of the table.
    pub fn open_segments(&self, table: &str) -> Result<Vec<SegmentReader>> {
        self.segments(table)
            .iter()
            .map(|key| SegmentReader::open(self.store.clone(), key))
            .collect()
    }

    /// Table-level statistics aggregated from segment footers.
    pub fn stats(&self, table: &str) -> Result<TableStats> {
        let schema = self.schema(table)?;
        let readers = self.open_segments(table)?;
        let rows = readers.iter().map(SegmentReader::rows).sum();
        let mut column_zones: Vec<Option<ZoneMap>> = vec![None; schema.len()];
        let mut bytes = 0u64;
        for reader in &readers {
            for p in 0..reader.n_pages() {
                for (c, block) in reader.page(p).blocks.iter().enumerate() {
                    bytes += block.len;
                    column_zones[c] = Some(match &column_zones[c] {
                        Some(z) => z.merge(&block.zone),
                        None => block.zone.clone(),
                    });
                }
            }
        }
        Ok(TableStats {
            rows,
            stored_bytes: bytes,
            column_zones,
        })
    }
}

/// Aggregated table statistics (the optimizer's cardinality inputs).
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Total rows.
    pub rows: u64,
    /// Bytes of encoded column blocks on storage.
    pub stored_bytes: u64,
    /// Whole-table zone map per column (None if the table is empty).
    pub column_zones: Vec<Option<ZoneMap>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::MemObjectStore;
    use df_data::batch::batch_of;
    use df_data::{Column, Scalar};

    fn sample(n: usize) -> Batch {
        batch_of(vec![
            ("id", Column::from_i64((0..n as i64).collect())),
            (
                "grp",
                Column::from_strs(&(0..n).map(|i| format!("g{}", i % 3)).collect::<Vec<_>>()),
            ),
        ])
    }

    #[test]
    fn create_load_read() {
        let ts = TableStore::new(MemObjectStore::shared());
        let batch = sample(500);
        ts.create_and_load("events", std::slice::from_ref(&batch))
            .unwrap();
        let readers = ts.open_segments("events").unwrap();
        assert_eq!(readers.len(), 1);
        let got = readers[0].read_full_page(0).unwrap();
        assert_eq!(got.schema().field(0).name, "id");
        assert_eq!(ts.stats("events").unwrap().rows, 500);
    }

    #[test]
    fn append_splits_segments() {
        let ts = TableStore::new(MemObjectStore::shared());
        let batch = sample(1000);
        ts.create("t", batch.schema()).unwrap();
        ts.append("t", &[batch], 300, 100).unwrap();
        // 1000 rows / 300 per segment = 4 segments.
        assert_eq!(ts.segments("t").len(), 4);
        let stats = ts.stats("t").unwrap();
        assert_eq!(stats.rows, 1000);
        let id_zone = stats.column_zones[0].as_ref().unwrap();
        assert_eq!(id_zone.min, Some(Scalar::Int(0)));
        assert_eq!(id_zone.max, Some(Scalar::Int(999)));
    }

    #[test]
    fn appending_twice_extends() {
        let ts = TableStore::new(MemObjectStore::shared());
        let batch = sample(100);
        ts.create("t", batch.schema()).unwrap();
        ts.append("t", std::slice::from_ref(&batch), 1000, 50)
            .unwrap();
        ts.append("t", &[batch], 1000, 50).unwrap();
        assert_eq!(ts.segments("t").len(), 2);
        assert_eq!(ts.stats("t").unwrap().rows, 200);
    }

    #[test]
    fn create_replaces_existing_data() {
        let ts = TableStore::new(MemObjectStore::shared());
        let batch = sample(100);
        ts.create_and_load("t", std::slice::from_ref(&batch))
            .unwrap();
        ts.create("t", batch.schema()).unwrap();
        assert_eq!(ts.segments("t").len(), 0);
        assert_eq!(ts.stats("t").unwrap().rows, 0);
    }

    #[test]
    fn missing_table_errors() {
        let ts = TableStore::new(MemObjectStore::shared());
        assert!(ts.schema("ghost").is_err());
    }
}
