#![warn(missing_docs)]
#![deny(unsafe_code)]
//! # df-storage — the disaggregated storage layer with pushdown
//!
//! §3 of the paper asks what the storage layer can do beyond storing bytes.
//! This crate is the answer, built bottom-up:
//!
//! - [`object`] — an object-store interface (the "real cloud storage" of
//!   §3.2) with byte-range reads
//! - [`zonemap`] — per-page min/max statistics (the cloud-native surrogate
//!   for indexes)
//! - [`segment`] — the columnar segment format: pages of encoded column
//!   blocks plus a footer directory, so projections read only the blocks
//!   they need
//! - [`pattern`] — a SQL `LIKE` matcher (the AQUA-style pushdown predicate)
//! - [`predicate`] — the self-contained predicate language the engine
//!   pushes down to storage
//! - [`smart`] — the smart-storage server: streaming, stateless, page-at-a-
//!   time execution of projection, selection, LIKE, and bounded
//!   pre-aggregation, with byte-level billing (bytes scanned vs returned)
//! - [`table`] — multi-segment tables and their statistics

pub mod object;
pub mod partition;
pub mod pattern;
pub mod predicate;
pub mod segment;
pub mod smart;
pub mod table;
pub mod zonemap;

use std::fmt;

/// Errors from the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Object key not found.
    NotFound(String),
    /// Byte range outside the object.
    BadRange {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Object size.
        size: u64,
    },
    /// Segment bytes are malformed.
    Corrupt(String),
    /// Codec-level failure.
    Codec(df_codec::CodecError),
    /// Data-model failure.
    Data(df_data::DataError),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NotFound(key) => write!(f, "object not found: {key}"),
            StorageError::BadRange { offset, len, size } => {
                write!(f, "range {offset}+{len} outside object of {size} bytes")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt segment: {msg}"),
            StorageError::Codec(e) => write!(f, "codec: {e}"),
            StorageError::Data(e) => write!(f, "data: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<df_codec::CodecError> for StorageError {
    fn from(e: df_codec::CodecError) -> Self {
        StorageError::Codec(e)
    }
}

impl From<df_data::DataError> for StorageError {
    fn from(e: df_data::DataError) -> Self {
        StorageError::Data(e)
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
