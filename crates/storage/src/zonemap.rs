//! Zone maps: per-page min/max/null statistics.
//!
//! §2.1/§3.1: cloud-native engines "discard conventional indexes" and use
//! zone maps "to fetch as little data as possible". A zone map can prove a
//! page contains no qualifying row for a comparison predicate, letting the
//! smart-storage server skip the page without reading its blocks.

use std::cmp::Ordering;

use df_data::{Column, Scalar};

/// Comparison operators a zone map can reason about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Evaluate the operator on an ordering result.
    pub fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// Short SQL-ish symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Min/max/null statistics for one column over one page.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMap {
    /// Smallest non-null value, if any non-null row exists.
    pub min: Option<Scalar>,
    /// Largest non-null value.
    pub max: Option<Scalar>,
    /// Number of NULL rows.
    pub null_count: u64,
    /// Total rows covered.
    pub rows: u64,
}

impl ZoneMap {
    /// Compute the zone map of a column.
    pub fn of(column: &Column) -> ZoneMap {
        let mut min: Option<Scalar> = None;
        let mut max: Option<Scalar> = None;
        let mut null_count = 0u64;
        for i in 0..column.len() {
            let v = column.scalar_at(i);
            if v.is_null() {
                null_count += 1;
                continue;
            }
            match &min {
                None => min = Some(v.clone()),
                Some(m) if v.total_cmp(m) == Ordering::Less => min = Some(v.clone()),
                _ => {}
            }
            match &max {
                None => max = Some(v),
                Some(m) if v.total_cmp(m) == Ordering::Greater => max = Some(v),
                _ => {}
            }
        }
        ZoneMap {
            min,
            max,
            null_count,
            rows: column.len() as u64,
        }
    }

    /// Whether every covered row is NULL.
    pub fn all_null(&self) -> bool {
        self.null_count == self.rows
    }

    /// Conservative check: can the page be skipped for `col OP literal`?
    /// `true` means *no row can match*; `false` means "must read the page".
    /// NULL comparisons never match, so all-null pages are always skippable.
    pub fn can_skip(&self, op: CmpOp, literal: &Scalar) -> bool {
        if literal.is_null() {
            // `col OP NULL` matches nothing under SQL semantics.
            return true;
        }
        if self.all_null() {
            return true;
        }
        let (min, max) = match (&self.min, &self.max) {
            (Some(min), Some(max)) => (min, max),
            _ => return false, // inconsistent map: be conservative
        };
        match op {
            CmpOp::Eq => {
                literal.total_cmp(min) == Ordering::Less
                    || literal.total_cmp(max) == Ordering::Greater
            }
            CmpOp::Ne => {
                // Skippable only if every row equals the literal.
                min.total_cmp(max) == Ordering::Equal
                    && literal.total_cmp(min) == Ordering::Equal
                    && self.null_count == 0
            }
            CmpOp::Lt => literal.total_cmp(min) != Ordering::Greater,
            CmpOp::Le => literal.total_cmp(min) == Ordering::Less,
            CmpOp::Gt => literal.total_cmp(max) != Ordering::Less,
            CmpOp::Ge => literal.total_cmp(max) == Ordering::Greater,
        }
    }

    /// Merge two zone maps covering disjoint row sets (segment-level stats).
    pub fn merge(&self, other: &ZoneMap) -> ZoneMap {
        let pick = |a: &Option<Scalar>, b: &Option<Scalar>, want: Ordering| match (a, b) {
            (Some(x), Some(y)) => {
                if x.total_cmp(y) == want {
                    Some(x.clone())
                } else {
                    Some(y.clone())
                }
            }
            (Some(x), None) => Some(x.clone()),
            (None, Some(y)) => Some(y.clone()),
            (None, None) => None,
        };
        ZoneMap {
            min: pick(&self.min, &other.min, Ordering::Less),
            max: pick(&self.max, &other.max, Ordering::Greater),
            null_count: self.null_count + other.null_count,
            rows: self.rows + other.rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zm(values: &[Option<i64>]) -> ZoneMap {
        ZoneMap::of(&Column::from_opt_i64(values))
    }

    #[test]
    fn computes_min_max_nulls() {
        let z = zm(&[Some(5), None, Some(-3), Some(9)]);
        assert_eq!(z.min, Some(Scalar::Int(-3)));
        assert_eq!(z.max, Some(Scalar::Int(9)));
        assert_eq!(z.null_count, 1);
        assert_eq!(z.rows, 4);
    }

    #[test]
    fn eq_pruning() {
        let z = zm(&[Some(10), Some(20)]);
        assert!(z.can_skip(CmpOp::Eq, &Scalar::Int(5)));
        assert!(z.can_skip(CmpOp::Eq, &Scalar::Int(25)));
        assert!(!z.can_skip(CmpOp::Eq, &Scalar::Int(15)));
        assert!(!z.can_skip(CmpOp::Eq, &Scalar::Int(10)));
    }

    #[test]
    fn range_pruning() {
        let z = zm(&[Some(10), Some(20)]);
        assert!(z.can_skip(CmpOp::Lt, &Scalar::Int(10)));
        assert!(!z.can_skip(CmpOp::Lt, &Scalar::Int(11)));
        assert!(z.can_skip(CmpOp::Le, &Scalar::Int(9)));
        assert!(!z.can_skip(CmpOp::Le, &Scalar::Int(10)));
        assert!(z.can_skip(CmpOp::Gt, &Scalar::Int(20)));
        assert!(!z.can_skip(CmpOp::Gt, &Scalar::Int(19)));
        assert!(z.can_skip(CmpOp::Ge, &Scalar::Int(21)));
        assert!(!z.can_skip(CmpOp::Ge, &Scalar::Int(20)));
    }

    #[test]
    fn ne_pruning_needs_constant_page() {
        assert!(zm(&[Some(7), Some(7)]).can_skip(CmpOp::Ne, &Scalar::Int(7)));
        assert!(!zm(&[Some(7), Some(8)]).can_skip(CmpOp::Ne, &Scalar::Int(7)));
        // A NULL row does not equal 7, but it does not match `<> 7` either
        // under SQL semantics, so the page is still skippable... except our
        // conservative rule keeps it. Verify we only skip when provably safe.
        assert!(!zm(&[Some(7), None]).can_skip(CmpOp::Ne, &Scalar::Int(8)));
    }

    #[test]
    fn null_literal_always_skips() {
        let z = zm(&[Some(1), Some(2)]);
        assert!(z.can_skip(CmpOp::Eq, &Scalar::Null));
        assert!(z.can_skip(CmpOp::Lt, &Scalar::Null));
    }

    #[test]
    fn all_null_page_skips_everything() {
        let z = zm(&[None, None]);
        assert!(z.all_null());
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert!(z.can_skip(op, &Scalar::Int(0)), "{op:?}");
        }
    }

    #[test]
    fn string_zone_maps() {
        let z = ZoneMap::of(&Column::from_strs(&["banana", "apple", "cherry"]));
        assert_eq!(z.min, Some(Scalar::Str("apple".into())));
        assert_eq!(z.max, Some(Scalar::Str("cherry".into())));
        assert!(z.can_skip(CmpOp::Eq, &Scalar::Str("zebra".into())));
        assert!(!z.can_skip(CmpOp::Eq, &Scalar::Str("berry".into())));
    }

    #[test]
    fn merge_combines_ranges() {
        let a = zm(&[Some(1), Some(5)]);
        let b = zm(&[Some(3), Some(9), None]);
        let m = a.merge(&b);
        assert_eq!(m.min, Some(Scalar::Int(1)));
        assert_eq!(m.max, Some(Scalar::Int(9)));
        assert_eq!(m.null_count, 1);
        assert_eq!(m.rows, 5);
    }

    #[test]
    fn cmp_op_matches() {
        assert!(CmpOp::Le.matches(Ordering::Equal));
        assert!(CmpOp::Le.matches(Ordering::Less));
        assert!(!CmpOp::Le.matches(Ordering::Greater));
        assert!(CmpOp::Ne.matches(Ordering::Less));
    }
}
