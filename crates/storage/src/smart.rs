//! The smart-storage server: pushdown execution at the storage layer.
//!
//! §3.3's requirements, implemented literally:
//! - **streaming**: execution is page-at-a-time; a page's output is emitted
//!   before the next page is read, so no latency is added and nothing is
//!   buffered beyond one page;
//! - **mostly stateless**: selection, projection, and LIKE carry no state;
//!   pre-aggregation uses a *bounded* table that flushes partial groups
//!   downstream when full ("probably only to parts of the data rather than
//!   to the entire data set");
//! - **billing**: the server reports bytes scanned vs bytes returned, the
//!   Query-As-A-Service cost model (§3.2).

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use df_codec::wire::{self, WireOptions};
use df_data::{Batch, Column, ColumnBuilder, DataType, Field, Scalar, Schema, SchemaRef};
use df_sim::trace::{LaneId, LaneKind, Tracer};

use crate::predicate::StoragePredicate;
use crate::table::TableStore;
use crate::zonemap::ZoneMap;
use crate::{Result, StorageError};

/// Aggregate functions the storage layer can pre-compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count (of non-null inputs for a named column; `COUNT(*)` uses
    /// the group key count — pass any non-null column).
    Count,
    /// Sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl AggFunc {
    /// Column-name prefix for the output field.
    pub fn prefix(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// Bounded pre-aggregation specification.
#[derive(Debug, Clone)]
pub struct PreAggSpec {
    /// Group-by column names.
    pub group_by: Vec<String>,
    /// `(function, input column)` pairs.
    pub aggs: Vec<(AggFunc, String)>,
    /// Maximum distinct groups held before flushing partials downstream.
    pub max_groups: usize,
}

/// A pushed-down scan request — the "kernel" installed on the storage
/// server (§7.2).
#[derive(Debug, Clone)]
pub struct ScanRequest {
    /// Columns to return; `None` means all.
    pub projection: Option<Vec<String>>,
    /// Row filter.
    pub predicate: StoragePredicate,
    /// Optional bounded pre-aggregation applied after filtering.
    pub preagg: Option<PreAggSpec>,
    /// Stop after this many output rows (pre-aggregation output counts).
    pub limit: Option<u64>,
}

impl ScanRequest {
    /// Scan everything.
    pub fn full() -> ScanRequest {
        ScanRequest {
            projection: None,
            predicate: StoragePredicate::True,
            preagg: None,
            limit: None,
        }
    }

    /// Select columns.
    pub fn project(mut self, columns: &[&str]) -> Self {
        self.projection = Some(columns.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Apply a predicate.
    pub fn filter(mut self, predicate: StoragePredicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Apply bounded pre-aggregation.
    pub fn pre_aggregate(mut self, spec: PreAggSpec) -> Self {
        self.preagg = Some(spec);
        self
    }
}

/// Execution statistics: the billing and data-movement story.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Pages considered.
    pub pages_total: u64,
    /// Pages skipped via zone maps without reading any block.
    pub pages_pruned: u64,
    /// Bytes of blocks actually read from the object store.
    pub bytes_scanned: u64,
    /// Bytes of output shipped to the client (wire-encoded size).
    pub bytes_returned: u64,
    /// Rows read (after pruning, before filtering).
    pub rows_scanned: u64,
    /// Rows returned.
    pub rows_returned: u64,
}

impl ScanStats {
    /// The data-movement reduction factor bytes_scanned / bytes_returned.
    pub fn reduction_factor(&self) -> f64 {
        if self.bytes_returned == 0 {
            f64::INFINITY
        } else {
            self.bytes_scanned as f64 / self.bytes_returned as f64
        }
    }
}

/// The smart-storage server for one table store.
pub struct SmartStorage {
    tables: TableStore,
    /// Wire options for encoding results (compression on the return path).
    pub wire: WireOptions,
    /// Optional tracer; scans record a wall span on the storage lane.
    /// `OnceLock` keeps the disabled fast path lock-free.
    trace: OnceLock<(Arc<Tracer>, LaneId)>,
}

impl SmartStorage {
    /// A server over the given table store, returning plain (uncompressed)
    /// frames.
    pub fn new(tables: TableStore) -> Self {
        SmartStorage {
            tables,
            wire: WireOptions::plain(),
            trace: OnceLock::new(),
        }
    }

    /// Attach a tracer; subsequent scans record spans on `lane`. A second
    /// call is a no-op (the first tracer wins).
    pub fn set_tracer(&self, tracer: Arc<Tracer>, lane: &str) {
        let lane = tracer.lane(lane, LaneKind::Wall);
        let _ = self.trace.set((tracer, lane));
    }

    /// The underlying table store.
    pub fn tables(&self) -> &TableStore {
        &self.tables
    }

    /// Execute a pushed-down scan, streaming output batches through `sink`.
    /// Returns the execution statistics.
    pub fn scan_streaming(
        &self,
        table: &str,
        request: &ScanRequest,
        sink: &mut dyn FnMut(Batch),
    ) -> Result<ScanStats> {
        let schema = self.tables.schema(table)?;
        let readers = self.tables.open_segments(table)?;
        let mut stats = ScanStats::default();
        let mut _scan_span = self
            .trace
            .get()
            .map(|(t, lane)| t.span(*lane, &format!("scan [{table}]")));

        // Resolve the column sets once.
        let projection_names: Vec<String> = match (&request.preagg, &request.projection) {
            (Some(pre), _) => {
                // Pre-aggregation defines its own inputs.
                let mut names = pre.group_by.clone();
                names.extend(pre.aggs.iter().map(|(_, c)| c.clone()));
                names.sort();
                names.dedup();
                names
            }
            (None, Some(p)) => p.clone(),
            (None, None) => schema.fields().iter().map(|f| f.name.clone()).collect(),
        };
        let needed: Vec<String> = {
            let mut names = projection_names.clone();
            names.extend(request.predicate.columns());
            names.sort();
            names.dedup();
            names
        };
        let needed_idx: Vec<usize> = needed
            .iter()
            .map(|n| schema.index_of(n).map_err(StorageError::Data))
            .collect::<Result<Vec<_>>>()?;

        let mut preagg_state = request
            .preagg
            .as_ref()
            .map(|spec| PartialAggregator::new(spec.clone(), &schema));
        let mut emitted_rows = 0u64;
        let mut frame_counter = 0u64;

        'segments: for reader in &readers {
            for page in 0..reader.n_pages() {
                stats.pages_total += 1;
                // Zone-map pruning without touching any block.
                let prunable = {
                    let lookup = |name: &str| -> Option<ZoneMap> {
                        schema
                            .index_of(name)
                            .ok()
                            .map(|c| reader.page(page).blocks[c].zone.clone())
                    };
                    request.predicate.can_skip_page(&lookup)
                };
                if prunable {
                    stats.pages_pruned += 1;
                    continue;
                }
                // Read only the needed blocks (projection + predicate).
                for &c in &needed_idx {
                    stats.bytes_scanned += reader.page(page).blocks[c].len;
                }
                let batch = reader.read_page(page, &needed_idx)?;
                stats.rows_scanned += batch.rows() as u64;
                // Filter.
                let selection = request.predicate.evaluate(&batch)?;
                let filtered = if selection.all_set() {
                    batch
                } else {
                    batch.filter(&selection)?
                };
                if filtered.is_empty() {
                    continue;
                }
                // Project or pre-aggregate, then emit.
                let out = if let Some(state) = preagg_state.as_mut() {
                    state.consume(&filtered)?;
                    match state.take_flush() {
                        Some(flushed) => flushed,
                        None => continue,
                    }
                } else {
                    let cols: Vec<&str> = projection_names.iter().map(String::as_str).collect();
                    filtered.project_names(&cols)?
                };
                let out = self.apply_limit(out, &mut emitted_rows, request.limit);
                if !out.is_empty() {
                    stats.rows_returned += out.rows() as u64;
                    stats.bytes_returned += self.encoded_size(&out, &mut frame_counter) as u64;
                    sink(out);
                }
                if let Some(limit) = request.limit {
                    if emitted_rows >= limit {
                        break 'segments;
                    }
                }
            }
        }
        // Final pre-aggregation flush.
        if let Some(state) = preagg_state.as_mut() {
            let out = state.finish()?;
            if !out.is_empty() {
                let out = self.apply_limit(out, &mut emitted_rows, request.limit);
                if !out.is_empty() {
                    stats.rows_returned += out.rows() as u64;
                    stats.bytes_returned += self.encoded_size(&out, &mut frame_counter) as u64;
                    sink(out);
                }
            }
        }
        if let Some(span) = _scan_span.as_mut() {
            span.annotate("pages_total", stats.pages_total);
            span.annotate("pages_pruned", stats.pages_pruned);
            span.annotate("bytes_scanned", stats.bytes_scanned);
            span.annotate("bytes_returned", stats.bytes_returned);
            span.annotate("rows_returned", stats.rows_returned);
        }
        Ok(stats)
    }

    /// Execute a scan, collecting the output batches.
    pub fn scan(&self, table: &str, request: &ScanRequest) -> Result<(Vec<Batch>, ScanStats)> {
        let mut out = Vec::new();
        let stats = self.scan_streaming(table, request, &mut |b| out.push(b))?;
        Ok((out, stats))
    }

    fn apply_limit(&self, batch: Batch, emitted: &mut u64, limit: Option<u64>) -> Batch {
        match limit {
            None => {
                *emitted += batch.rows() as u64;
                batch
            }
            Some(limit) => {
                let left = limit.saturating_sub(*emitted) as usize;
                let take = left.min(batch.rows());
                *emitted += take as u64;
                if take == batch.rows() {
                    batch
                } else {
                    batch.slice(0, take)
                }
            }
        }
    }

    fn encoded_size(&self, batch: &Batch, counter: &mut u64) -> usize {
        let mut opts = self.wire;
        if let Some((_, c)) = opts.encrypt.as_mut() {
            *c = *counter;
        }
        *counter += 1;
        wire::wire_size(batch, &opts)
    }

    /// The schema a request's output batches will have.
    pub fn output_schema(&self, table: &str, request: &ScanRequest) -> Result<SchemaRef> {
        let schema = self.tables.schema(table)?;
        if let Some(pre) = &request.preagg {
            return Ok(PartialAggregator::output_schema(pre, &schema)?.into_ref());
        }
        match &request.projection {
            None => Ok(schema),
            Some(names) => {
                let idx = names
                    .iter()
                    .map(|n| schema.index_of(n).map_err(StorageError::Data))
                    .collect::<Result<Vec<_>>>()?;
                Ok(schema.project(&idx).into_ref())
            }
        }
    }
}

// --------------------------------------------------------- pre-aggregation

/// Merge *partial* aggregate batches (as produced by a bounded
/// [`PreAggSpec`] stage) into final per-group results.
///
/// This is what a downstream pipeline stage — a receiving NIC, a switch, or
/// the final CPU operator — runs to combine partials: counts and sums add,
/// mins/maxes fold. The input batches must all have the partial output
/// schema of `spec` (group columns then aggregate columns).
pub fn merge_partial_aggregates(batches: &[Batch], spec: &PreAggSpec) -> Result<Batch> {
    assert!(!batches.is_empty(), "nothing to merge");
    let schema = batches[0].schema().clone();
    // Partial columns merge with mapped functions: count -> sum of counts.
    let merged_spec = PreAggSpec {
        group_by: spec.group_by.clone(),
        aggs: spec
            .aggs
            .iter()
            .map(|(func, col)| {
                let partial_col = format!("{}_{}", func.prefix(), col);
                let merge_func = match func {
                    AggFunc::Count | AggFunc::Sum => AggFunc::Sum,
                    AggFunc::Min => AggFunc::Min,
                    AggFunc::Max => AggFunc::Max,
                };
                (merge_func, partial_col)
            })
            .collect(),
        max_groups: usize::MAX, // the final stage holds full state
    };
    let mut state = PartialAggregator::new(merged_spec, &schema);
    for batch in batches {
        state.consume(batch)?;
    }
    let merged = state.finish()?;
    // Restore the original partial column names so repeated merges compose.
    let fields = schema.fields().to_vec();
    Batch::new(Schema::new(fields).into_ref(), merged.columns().to_vec())
        .map_err(StorageError::Data)
}

/// Bounded partial aggregation state — the reusable kernel behind storage
/// pre-aggregation, NIC pre-aggregation stages, and in-switch merging.
pub struct PartialAggregator {
    spec: PreAggSpec,
    out_schema: SchemaRef,
    /// group key bytes -> (group scalars, accumulators)
    groups: HashMap<Vec<u8>, (Vec<Scalar>, Vec<Acc>)>,
    flushed: Vec<Batch>,
}

#[derive(Debug, Clone)]
enum Acc {
    Count(i64),
    SumInt(i64),
    SumFloat(f64),
    MinMax(Option<Scalar>, bool), // (current, is_min)
}

impl PartialAggregator {
    /// The partial-output schema for `spec` over `input`.
    pub fn output_schema(spec: &PreAggSpec, input: &SchemaRef) -> Result<Schema> {
        let mut fields = Vec::new();
        for g in &spec.group_by {
            fields.push(input.field_by_name(g).map_err(StorageError::Data)?.clone());
        }
        for (func, col) in &spec.aggs {
            let input_field = input.field_by_name(col).map_err(StorageError::Data)?;
            let dtype = match func {
                AggFunc::Count => DataType::Int64,
                AggFunc::Sum | AggFunc::Min | AggFunc::Max => input_field.dtype,
            };
            fields.push(Field::nullable(format!("{}_{}", func.prefix(), col), dtype));
        }
        // Repeated (func, col) pairs are legal (e.g. AVG decomposed next to
        // an explicit SUM): disambiguate positionally.
        let mut seen = std::collections::HashSet::new();
        for (i, f) in fields.iter_mut().enumerate() {
            if !seen.insert(f.name.clone()) {
                f.name = format!("{}__{i}", f.name);
                seen.insert(f.name.clone());
            }
        }
        Ok(Schema::new(fields))
    }

    /// A fresh aggregator. Panics if `spec` references unknown columns —
    /// validate with [`PartialAggregator::output_schema`] first.
    pub fn new(spec: PreAggSpec, input: &SchemaRef) -> PartialAggregator {
        let out_schema = Self::output_schema(&spec, input)
            .expect("caller validated columns")
            .into_ref();
        PartialAggregator {
            spec,
            out_schema,
            groups: HashMap::new(),
            flushed: Vec::new(),
        }
    }

    fn key_bytes(scalars: &[Scalar]) -> Vec<u8> {
        let mut key = Vec::with_capacity(scalars.len() * 9);
        for s in scalars {
            match s {
                Scalar::Null => key.push(0),
                Scalar::Int(v) => {
                    key.push(1);
                    key.extend_from_slice(&v.to_le_bytes());
                }
                Scalar::Float(v) => {
                    key.push(2);
                    key.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                Scalar::Str(v) => {
                    key.push(3);
                    key.extend_from_slice(&(v.len() as u32).to_le_bytes());
                    key.extend_from_slice(v.as_bytes());
                }
                Scalar::Bool(v) => key.extend_from_slice(&[4, *v as u8]),
            }
        }
        key
    }

    fn fresh_accs(&self) -> Vec<Acc> {
        self.spec
            .aggs
            .iter()
            .map(|(func, _)| match func {
                AggFunc::Count => Acc::Count(0),
                AggFunc::Sum => Acc::SumInt(0), // switches to float on demand
                AggFunc::Min => Acc::MinMax(None, true),
                AggFunc::Max => Acc::MinMax(None, false),
            })
            .collect()
    }

    /// Fold a filtered batch into the bounded group table, flushing
    /// partials internally when `max_groups` is exceeded.
    pub fn consume(&mut self, batch: &Batch) -> Result<()> {
        let group_cols: Vec<&Column> = self
            .spec
            .group_by
            .iter()
            .map(|n| batch.column_by_name(n).map_err(StorageError::Data))
            .collect::<Result<Vec<_>>>()?;
        let agg_cols: Vec<&Column> = self
            .spec
            .aggs
            .iter()
            .map(|(_, n)| batch.column_by_name(n).map_err(StorageError::Data))
            .collect::<Result<Vec<_>>>()?;
        for row in 0..batch.rows() {
            let key_scalars: Vec<Scalar> = group_cols.iter().map(|c| c.scalar_at(row)).collect();
            let key = Self::key_bytes(&key_scalars);
            if !self.groups.contains_key(&key) && self.groups.len() >= self.spec.max_groups {
                // Bounded state: flush partials downstream and restart.
                let flushed = self.drain_to_batch()?;
                self.flushed.push(flushed);
            }
            let fresh = self.fresh_accs();
            let accs = self
                .groups
                .entry(key)
                .or_insert_with(|| (key_scalars, fresh));
            for ((acc, (_, _)), col) in accs.1.iter_mut().zip(self.spec.aggs.iter()).zip(&agg_cols)
            {
                let value = col.scalar_at(row);
                update_acc(acc, &value);
            }
        }
        Ok(())
    }

    fn drain_to_batch(&mut self) -> Result<Batch> {
        let mut builders: Vec<ColumnBuilder> = self
            .out_schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.dtype, self.groups.len()))
            .collect();
        // Deterministic output order: sort by key bytes.
        let mut entries: Vec<_> = std::mem::take(&mut self.groups).into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        for (_, (scalars, accs)) in entries {
            for (i, s) in scalars.iter().enumerate() {
                builders[i].push(s.clone()).map_err(StorageError::Data)?;
            }
            for (i, acc) in accs.iter().enumerate() {
                let value = finish_acc(acc);
                builders[scalars.len() + i]
                    .push(value)
                    .map_err(StorageError::Data)?;
            }
        }
        let columns = builders.into_iter().map(ColumnBuilder::finish).collect();
        Batch::new(self.out_schema.clone(), columns).map_err(StorageError::Data)
    }

    /// Take any batches flushed due to the group bound (None if none).
    pub fn take_flush(&mut self) -> Option<Batch> {
        if self.flushed.is_empty() {
            None
        } else {
            let parts = std::mem::take(&mut self.flushed);
            Some(Batch::concat(&parts).expect("flush batches share schema"))
        }
    }

    /// Drain all remaining groups (plus pending flushes) as one batch.
    pub fn finish(&mut self) -> Result<Batch> {
        let last = self.drain_to_batch()?;
        self.flushed.push(last);
        Ok(self.take_flush().expect("at least one batch"))
    }
}

fn update_acc(acc: &mut Acc, value: &Scalar) {
    match acc {
        Acc::Count(n) => {
            if !value.is_null() {
                *n += 1;
            }
        }
        Acc::SumInt(n) => match value {
            Scalar::Int(v) => *n += v,
            Scalar::Float(v) => *acc = Acc::SumFloat(*n as f64 + v),
            _ => {}
        },
        Acc::SumFloat(n) => match value {
            Scalar::Int(v) => *n += *v as f64,
            Scalar::Float(v) => *n += v,
            _ => {}
        },
        Acc::MinMax(current, is_min) => {
            if value.is_null() {
                return;
            }
            let better = match current {
                None => true,
                Some(c) => {
                    let ord = value.total_cmp(c);
                    if *is_min {
                        ord == std::cmp::Ordering::Less
                    } else {
                        ord == std::cmp::Ordering::Greater
                    }
                }
            };
            if better {
                *current = Some(value.clone());
            }
        }
    }
}

fn finish_acc(acc: &Acc) -> Scalar {
    match acc {
        Acc::Count(n) => Scalar::Int(*n),
        Acc::SumInt(n) => Scalar::Int(*n),
        Acc::SumFloat(n) => Scalar::Float(*n),
        Acc::MinMax(v, _) => v.clone().unwrap_or(Scalar::Null),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::MemObjectStore;
    use crate::zonemap::CmpOp;
    use df_data::batch::batch_of;

    fn setup(n: usize) -> SmartStorage {
        let batch = batch_of(vec![
            ("id", Column::from_i64((0..n as i64).collect())),
            (
                "grp",
                Column::from_strs(&(0..n).map(|i| format!("g{}", i % 4)).collect::<Vec<_>>()),
            ),
            (
                "qty",
                Column::from_i64((0..n as i64).map(|i| i % 100).collect()),
            ),
            (
                "note",
                Column::from_strs(
                    &(0..n)
                        .map(|i| {
                            if i % 10 == 0 {
                                format!("urgent order {i}")
                            } else {
                                format!("normal order {i}")
                            }
                        })
                        .collect::<Vec<_>>(),
                ),
            ),
        ]);
        let ts = TableStore::new(MemObjectStore::shared());
        ts.create("orders", batch.schema()).unwrap();
        ts.append("orders", &[batch], 100_000, 256).unwrap();
        SmartStorage::new(ts)
    }

    #[test]
    fn full_scan_returns_everything() {
        let server = setup(1000);
        let (batches, stats) = server.scan("orders", &ScanRequest::full()).unwrap();
        let total: usize = batches.iter().map(Batch::rows).sum();
        assert_eq!(total, 1000);
        assert_eq!(stats.rows_returned, 1000);
        assert_eq!(stats.pages_pruned, 0);
        assert!(stats.bytes_returned > 0);
    }

    #[test]
    fn selection_filters_rows() {
        let server = setup(1000);
        let request = ScanRequest::full().filter(StoragePredicate::cmp("qty", CmpOp::Lt, 10i64));
        let (batches, stats) = server.scan("orders", &request).unwrap();
        let total: usize = batches.iter().map(Batch::rows).sum();
        assert_eq!(total, 100); // 10 of every 100
        assert!(stats.bytes_returned < stats.bytes_scanned);
        for b in &batches {
            let qty = b.column_by_name("qty").unwrap();
            for v in qty.i64_values().unwrap() {
                assert!(*v < 10);
            }
        }
    }

    #[test]
    fn projection_limits_columns_and_bytes() {
        let server = setup(1000);
        let request = ScanRequest::full().project(&["id"]);
        let (batches, stats) = server.scan("orders", &request).unwrap();
        assert_eq!(batches[0].schema().len(), 1);
        let full_stats = server.scan("orders", &ScanRequest::full()).unwrap().1;
        assert!(stats.bytes_scanned < full_stats.bytes_scanned);
        assert!(stats.bytes_returned < full_stats.bytes_returned);
    }

    #[test]
    fn zone_maps_prune_selective_scans() {
        let server = setup(10_000);
        // id >= 9900 touches only the last page(s); ids are sorted.
        let request = ScanRequest::full()
            .filter(StoragePredicate::cmp("id", CmpOp::Ge, 9900i64))
            .project(&["id"]);
        let (_, stats) = server.scan("orders", &request).unwrap();
        assert!(stats.pages_pruned > 0, "expected pruning, got {stats:?}");
        assert_eq!(stats.rows_returned, 100);
        assert!(stats.rows_scanned < 10_000);
    }

    #[test]
    fn like_pushdown() {
        let server = setup(1000);
        let request = ScanRequest::full()
            .filter(StoragePredicate::like("note", "urgent%"))
            .project(&["id", "note"]);
        let (batches, stats) = server.scan("orders", &request).unwrap();
        let total: usize = batches.iter().map(Batch::rows).sum();
        assert_eq!(total, 100);
        assert_eq!(stats.rows_returned, 100);
    }

    #[test]
    fn preagg_counts_and_sums() {
        let server = setup(1000);
        let request = ScanRequest::full().pre_aggregate(PreAggSpec {
            group_by: vec!["grp".into()],
            aggs: vec![(AggFunc::Count, "id".into()), (AggFunc::Sum, "qty".into())],
            max_groups: 1024,
        });
        let (batches, stats) = server.scan("orders", &request).unwrap();
        let merged = Batch::concat(&batches).unwrap();
        // No flushing happened (4 groups < 1024), but pages emit per-page
        // partials only on overflow; with no overflow we still merge at end.
        // Merge partials by group to check totals.
        let mut counts: HashMap<String, i64> = HashMap::new();
        let mut sums: HashMap<String, i64> = HashMap::new();
        for row in 0..merged.rows() {
            let g = merged.column(0).str_at(row).to_string();
            let c = merged.column(1).scalar_at(row).as_int().unwrap();
            let s = merged.column(2).scalar_at(row).as_int().unwrap();
            *counts.entry(g.clone()).or_default() += c;
            *sums.entry(g).or_default() += s;
        }
        assert_eq!(counts.len(), 4);
        for g in 0..4 {
            assert_eq!(counts[&format!("g{g}")], 250);
        }
        // Sum over all groups equals sum of qty.
        let total: i64 = sums.values().sum();
        let expected: i64 = (0..1000i64).map(|i| i % 100).sum();
        assert_eq!(total, expected);
        assert!(stats.bytes_returned < stats.bytes_scanned);
    }

    #[test]
    fn preagg_bounded_state_flushes() {
        let server = setup(1000);
        // Group by id: 1000 groups but only 16 slots -> must flush partials.
        let request = ScanRequest::full().pre_aggregate(PreAggSpec {
            group_by: vec!["id".into()],
            aggs: vec![(AggFunc::Count, "qty".into())],
            max_groups: 16,
        });
        let (batches, _) = server.scan("orders", &request).unwrap();
        let merged = Batch::concat(&batches).unwrap();
        assert_eq!(merged.rows(), 1000); // every group appears exactly once
    }

    #[test]
    fn limit_stops_early() {
        let server = setup(10_000);
        let request = ScanRequest {
            limit: Some(50),
            ..ScanRequest::full()
        };
        let (batches, stats) = server.scan("orders", &request).unwrap();
        let total: usize = batches.iter().map(Batch::rows).sum();
        assert_eq!(total, 50);
        // Early termination: we did not scan all pages.
        assert!(stats.rows_scanned < 10_000);
    }

    #[test]
    fn output_schema_matches_emitted_batches() {
        let server = setup(100);
        let request = ScanRequest::full().project(&["qty", "grp"]);
        let schema = server.output_schema("orders", &request).unwrap();
        let (batches, _) = server.scan("orders", &request).unwrap();
        assert_eq!(batches[0].schema().as_ref(), schema.as_ref());

        let agg_request = ScanRequest::full().pre_aggregate(PreAggSpec {
            group_by: vec!["grp".into()],
            aggs: vec![(AggFunc::Max, "qty".into())],
            max_groups: 64,
        });
        let agg_schema = server.output_schema("orders", &agg_request).unwrap();
        assert_eq!(agg_schema.field(1).name, "max_qty");
        let (agg_batches, _) = server.scan("orders", &agg_request).unwrap();
        assert_eq!(agg_batches[0].schema().as_ref(), agg_schema.as_ref());
    }

    #[test]
    fn min_max_aggregates() {
        let server = setup(1000);
        let request = ScanRequest::full().pre_aggregate(PreAggSpec {
            group_by: vec![],
            aggs: vec![(AggFunc::Min, "id".into()), (AggFunc::Max, "id".into())],
            max_groups: 4,
        });
        let (batches, _) = server.scan("orders", &request).unwrap();
        let merged = Batch::concat(&batches).unwrap();
        // Global (no group) partials: min of mins / max of maxes.
        let mins: Vec<i64> = (0..merged.rows())
            .map(|r| merged.column(0).scalar_at(r).as_int().unwrap())
            .collect();
        let maxes: Vec<i64> = (0..merged.rows())
            .map(|r| merged.column(1).scalar_at(r).as_int().unwrap())
            .collect();
        assert_eq!(mins.iter().min(), Some(&0));
        assert_eq!(maxes.iter().max(), Some(&999));
    }

    #[test]
    fn merge_partials_restores_exact_totals() {
        let server = setup(1000);
        let spec = PreAggSpec {
            group_by: vec!["grp".into()],
            aggs: vec![
                (AggFunc::Count, "id".into()),
                (AggFunc::Sum, "qty".into()),
                (AggFunc::Min, "qty".into()),
                (AggFunc::Max, "qty".into()),
            ],
            max_groups: 2, // force lots of partial flushes
        };
        let request = ScanRequest::full().pre_aggregate(spec.clone());
        let (partials, _) = server.scan("orders", &request).unwrap();
        let merged = merge_partial_aggregates(&partials, &spec).unwrap();
        assert_eq!(merged.rows(), 4);
        for row in 0..merged.rows() {
            let count = merged.column(1).scalar_at(row).as_int().unwrap();
            assert_eq!(count, 250);
            let min = merged.column(3).scalar_at(row).as_int().unwrap();
            let max = merged.column(4).scalar_at(row).as_int().unwrap();
            assert!(min <= max);
            assert!((0..100).contains(&min));
        }
        // Staged merging composes: merging the merged result is a no-op.
        let again = merge_partial_aggregates(std::slice::from_ref(&merged), &spec).unwrap();
        assert_eq!(merged.canonical_rows(), again.canonical_rows());
    }

    #[test]
    fn unknown_column_errors() {
        let server = setup(10);
        let request = ScanRequest::full().project(&["ghost"]);
        assert!(server.scan("orders", &request).is_err());
    }
}
