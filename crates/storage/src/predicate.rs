//! The predicate language the engine pushes down to storage.
//!
//! Deliberately self-contained (no dependency on the engine's expression
//! tree): this is the "kernel" a smart storage server accepts over the wire
//! (§3.3, §7.2). It supports exactly the operations the paper identifies as
//! storage-pushable — comparisons, ranges, LIKE, null tests, and boolean
//! combinations — and can both *evaluate* on a batch and *prune* with zone
//! maps.

use std::cmp::Ordering;

use df_data::{Batch, Bitmap, Scalar};

use crate::pattern::LikePattern;
use crate::zonemap::{CmpOp, ZoneMap};
use crate::{Result, StorageError};

/// A predicate evaluable by the storage layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StoragePredicate {
    /// `column OP literal`.
    Cmp {
        /// Column name.
        column: String,
        /// Comparison operator.
        op: CmpOp,
        /// Literal to compare against.
        literal: Scalar,
    },
    /// `column BETWEEN low AND high` (inclusive).
    Between {
        /// Column name.
        column: String,
        /// Lower bound.
        low: Scalar,
        /// Upper bound.
        high: Scalar,
    },
    /// `column LIKE pattern`.
    Like {
        /// Column name.
        column: String,
        /// LIKE pattern with `%`/`_`/`\` semantics.
        pattern: String,
    },
    /// `column IS [NOT] NULL`.
    IsNull {
        /// Column name.
        column: String,
        /// `true` for `IS NOT NULL`.
        negated: bool,
    },
    /// Conjunction.
    And(Vec<StoragePredicate>),
    /// Disjunction.
    Or(Vec<StoragePredicate>),
    /// Negation (SQL semantics: NULL comparisons stay non-matching).
    Not(Box<StoragePredicate>),
    /// Matches every row.
    True,
}

impl StoragePredicate {
    /// Shorthand for a comparison.
    pub fn cmp(column: impl Into<String>, op: CmpOp, literal: impl Into<Scalar>) -> Self {
        StoragePredicate::Cmp {
            column: column.into(),
            op,
            literal: literal.into(),
        }
    }

    /// Shorthand for LIKE.
    pub fn like(column: impl Into<String>, pattern: impl Into<String>) -> Self {
        StoragePredicate::Like {
            column: column.into(),
            pattern: pattern.into(),
        }
    }

    /// Column names this predicate reads (deduplicated, sorted).
    pub fn columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            StoragePredicate::Cmp { column, .. }
            | StoragePredicate::Between { column, .. }
            | StoragePredicate::Like { column, .. }
            | StoragePredicate::IsNull { column, .. } => out.push(column.clone()),
            StoragePredicate::And(children) | StoragePredicate::Or(children) => {
                for c in children {
                    c.collect_columns(out);
                }
            }
            StoragePredicate::Not(inner) => inner.collect_columns(out),
            StoragePredicate::True => {}
        }
    }

    /// Evaluate over a batch, producing a selection bitmap. SQL three-valued
    /// logic collapses to "NULL does not match".
    pub fn evaluate(&self, batch: &Batch) -> Result<Bitmap> {
        let rows = batch.rows();
        Ok(match self {
            StoragePredicate::True => Bitmap::ones(rows),
            StoragePredicate::Cmp {
                column,
                op,
                literal,
            } => {
                let col = batch.column_by_name(column)?;
                let mut bits = Bitmap::zeros(rows);
                if literal.is_null() {
                    return Ok(bits); // `x OP NULL` matches nothing
                }
                for i in 0..rows {
                    let v = col.scalar_at(i);
                    if !v.is_null() && op.matches(v.total_cmp(literal)) {
                        bits.set(i);
                    }
                }
                bits
            }
            StoragePredicate::Between { column, low, high } => {
                let col = batch.column_by_name(column)?;
                let mut bits = Bitmap::zeros(rows);
                if low.is_null() || high.is_null() {
                    return Ok(bits);
                }
                for i in 0..rows {
                    let v = col.scalar_at(i);
                    if !v.is_null()
                        && v.total_cmp(low) != Ordering::Less
                        && v.total_cmp(high) != Ordering::Greater
                    {
                        bits.set(i);
                    }
                }
                bits
            }
            StoragePredicate::Like { column, pattern } => {
                let col = batch.column_by_name(column)?;
                if col.data_type() != df_data::DataType::Utf8 {
                    return Err(StorageError::Data(df_data::DataError::TypeMismatch {
                        expected: "utf8".into(),
                        actual: col.data_type().to_string(),
                    }));
                }
                let compiled = LikePattern::compile(pattern);
                let mut bits = Bitmap::zeros(rows);
                for i in 0..rows {
                    if !col.is_null(i) && compiled.matches(col.str_at(i)) {
                        bits.set(i);
                    }
                }
                bits
            }
            StoragePredicate::IsNull { column, negated } => {
                let col = batch.column_by_name(column)?;
                Bitmap::from_iter((0..rows).map(|i| col.is_null(i) != *negated))
            }
            StoragePredicate::And(children) => {
                let mut bits = Bitmap::ones(rows);
                for c in children {
                    bits = bits.and(&c.evaluate(batch)?);
                }
                bits
            }
            StoragePredicate::Or(children) => {
                let mut bits = Bitmap::zeros(rows);
                for c in children {
                    bits = bits.or(&c.evaluate(batch)?);
                }
                bits
            }
            StoragePredicate::Not(inner) => {
                // SQL NOT over two-valued collapse: rows where the inner
                // predicate *matched* become non-matching and vice versa,
                // except NULL operands must stay non-matching. We get that
                // by also requiring the operand columns to be non-null.
                let inner_bits = inner.evaluate(batch)?;
                let mut bits = inner_bits.not();
                for column in inner.columns() {
                    let col = batch.column_by_name(&column)?;
                    if col.null_count() > 0 {
                        let non_null = Bitmap::from_iter((0..rows).map(|i| !col.is_null(i)));
                        bits = bits.and(&non_null);
                    }
                }
                bits
            }
        })
    }

    /// Conservative page pruning: `true` means the zone maps *prove* no row
    /// of the page can match. `lookup` maps a column name to its page zone
    /// map (absent means unknown → not skippable).
    pub fn can_skip_page(&self, lookup: &dyn Fn(&str) -> Option<ZoneMap>) -> bool {
        match self {
            StoragePredicate::True => false,
            StoragePredicate::Cmp {
                column,
                op,
                literal,
            } => lookup(column).is_some_and(|zm| zm.can_skip(*op, literal)),
            StoragePredicate::Between { column, low, high } => lookup(column)
                .is_some_and(|zm| zm.can_skip(CmpOp::Ge, low) || zm.can_skip(CmpOp::Le, high)),
            StoragePredicate::Like { column, pattern } => {
                // Prefix patterns prune like a range on the prefix.
                match LikePattern::compile(pattern).literal_prefix() {
                    Some(prefix) if !prefix.is_empty() => lookup(column).is_some_and(|zm| {
                        let lo = Scalar::Str(prefix.clone());
                        if zm.can_skip(CmpOp::Ge, &lo) {
                            return true;
                        }
                        prefix_successor(&prefix)
                            .is_some_and(|succ| zm.can_skip(CmpOp::Lt, &Scalar::Str(succ)))
                    }),
                    _ => false,
                }
            }
            StoragePredicate::IsNull { column, negated } => lookup(column).is_some_and(|zm| {
                if *negated {
                    zm.all_null()
                } else {
                    zm.null_count == 0
                }
            }),
            StoragePredicate::And(children) => children.iter().any(|c| c.can_skip_page(lookup)),
            StoragePredicate::Or(children) => {
                !children.is_empty() && children.iter().all(|c| c.can_skip_page(lookup))
            }
            StoragePredicate::Not(_) => false, // stay conservative
        }
    }
}

/// The smallest string strictly greater than every string with `prefix`:
/// increment the last character. `None` if the prefix is all U+10FFFF.
fn prefix_successor(prefix: &str) -> Option<String> {
    let mut chars: Vec<char> = prefix.chars().collect();
    while let Some(last) = chars.pop() {
        let next = (last as u32 + 1..=0x10FFFF).find_map(char::from_u32);
        if let Some(n) = next {
            chars.push(n);
            return Some(chars.into_iter().collect());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_data::batch::batch_of;
    use df_data::Column;

    fn sample() -> Batch {
        batch_of(vec![
            ("id", Column::from_i64(vec![1, 2, 3, 4, 5])),
            (
                "name",
                Column::from_opt_strs(&[
                    Some("apple"),
                    Some("banana"),
                    None,
                    Some("avocado"),
                    Some("cherry"),
                ]),
            ),
            (
                "qty",
                Column::from_opt_i64(&[Some(10), None, Some(30), Some(40), Some(50)]),
            ),
        ])
    }

    fn selected(pred: &StoragePredicate) -> Vec<usize> {
        pred.evaluate(&sample()).unwrap().iter_ones().collect()
    }

    #[test]
    fn cmp_basic() {
        let p = StoragePredicate::cmp("id", CmpOp::Gt, 3i64);
        assert_eq!(selected(&p), vec![3, 4]);
    }

    #[test]
    fn cmp_nulls_never_match() {
        let p = StoragePredicate::cmp("qty", CmpOp::Ge, 0i64);
        assert_eq!(selected(&p), vec![0, 2, 3, 4]); // row 1 is NULL
        let pnull = StoragePredicate::cmp("qty", CmpOp::Eq, Scalar::Null);
        assert!(selected(&pnull).is_empty());
    }

    #[test]
    fn between_inclusive() {
        let p = StoragePredicate::Between {
            column: "id".into(),
            low: Scalar::Int(2),
            high: Scalar::Int(4),
        };
        assert_eq!(selected(&p), vec![1, 2, 3]);
    }

    #[test]
    fn like_on_strings() {
        let p = StoragePredicate::like("name", "a%");
        assert_eq!(selected(&p), vec![0, 3]); // apple, avocado; NULL skipped
    }

    #[test]
    fn like_on_ints_errors() {
        let p = StoragePredicate::like("id", "a%");
        assert!(p.evaluate(&sample()).is_err());
    }

    #[test]
    fn is_null_and_not_null() {
        let p = StoragePredicate::IsNull {
            column: "qty".into(),
            negated: false,
        };
        assert_eq!(selected(&p), vec![1]);
        let n = StoragePredicate::IsNull {
            column: "qty".into(),
            negated: true,
        };
        assert_eq!(selected(&n), vec![0, 2, 3, 4]);
    }

    #[test]
    fn and_or_combinations() {
        let p = StoragePredicate::And(vec![
            StoragePredicate::cmp("id", CmpOp::Ge, 2i64),
            StoragePredicate::cmp("id", CmpOp::Le, 4i64),
        ]);
        assert_eq!(selected(&p), vec![1, 2, 3]);
        let q = StoragePredicate::Or(vec![
            StoragePredicate::cmp("id", CmpOp::Eq, 1i64),
            StoragePredicate::cmp("id", CmpOp::Eq, 5i64),
        ]);
        assert_eq!(selected(&q), vec![0, 4]);
    }

    #[test]
    fn not_respects_null_semantics() {
        // NOT (qty > 20): NULL qty rows match neither the inner nor the NOT.
        let p = StoragePredicate::Not(Box::new(StoragePredicate::cmp("qty", CmpOp::Gt, 20i64)));
        assert_eq!(selected(&p), vec![0]); // only qty=10; row 1 NULL excluded
    }

    #[test]
    fn true_matches_all() {
        assert_eq!(selected(&StoragePredicate::True), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn columns_collected() {
        let p = StoragePredicate::And(vec![
            StoragePredicate::cmp("id", CmpOp::Gt, 1i64),
            StoragePredicate::like("name", "a%"),
            StoragePredicate::cmp("id", CmpOp::Lt, 9i64),
        ]);
        assert_eq!(p.columns(), vec!["id".to_string(), "name".to_string()]);
    }

    #[test]
    fn pruning_cmp() {
        let zm_for = |_: &str| Some(ZoneMap::of(&Column::from_i64(vec![10, 20])));
        assert!(StoragePredicate::cmp("id", CmpOp::Gt, 25i64).can_skip_page(&zm_for));
        assert!(!StoragePredicate::cmp("id", CmpOp::Gt, 15i64).can_skip_page(&zm_for));
        // Unknown column: not skippable.
        let unknown = |_: &str| None;
        assert!(!StoragePredicate::cmp("id", CmpOp::Gt, 25i64).can_skip_page(&unknown));
    }

    #[test]
    fn pruning_and_or() {
        let zm_for = |_: &str| Some(ZoneMap::of(&Column::from_i64(vec![10, 20])));
        let impossible = StoragePredicate::cmp("id", CmpOp::Gt, 99i64);
        let possible = StoragePredicate::cmp("id", CmpOp::Gt, 0i64);
        assert!(
            StoragePredicate::And(vec![possible.clone(), impossible.clone()])
                .can_skip_page(&zm_for)
        );
        assert!(!StoragePredicate::Or(vec![possible, impossible.clone()]).can_skip_page(&zm_for));
        assert!(StoragePredicate::Or(vec![impossible.clone(), impossible]).can_skip_page(&zm_for));
    }

    #[test]
    fn pruning_like_prefix() {
        let zm_for = |_: &str| {
            Some(ZoneMap::of(&Column::from_strs(&[
                "mango",
                "melon",
                "nectarine",
            ])))
        };
        assert!(StoragePredicate::like("name", "z%").can_skip_page(&zm_for));
        assert!(StoragePredicate::like("name", "a%").can_skip_page(&zm_for));
        assert!(!StoragePredicate::like("name", "m%").can_skip_page(&zm_for));
        // Non-prefix patterns never prune.
        assert!(!StoragePredicate::like("name", "%z%").can_skip_page(&zm_for));
    }

    #[test]
    fn pruning_never_drops_matches() {
        // Soundness spot-check: if a page can be skipped, evaluating the
        // predicate on that page must select nothing.
        let batch = sample();
        let preds = [
            StoragePredicate::cmp("id", CmpOp::Gt, 10i64),
            StoragePredicate::cmp("id", CmpOp::Lt, 0i64),
            StoragePredicate::like("name", "zz%"),
            StoragePredicate::cmp("id", CmpOp::Eq, 3i64),
            StoragePredicate::like("name", "a%"),
        ];
        let lookup = |name: &str| batch.column_by_name(name).ok().map(ZoneMap::of);
        for p in preds {
            if p.can_skip_page(&lookup) {
                assert_eq!(
                    p.evaluate(&batch).unwrap().count_ones(),
                    0,
                    "pruned page had matches for {p:?}"
                );
            }
        }
    }

    #[test]
    fn prefix_successor_edge_cases() {
        assert_eq!(prefix_successor("abc"), Some("abd".to_string()));
        assert_eq!(prefix_successor("a\u{10FFFF}"), Some("b".to_string()));
        assert_eq!(prefix_successor(""), None);
    }
}
