//! The columnar segment format.
//!
//! A segment is one immutable object holding a run of rows in columnar
//! pages. Each (page, column) pair is an independently readable *block*
//! (encoded column + CRC), and the footer is a directory of block offsets
//! plus zone maps. Projection therefore reads only the blocks it needs —
//! the physical property that makes storage-side projection (Figure 2)
//! reduce bytes *scanned*, not just bytes *returned*.
//!
//! Layout:
//! ```text
//! [block 0][block 1]...[block N-1][footer][footer_len: u32 LE][magic "DFSG"]
//! block  := encode_column bytes ++ crc32(bytes) (4 B LE)
//! footer := schema ++ n_pages ++ per page: row_count ++
//!           per (page, column): offset, len, zonemap
//! zonemap := min scalar ++ max scalar ++ null_count ++ rows
//! ```

use df_codec::checksum::crc32;
use df_codec::{varint, wire, CodecError};
use df_data::{Batch, Column, Scalar, SchemaRef};

use crate::object::ObjectStoreRef;
use crate::zonemap::ZoneMap;
use crate::{Result, StorageError};

const MAGIC: &[u8; 4] = b"DFSG";

/// Default rows per page (small enough that pruning has resolution, large
/// enough that per-page overhead is negligible).
pub const DEFAULT_PAGE_ROWS: usize = 4096;

/// Location and statistics of one block within a segment.
#[derive(Debug, Clone)]
pub struct BlockMeta {
    /// Byte offset within the object.
    pub offset: u64,
    /// Encoded length in bytes (including the trailing CRC).
    pub len: u64,
    /// Zone map of the column values in this page.
    pub zone: ZoneMap,
}

/// Per-page metadata.
#[derive(Debug, Clone)]
pub struct PageMeta {
    /// Rows in the page.
    pub rows: u64,
    /// One block per schema column.
    pub blocks: Vec<BlockMeta>,
}

/// Builds a segment from batches.
pub struct SegmentWriter {
    schema: SchemaRef,
    page_rows: usize,
    buffer: Vec<Batch>,
    buffered_rows: usize,
    body: Vec<u8>,
    pages: Vec<PageMeta>,
}

impl SegmentWriter {
    /// A writer for `schema` cutting pages of `page_rows` rows.
    pub fn new(schema: SchemaRef, page_rows: usize) -> Self {
        assert!(page_rows > 0, "page_rows must be positive");
        SegmentWriter {
            schema,
            page_rows,
            buffer: Vec::new(),
            buffered_rows: 0,
            body: Vec::new(),
            pages: Vec::new(),
        }
    }

    /// Append a batch (must match the segment schema).
    pub fn push(&mut self, batch: &Batch) -> Result<()> {
        if batch.schema().as_ref() != self.schema.as_ref() {
            return Err(StorageError::Corrupt(format!(
                "batch schema {} does not match segment schema {}",
                batch.schema(),
                self.schema
            )));
        }
        if batch.is_empty() {
            return Ok(());
        }
        self.buffer.push(batch.clone());
        self.buffered_rows += batch.rows();
        while self.buffered_rows >= self.page_rows {
            self.cut_page(self.page_rows)?;
        }
        Ok(())
    }

    fn cut_page(&mut self, rows: usize) -> Result<()> {
        let merged = Batch::concat(&self.buffer)?;
        let page = merged.slice(0, rows.min(merged.rows()));
        let rest_rows = merged.rows() - page.rows();
        self.buffer = if rest_rows > 0 {
            vec![merged.slice(page.rows(), rest_rows)]
        } else {
            Vec::new()
        };
        self.buffered_rows = rest_rows;
        let mut blocks = Vec::with_capacity(page.columns().len());
        for column in page.columns() {
            let offset = self.body.len() as u64;
            let mut encoded = Vec::new();
            wire::encode_column(&mut encoded, column);
            let crc = crc32(&encoded);
            self.body.extend_from_slice(&encoded);
            self.body.extend_from_slice(&crc.to_le_bytes());
            blocks.push(BlockMeta {
                offset,
                len: (encoded.len() + 4) as u64,
                zone: ZoneMap::of(column),
            });
        }
        self.pages.push(PageMeta {
            rows: page.rows() as u64,
            blocks,
        });
        Ok(())
    }

    /// Total rows pushed so far (including buffered).
    pub fn rows(&self) -> usize {
        self.pages.iter().map(|p| p.rows as usize).sum::<usize>() + self.buffered_rows
    }

    /// Finish the segment, returning the serialized object bytes.
    pub fn finish(mut self) -> Result<Vec<u8>> {
        if self.buffered_rows > 0 {
            self.cut_page(self.buffered_rows)?;
        }
        let mut out = self.body;
        let footer_start = out.len();
        wire::encode_schema(&mut out, &self.schema);
        varint::write_u64(&mut out, self.pages.len() as u64);
        for page in &self.pages {
            varint::write_u64(&mut out, page.rows);
            for block in &page.blocks {
                varint::write_u64(&mut out, block.offset);
                varint::write_u64(&mut out, block.len);
                encode_zone(&mut out, &block.zone);
            }
        }
        let footer_len = (out.len() - footer_start) as u32;
        out.extend_from_slice(&footer_len.to_le_bytes());
        out.extend_from_slice(MAGIC);
        Ok(out)
    }
}

fn encode_zone(out: &mut Vec<u8>, zone: &ZoneMap) {
    wire::encode_scalar(out, zone.min.as_ref().unwrap_or(&Scalar::Null));
    wire::encode_scalar(out, zone.max.as_ref().unwrap_or(&Scalar::Null));
    varint::write_u64(out, zone.null_count);
    varint::write_u64(out, zone.rows);
}

fn decode_zone(buf: &[u8], pos: &mut usize) -> std::result::Result<ZoneMap, CodecError> {
    let min = wire::decode_scalar(buf, pos)?;
    let max = wire::decode_scalar(buf, pos)?;
    let null_count = varint::read_u64(buf, pos)?;
    let rows = varint::read_u64(buf, pos)?;
    Ok(ZoneMap {
        min: (!min.is_null()).then_some(min),
        max: (!max.is_null()).then_some(max),
        null_count,
        rows,
    })
}

/// Reads a segment through an object store using range requests, so bytes
/// scanned are exactly the blocks touched (plus the footer).
pub struct SegmentReader {
    store: ObjectStoreRef,
    key: String,
    schema: SchemaRef,
    pages: Vec<PageMeta>,
}

impl SegmentReader {
    /// Open a segment: reads and validates the footer only.
    pub fn open(store: ObjectStoreRef, key: &str) -> Result<SegmentReader> {
        let size = store.size(key)?;
        if size < 8 {
            return Err(StorageError::Corrupt("segment too small".into()));
        }
        let tail = store.get_range(key, size - 8, 8)?;
        if &tail[4..] != MAGIC {
            return Err(StorageError::Corrupt("bad segment magic".into()));
        }
        let footer_len = u32::from_le_bytes(tail[..4].try_into().unwrap()) as u64;
        if footer_len + 8 > size {
            return Err(StorageError::Corrupt("footer larger than object".into()));
        }
        let footer = store.get_range(key, size - 8 - footer_len, footer_len)?;
        let mut pos = 0usize;
        let schema = wire::decode_schema(&footer, &mut pos)?.into_ref();
        let n_pages = varint::read_u64(&footer, &mut pos)? as usize;
        if n_pages > footer.len() {
            return Err(StorageError::Corrupt("page count implausible".into()));
        }
        let mut pages = Vec::with_capacity(n_pages);
        for _ in 0..n_pages {
            let rows = varint::read_u64(&footer, &mut pos)?;
            let mut blocks = Vec::with_capacity(schema.len());
            for _ in 0..schema.len() {
                let offset = varint::read_u64(&footer, &mut pos)?;
                let len = varint::read_u64(&footer, &mut pos)?;
                let zone = decode_zone(&footer, &mut pos)?;
                blocks.push(BlockMeta { offset, len, zone });
            }
            pages.push(PageMeta { rows, blocks });
        }
        if pos != footer.len() {
            return Err(StorageError::Corrupt("trailing footer bytes".into()));
        }
        Ok(SegmentReader {
            store,
            key: key.to_string(),
            schema,
            pages,
        })
    }

    /// The segment schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of pages.
    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    /// Total rows in the segment.
    pub fn rows(&self) -> u64 {
        self.pages.iter().map(|p| p.rows).sum()
    }

    /// Page metadata (zone maps etc.).
    pub fn page(&self, page: usize) -> &PageMeta {
        &self.pages[page]
    }

    /// Read one column block, verifying its CRC.
    pub fn read_column(&self, page: usize, column: usize) -> Result<Column> {
        let meta = &self.pages[page].blocks[column];
        let raw = self.store.get_range(&self.key, meta.offset, meta.len)?;
        if raw.len() < 4 {
            return Err(StorageError::Corrupt("block too small".into()));
        }
        let (body, crc_bytes) = raw.split_at(raw.len() - 4);
        let expected = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        let actual = crc32(body);
        if expected != actual {
            return Err(StorageError::Codec(CodecError::ChecksumMismatch {
                expected,
                actual,
            }));
        }
        let mut pos = 0usize;
        let dtype = self.schema.field(column).dtype;
        let col = wire::decode_column(body, &mut pos, dtype)?;
        if pos != body.len() {
            return Err(StorageError::Corrupt("trailing block bytes".into()));
        }
        Ok(col)
    }

    /// Read a page restricted to the given column indices (projection).
    pub fn read_page(&self, page: usize, projection: &[usize]) -> Result<Batch> {
        let schema = self.schema.project(projection).into_ref();
        let columns = projection
            .iter()
            .map(|&c| self.read_column(page, c))
            .collect::<Result<Vec<_>>>()?;
        Batch::new(schema, columns).map_err(StorageError::Data)
    }

    /// Read the whole page (all columns).
    pub fn read_full_page(&self, page: usize) -> Result<Batch> {
        let all: Vec<usize> = (0..self.schema.len()).collect();
        self.read_page(page, &all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::MemObjectStore;
    use df_data::batch::batch_of;
    use df_data::Column;
    use std::sync::Arc;

    fn sample_batch(start: i64, n: usize) -> Batch {
        batch_of(vec![
            ("id", Column::from_i64((start..start + n as i64).collect())),
            (
                "name",
                Column::from_strs(
                    &(0..n)
                        .map(|i| format!("name-{}", start + i as i64))
                        .collect::<Vec<_>>(),
                ),
            ),
            (
                "score",
                Column::from_f64((0..n).map(|i| i as f64 * 0.25).collect()),
            ),
        ])
    }

    fn write_segment(page_rows: usize) -> (ObjectStoreRef, String) {
        let batch = sample_batch(0, 1000);
        let mut writer = SegmentWriter::new(batch.schema().clone(), page_rows);
        // Push in uneven batches to exercise buffering.
        for chunk in batch.split(137).unwrap() {
            writer.push(&chunk).unwrap();
        }
        let bytes = writer.finish().unwrap();
        let store: ObjectStoreRef = Arc::new(MemObjectStore::new());
        store.put("t/seg0", bytes).unwrap();
        (store, "t/seg0".to_string())
    }

    #[test]
    fn roundtrip_full_segment() {
        let (store, key) = write_segment(256);
        let reader = SegmentReader::open(store, &key).unwrap();
        assert_eq!(reader.rows(), 1000);
        assert_eq!(reader.n_pages(), 4); // 256*3 + 232
        let mut batches = Vec::new();
        for p in 0..reader.n_pages() {
            batches.push(reader.read_full_page(p).unwrap());
        }
        let merged = Batch::concat(&batches).unwrap();
        assert_eq!(
            merged.canonical_rows(),
            sample_batch(0, 1000).canonical_rows()
        );
    }

    #[test]
    fn projection_reads_fewer_bytes() {
        let (store, key) = write_segment(256);
        let reader = SegmentReader::open(store.clone(), &key).unwrap();
        store.reset_stats();
        let name_idx = 1usize;
        for p in 0..reader.n_pages() {
            reader.read_page(p, &[name_idx]).unwrap();
        }
        let projected = store.stats().bytes_read;
        store.reset_stats();
        for p in 0..reader.n_pages() {
            reader.read_full_page(p).unwrap();
        }
        let full = store.stats().bytes_read;
        assert!(
            projected * 2 < full,
            "projected={projected} not << full={full}"
        );
    }

    #[test]
    fn zone_maps_cover_pages() {
        let (store, key) = write_segment(250);
        let reader = SegmentReader::open(store, &key).unwrap();
        // Page 1 covers ids 250..500.
        let zone = &reader.page(1).blocks[0].zone;
        assert_eq!(zone.min, Some(Scalar::Int(250)));
        assert_eq!(zone.max, Some(Scalar::Int(499)));
        assert_eq!(zone.rows, 250);
    }

    #[test]
    fn corrupted_block_detected() {
        let (store, key) = write_segment(500);
        let mut bytes = store.get(&key).unwrap();
        bytes[10] ^= 0xff; // corrupt within the first block
        store.put(&key, bytes).unwrap();
        let reader = SegmentReader::open(store, &key).unwrap();
        assert!(matches!(
            reader.read_column(0, 0),
            Err(StorageError::Codec(CodecError::ChecksumMismatch { .. }))
        ));
    }

    #[test]
    fn truncated_object_rejected_at_open() {
        let (store, key) = write_segment(500);
        let bytes = store.get(&key).unwrap();
        store.put(&key, bytes[..bytes.len() / 2].to_vec()).unwrap();
        assert!(SegmentReader::open(store, &key).is_err());
    }

    #[test]
    fn schema_mismatch_on_push_rejected() {
        let batch = sample_batch(0, 10);
        let mut writer = SegmentWriter::new(batch.schema().clone(), 100);
        let other = batch_of(vec![("x", Column::from_i64(vec![1]))]);
        assert!(writer.push(&other).is_err());
    }

    #[test]
    fn empty_segment_roundtrip() {
        let batch = sample_batch(0, 0);
        let writer = SegmentWriter::new(batch.schema().clone(), 100);
        let bytes = writer.finish().unwrap();
        let store: ObjectStoreRef = Arc::new(MemObjectStore::new());
        store.put("e", bytes).unwrap();
        let reader = SegmentReader::open(store, "e").unwrap();
        assert_eq!(reader.n_pages(), 0);
        assert_eq!(reader.rows(), 0);
    }

    #[test]
    fn nullable_columns_roundtrip() {
        let batch = batch_of(vec![(
            "v",
            Column::from_opt_i64(
                &(0..100)
                    .map(|i| if i % 3 == 0 { None } else { Some(i) })
                    .collect::<Vec<_>>(),
            ),
        )]);
        let mut writer = SegmentWriter::new(batch.schema().clone(), 40);
        writer.push(&batch).unwrap();
        let store: ObjectStoreRef = Arc::new(MemObjectStore::new());
        store.put("n", writer.finish().unwrap()).unwrap();
        let reader = SegmentReader::open(store, "n").unwrap();
        let mut parts = Vec::new();
        for p in 0..reader.n_pages() {
            parts.push(reader.read_full_page(p).unwrap());
        }
        let merged = Batch::concat(&parts).unwrap();
        assert_eq!(merged.canonical_rows(), batch.canonical_rows());
        // Zone maps carry the null counts.
        assert_eq!(reader.page(0).blocks[0].zone.null_count, 14);
    }
}
