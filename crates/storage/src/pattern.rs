//! SQL `LIKE` pattern matching, usable as a streaming storage-side kernel.
//!
//! §3.3 cites Amazon AQUA pushing down the LIKE predicate because pattern
//! matching "has been proven to be more efficient on accelerators than on a
//! CPU". This module implements the matcher both sides use, so offloaded and
//! host execution agree bit-for-bit.
//!
//! Supported metacharacters: `%` (any run, including empty), `_` (exactly
//! one character), and `\` as the escape character.

/// A compiled LIKE pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LikePattern {
    tokens: Vec<Token>,
    /// The source pattern, for display.
    source: String,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    /// A literal character.
    Char(char),
    /// `_`: exactly one character.
    AnyOne,
    /// `%`: zero or more characters.
    AnyRun,
}

impl LikePattern {
    /// Compile a pattern. Trailing bare escapes are treated as a literal
    /// backslash (matching permissive engine behaviour).
    pub fn compile(pattern: &str) -> LikePattern {
        let mut tokens = Vec::with_capacity(pattern.len());
        let mut chars = pattern.chars();
        while let Some(c) = chars.next() {
            match c {
                '%' => {
                    // Collapse runs of % (equivalent and cheaper to match).
                    if tokens.last() != Some(&Token::AnyRun) {
                        tokens.push(Token::AnyRun);
                    }
                }
                '_' => tokens.push(Token::AnyOne),
                '\\' => tokens.push(Token::Char(chars.next().unwrap_or('\\'))),
                other => tokens.push(Token::Char(other)),
            }
        }
        LikePattern {
            tokens,
            source: pattern.to_string(),
        }
    }

    /// The original pattern text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Whether `input` matches the pattern (anchored at both ends, as SQL
    /// LIKE requires).
    pub fn matches(&self, input: &str) -> bool {
        let chars: Vec<char> = input.chars().collect();
        // Iterative two-pointer algorithm with backtracking over the last
        // `%`: O(n*m) worst case, O(n) typical, no recursion.
        let (mut ti, mut ci) = (0usize, 0usize);
        let mut star: Option<(usize, usize)> = None; // (token after %, char idx)
        while ci < chars.len() {
            match self.tokens.get(ti) {
                Some(Token::Char(p)) if *p == chars[ci] => {
                    ti += 1;
                    ci += 1;
                }
                Some(Token::AnyOne) => {
                    ti += 1;
                    ci += 1;
                }
                Some(Token::AnyRun) => {
                    star = Some((ti + 1, ci));
                    ti += 1;
                }
                _ => match star {
                    Some((st, sc)) => {
                        // Let the last % absorb one more character.
                        ti = st;
                        ci = sc + 1;
                        star = Some((st, sc + 1));
                    }
                    None => return false,
                },
            }
        }
        // Remaining tokens must all be %.
        self.tokens[ti..].iter().all(|t| *t == Token::AnyRun)
    }

    /// Whether this pattern is a pure prefix match (`abc%`), which storage
    /// can additionally prune with string zone maps.
    pub fn literal_prefix(&self) -> Option<String> {
        let mut prefix = String::new();
        for (i, t) in self.tokens.iter().enumerate() {
            match t {
                Token::Char(c) => prefix.push(*c),
                Token::AnyRun if i + 1 == self.tokens.len() => {
                    return Some(prefix);
                }
                _ => return None,
            }
        }
        None
    }
}

/// Convenience: compile-and-match in one call (host-side expression path).
pub fn like(input: &str, pattern: &str) -> bool {
    LikePattern::compile(pattern).matches(input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_without_metachars() {
        assert!(like("hello", "hello"));
        assert!(!like("hello", "hell"));
        assert!(!like("hell", "hello"));
        assert!(like("", ""));
    }

    #[test]
    fn percent_matches_runs() {
        assert!(like("hello world", "hello%"));
        assert!(like("hello world", "%world"));
        assert!(like("hello world", "%o w%"));
        assert!(like("hello world", "%"));
        assert!(like("", "%"));
        assert!(!like("hello", "%z%"));
    }

    #[test]
    fn underscore_matches_one() {
        assert!(like("cat", "c_t"));
        assert!(!like("caat", "c_t"));
        assert!(like("cat", "___"));
        assert!(!like("cat", "____"));
        assert!(!like("", "_"));
    }

    #[test]
    fn mixed_patterns() {
        assert!(like("databases", "d%b_s%"));
        assert!(like("green shipment", "%green%"));
        assert!(!like("greem shipment", "%green%"));
        assert!(like("abc", "%%%abc%%%"));
    }

    #[test]
    fn backtracking_pathological_case() {
        // aaaa...b against %a%a%a%b must terminate and answer correctly.
        let input = "a".repeat(200) + "b";
        assert!(like(&input, "%a%a%a%b"));
        assert!(!like(&input, "%a%a%a%c"));
    }

    #[test]
    fn escapes() {
        assert!(like("100%", "100\\%"));
        assert!(!like("1000", "100\\%"));
        assert!(like("a_b", "a\\_b"));
        assert!(!like("axb", "a\\_b"));
        assert!(like("back\\slash", "back\\\\slash"));
    }

    #[test]
    fn unicode_counts_characters() {
        assert!(like("héllo", "h_llo"));
        assert!(like("日本語", "日__"));
        assert!(!like("日本語", "日_"));
    }

    #[test]
    fn literal_prefix_detection() {
        assert_eq!(
            LikePattern::compile("abc%").literal_prefix(),
            Some("abc".to_string())
        );
        assert_eq!(LikePattern::compile("abc").literal_prefix(), None);
        assert_eq!(LikePattern::compile("%abc").literal_prefix(), None);
        assert_eq!(LikePattern::compile("a_c%").literal_prefix(), None);
        assert_eq!(
            LikePattern::compile("\\%x%").literal_prefix(),
            Some("%x".to_string())
        );
    }

    #[test]
    fn percent_runs_collapse() {
        let a = LikePattern::compile("a%%%%b");
        let b = LikePattern::compile("a%b");
        assert_eq!(a.tokens, b.tokens);
    }
}
