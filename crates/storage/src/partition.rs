//! Partitioned tables: one logical table laid out as N physical tables,
//! one per partition, so each partition can live on (and be scanned by)
//! a different host's storage device.
//!
//! Partition `i` of logical table `t` is the ordinary table `t.p{i}` in
//! the same object store — every existing scan path (segments, zone maps,
//! smart-storage pushdown) works on a partition unchanged. The partition
//! function is persisted next to the data (`{table}/_partition`), so a
//! scan planner that reopens the table routes with exactly the function
//! the loader used. Hash partitioning routes with the canonical
//! [`df_data::partition`] hash — the same function NIC partition kernels
//! and Exchange edges use, which is what makes storage-side partitioning
//! composable with in-path shuffles (§4.4: the reduction can happen at
//! whichever device already owns the rows).

use df_data::partition::HashPartitioner;
use df_data::{Batch, SchemaRef};

use crate::segment::DEFAULT_PAGE_ROWS;
use crate::table::{TableStore, DEFAULT_SEGMENT_ROWS};
use crate::{Result, StorageError};

/// How rows of a logical table are assigned to partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionSpec {
    /// Hash of the key columns, modulo `parts` (the exchange-compatible
    /// layout: co-partitioned tables join without a shuffle).
    Hash {
        /// Key column names.
        keys: Vec<String>,
        /// Number of partitions.
        parts: usize,
        /// Seed folded into the hash.
        seed: u64,
    },
    /// Range partitioning on one integer key: partition `i` holds rows
    /// with `bounds[i-1] <= key < bounds[i]` (`parts = bounds.len() + 1`).
    /// Null keys go to partition 0.
    Range {
        /// Key column name.
        key: String,
        /// Ascending split points.
        bounds: Vec<i64>,
    },
}

impl PartitionSpec {
    /// Number of partitions this spec produces.
    pub fn parts(&self) -> usize {
        match self {
            PartitionSpec::Hash { parts, .. } => *parts,
            PartitionSpec::Range { bounds, .. } => bounds.len() + 1,
        }
    }

    /// Partition index for every row of `batch`, in row order.
    pub fn assignments(&self, batch: &Batch) -> Result<Vec<usize>> {
        match self {
            PartitionSpec::Hash { keys, parts, seed } => {
                let p = HashPartitioner::with_seed(keys.clone(), *parts, *seed)
                    .map_err(StorageError::Data)?;
                p.assignments(batch).map_err(StorageError::Data)
            }
            PartitionSpec::Range { key, bounds } => {
                let col = batch.column_by_name(key).map_err(StorageError::Data)?;
                Ok((0..batch.rows())
                    .map(|row| match col.scalar_at(row).as_int() {
                        Some(v) => bounds.partition_point(|&b| b <= v),
                        None => 0,
                    })
                    .collect())
            }
        }
    }

    fn encode(&self) -> String {
        match self {
            PartitionSpec::Hash { keys, parts, seed } => {
                format!("hash\n{parts}\n{seed}\n{}", keys.join(","))
            }
            PartitionSpec::Range { key, bounds } => {
                let bounds: Vec<String> = bounds.iter().map(i64::to_string).collect();
                format!("range\n{key}\n{}", bounds.join(","))
            }
        }
    }

    fn decode(text: &str) -> Result<PartitionSpec> {
        let corrupt = || StorageError::Corrupt("malformed partition spec".into());
        let mut lines = text.lines();
        match lines.next().ok_or_else(corrupt)? {
            "hash" => {
                let parts = lines
                    .next()
                    .and_then(|l| l.parse().ok())
                    .ok_or_else(corrupt)?;
                let seed = lines
                    .next()
                    .and_then(|l| l.parse().ok())
                    .ok_or_else(corrupt)?;
                let keys: Vec<String> = lines
                    .next()
                    .ok_or_else(corrupt)?
                    .split(',')
                    .map(str::to_string)
                    .collect();
                Ok(PartitionSpec::Hash { keys, parts, seed })
            }
            "range" => {
                let key = lines.next().ok_or_else(corrupt)?.to_string();
                let bounds_line = lines.next().ok_or_else(corrupt)?;
                let bounds = if bounds_line.is_empty() {
                    Vec::new()
                } else {
                    bounds_line
                        .split(',')
                        .map(|b| b.parse().map_err(|_| corrupt()))
                        .collect::<Result<Vec<i64>>>()?
                };
                Ok(PartitionSpec::Range { key, bounds })
            }
            _ => Err(corrupt()),
        }
    }
}

/// A logical table stored as one physical table per partition.
#[derive(Clone)]
pub struct PartitionedTable {
    store: TableStore,
    name: String,
    spec: PartitionSpec,
}

impl PartitionedTable {
    /// Name of partition `i`'s physical table.
    pub fn partition_table_name(table: &str, index: usize) -> String {
        format!("{table}.p{index}")
    }

    fn spec_key(table: &str) -> String {
        format!("{table}/_partition")
    }

    /// Create (or replace) the partitioned table: one empty physical
    /// table per partition plus the persisted partition spec.
    pub fn create(
        store: &TableStore,
        table: &str,
        schema: &SchemaRef,
        spec: PartitionSpec,
    ) -> Result<PartitionedTable> {
        if spec.parts() == 0 {
            return Err(StorageError::Corrupt(
                "partitioned table needs at least one partition".into(),
            ));
        }
        for i in 0..spec.parts() {
            store.create(&Self::partition_table_name(table, i), schema)?;
        }
        store
            .object_store()
            .put(&Self::spec_key(table), spec.encode().into_bytes())?;
        Ok(PartitionedTable {
            store: store.clone(),
            name: table.to_string(),
            spec,
        })
    }

    /// Open an existing partitioned table from its persisted spec.
    pub fn open(store: &TableStore, table: &str) -> Result<PartitionedTable> {
        let raw = store.object_store().get(&Self::spec_key(table))?;
        let text =
            String::from_utf8(raw).map_err(|_| StorageError::Corrupt("spec not utf8".into()))?;
        Ok(PartitionedTable {
            store: store.clone(),
            name: table.to_string(),
            spec: PartitionSpec::decode(&text)?,
        })
    }

    /// The logical table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The partition function.
    pub fn spec(&self) -> &PartitionSpec {
        &self.spec
    }

    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.spec.parts()
    }

    /// Physical table name of partition `i` — the name to scan (through
    /// any storage front-end over the same object store).
    pub fn part_name(&self, index: usize) -> String {
        Self::partition_table_name(&self.name, index)
    }

    /// Route `batches` through the partition function and append each
    /// partition's rows to its physical table.
    pub fn load(&self, batches: &[Batch]) -> Result<()> {
        self.load_with(batches, DEFAULT_SEGMENT_ROWS, DEFAULT_PAGE_ROWS)
    }

    /// [`PartitionedTable::load`] with explicit segment/page geometry.
    pub fn load_with(
        &self,
        batches: &[Batch],
        segment_rows: usize,
        page_rows: usize,
    ) -> Result<()> {
        let parts = self.parts();
        let mut pending: Vec<Vec<Batch>> = vec![Vec::new(); parts];
        for batch in batches {
            let assignments = self.spec.assignments(batch)?;
            let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); parts];
            for (row, part) in assignments.into_iter().enumerate() {
                buckets[part].push(row);
            }
            for (part, rows) in buckets.into_iter().enumerate() {
                if !rows.is_empty() {
                    pending[part].push(batch.gather(&rows));
                }
            }
        }
        for (part, batches) in pending.into_iter().enumerate() {
            if !batches.is_empty() {
                self.store
                    .append(&self.part_name(part), &batches, segment_rows, page_rows)?;
            }
        }
        Ok(())
    }

    /// Rows per partition (the skew report).
    pub fn part_rows(&self) -> Result<Vec<u64>> {
        (0..self.parts())
            .map(|i| Ok(self.store.stats(&self.part_name(i))?.rows))
            .collect()
    }

    /// Total rows across partitions.
    pub fn rows(&self) -> Result<u64> {
        Ok(self.part_rows()?.into_iter().sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::MemObjectStore;
    use df_data::batch::batch_of;
    use df_data::Column;

    fn sample(n: usize) -> Batch {
        batch_of(vec![
            ("k", Column::from_i64((0..n as i64).collect())),
            (
                "grp",
                Column::from_strs(&(0..n).map(|i| format!("g{}", i % 3)).collect::<Vec<_>>()),
            ),
        ])
    }

    #[test]
    fn hash_partitioned_load_accounts_for_every_row() {
        let ts = TableStore::new(MemObjectStore::shared());
        let batch = sample(1000);
        let pt = PartitionedTable::create(
            &ts,
            "events",
            batch.schema(),
            PartitionSpec::Hash {
                keys: vec!["k".into()],
                parts: 4,
                seed: 0,
            },
        )
        .unwrap();
        pt.load(&[batch]).unwrap();
        let per = pt.part_rows().unwrap();
        assert_eq!(per.len(), 4);
        assert_eq!(per.iter().sum::<u64>(), 1000);
        assert!(
            per.iter().all(|&r| r > 0),
            "hash skewed a bucket empty: {per:?}"
        );
    }

    #[test]
    fn range_partitioning_respects_bounds() {
        let ts = TableStore::new(MemObjectStore::shared());
        let batch = sample(300);
        let pt = PartitionedTable::create(
            &ts,
            "events",
            batch.schema(),
            PartitionSpec::Range {
                key: "k".into(),
                bounds: vec![100, 200],
            },
        )
        .unwrap();
        pt.load(&[batch]).unwrap();
        assert_eq!(pt.part_rows().unwrap(), vec![100, 100, 100]);
        // Every partition is an ordinary table with correct zone maps.
        let stats = ts.stats(&pt.part_name(1)).unwrap();
        let zone = stats.column_zones[0].as_ref().unwrap();
        assert_eq!(zone.min, Some(df_data::Scalar::Int(100)));
        assert_eq!(zone.max, Some(df_data::Scalar::Int(199)));
    }

    #[test]
    fn reopen_recovers_the_partition_function() {
        let ts = TableStore::new(MemObjectStore::shared());
        let batch = sample(100);
        let spec = PartitionSpec::Hash {
            keys: vec!["k".into(), "grp".into()],
            parts: 3,
            seed: 7,
        };
        PartitionedTable::create(&ts, "t", batch.schema(), spec.clone()).unwrap();
        let reopened = PartitionedTable::open(&ts, "t").unwrap();
        assert_eq!(reopened.spec(), &spec);
        let range = PartitionSpec::Range {
            key: "k".into(),
            bounds: vec![10],
        };
        PartitionedTable::create(&ts, "r", batch.schema(), range.clone()).unwrap();
        assert_eq!(PartitionedTable::open(&ts, "r").unwrap().spec(), &range);
    }

    #[test]
    fn loads_agree_with_canonical_partitioner() {
        // Storage-side placement must match what an exchange would compute,
        // or co-partitioned joins silently lose rows.
        let ts = TableStore::new(MemObjectStore::shared());
        let batch = sample(500);
        let pt = PartitionedTable::create(
            &ts,
            "t",
            batch.schema(),
            PartitionSpec::Hash {
                keys: vec!["k".into()],
                parts: 5,
                seed: 3,
            },
        )
        .unwrap();
        pt.load(std::slice::from_ref(&batch)).unwrap();
        let exchange = HashPartitioner::with_seed(vec!["k".into()], 5, 3).unwrap();
        let expect = exchange.partition(&batch).unwrap();
        for (i, part) in expect.iter().enumerate() {
            assert_eq!(
                pt.part_rows().unwrap()[i],
                part.rows() as u64,
                "partition {i} differs from canonical routing"
            );
        }
    }

    #[test]
    fn null_range_keys_go_to_partition_zero() {
        let ts = TableStore::new(MemObjectStore::shared());
        let batch = batch_of(vec![(
            "k",
            Column::from_opt_i64(&[Some(150), None, Some(50), None]),
        )]);
        let pt = PartitionedTable::create(
            &ts,
            "t",
            batch.schema(),
            PartitionSpec::Range {
                key: "k".into(),
                bounds: vec![100],
            },
        )
        .unwrap();
        pt.load(&[batch]).unwrap();
        assert_eq!(pt.part_rows().unwrap(), vec![3, 1]);
    }

    #[test]
    fn open_missing_spec_errors() {
        let ts = TableStore::new(MemObjectStore::shared());
        assert!(PartitionedTable::open(&ts, "ghost").is_err());
    }
}
