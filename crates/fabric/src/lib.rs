#![warn(missing_docs)]
#![deny(unsafe_code)]
//! # df-fabric — the heterogeneous hardware fabric model
//!
//! The paper's thesis is that data processing must become a pipeline of
//! operators placed on processing elements *along the data path*: smart
//! storage, smart NICs, interconnects, near-memory accelerators, and finally
//! CPU cores. This crate models that fabric:
//!
//! - [`device`] — processing elements and their per-operation throughput
//!   profiles ([`OpClass`], [`DeviceProfile`])
//! - [`link`] — interconnect technologies (PCIe gen 3–7, CXL, DDR, Ethernet)
//!   with bandwidth/latency figures
//! - [`topology`] — the device/link graph, routing, and reference platform
//!   builders (conventional server, disaggregated rack, CXL rack)
//! - [`dma`] — credit queues and token-bucket rate limiters (the §7.1/§7.3
//!   flow-control and scheduling primitives)
//! - [`flow`] — the discrete-event model of credit-based streaming
//!   pipelines, including link/device contention between concurrent queries
//! - [`coherence`] — hardware (cxl.cache, MESI directory) vs software
//!   (RDMA-style) coherence cost models (§6)
//!
//! Real data never moves through this crate — it accounts *time and bytes*
//! for data that the engine (in `df-core`) actually processes.

pub mod coherence;
pub mod device;
pub mod dma;
pub mod flow;
pub mod link;
pub mod topology;

pub use device::{DeviceId, DeviceKind, DeviceProfile, OpClass};
pub use link::{LinkId, LinkSpec, LinkTech};
pub use topology::{ClusterConfig, Route, Topology};
