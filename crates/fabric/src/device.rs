//! Processing elements and their operation throughput profiles.
//!
//! Every element that can host an operator — CPU, smart SSD controller,
//! smart NIC, near-memory accelerator, programmable switch — is a
//! [`DeviceKind`] with a [`DeviceProfile`] mapping operation classes to
//! streaming throughput. The numbers are calibrated to the public figures
//! the paper cites (§2.1, §5.1): single-core streaming rates of a few GB/s,
//! accelerators at line/memory rate, regex an order of magnitude faster on
//! accelerators than CPUs (\[46\] in the paper).

use std::collections::BTreeMap;
use std::fmt;

use df_sim::{Bandwidth, SimDuration};

/// Identifier of a device within a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// The class of work an operator stage performs, from the device's point of
/// view. Placement legality and service rates key off this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Sequential read of stored/DRAM-resident data.
    Scan,
    /// Accepting an arriving stream at the device (NIC-Rx, storage feed,
    /// memory-side capture): the ingest point of a continuous query.
    Ingest,
    /// Predicate evaluation + selection.
    Filter,
    /// Column pruning / tuple re-assembly.
    Project,
    /// Hash computation over key columns.
    Hash,
    /// Hash-partitioning rows to N destinations.
    Partition,
    /// Bounded-state partial aggregation (pre-aggregation).
    AggregatePartial,
    /// Full aggregation with unbounded state.
    AggregateFinal,
    /// Hash-join build side.
    JoinBuild,
    /// Hash-join probe side.
    JoinProbe,
    /// Sorting.
    Sort,
    /// Regular-expression / LIKE matching.
    Regex,
    /// Block compression.
    Compress,
    /// Block decompression.
    Decompress,
    /// Stream encryption/decryption.
    Encrypt,
    /// Row/column format transposition.
    Transpose,
    /// Hierarchical structure traversal (index walks).
    PointerChase,
    /// Counting rows (the §4.4 "query on the NIC" example).
    Count,
}

impl OpClass {
    /// All classes, for exhaustive profile tables and tests.
    pub const ALL: [OpClass; 18] = [
        OpClass::Scan,
        OpClass::Ingest,
        OpClass::Filter,
        OpClass::Project,
        OpClass::Hash,
        OpClass::Partition,
        OpClass::AggregatePartial,
        OpClass::AggregateFinal,
        OpClass::JoinBuild,
        OpClass::JoinProbe,
        OpClass::Sort,
        OpClass::Regex,
        OpClass::Compress,
        OpClass::Decompress,
        OpClass::Encrypt,
        OpClass::Transpose,
        OpClass::PointerChase,
        OpClass::Count,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Scan => "scan",
            OpClass::Ingest => "ingest",
            OpClass::Filter => "filter",
            OpClass::Project => "project",
            OpClass::Hash => "hash",
            OpClass::Partition => "partition",
            OpClass::AggregatePartial => "agg-partial",
            OpClass::AggregateFinal => "agg-final",
            OpClass::JoinBuild => "join-build",
            OpClass::JoinProbe => "join-probe",
            OpClass::Sort => "sort",
            OpClass::Regex => "regex",
            OpClass::Compress => "compress",
            OpClass::Decompress => "decompress",
            OpClass::Encrypt => "encrypt",
            OpClass::Transpose => "transpose",
            OpClass::PointerChase => "pointer-chase",
            OpClass::Count => "count",
        }
    }

    /// Whether the class needs unbounded operator state. Streaming devices
    /// (storage controllers, NICs) only host stateless/bounded-state stages
    /// (§3.3: "probably has to be mostly stateless").
    pub fn needs_unbounded_state(self) -> bool {
        matches!(
            self,
            OpClass::AggregateFinal | OpClass::JoinBuild | OpClass::JoinProbe | OpClass::Sort
        )
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What kind of processing element a device is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// General-purpose CPU with `cores` usable cores.
    Cpu {
        /// Core count available to the engine.
        cores: u32,
    },
    /// Computational storage controller (smart SSD / smart object store).
    SmartStorage,
    /// Plain storage controller (no computation).
    PlainStorage,
    /// Smart NIC / DPU with an installable kernel pipeline.
    SmartNic,
    /// Plain NIC (moves bytes only).
    PlainNic,
    /// Near-memory accelerator at a memory controller (M7 DAX-like).
    NearMemAccel,
    /// Plain memory controller (terminates DDR links).
    MemoryController,
    /// Programmable network switch.
    Switch,
}

impl DeviceKind {
    /// Human-readable kind name.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Cpu { .. } => "cpu",
            DeviceKind::SmartStorage => "smart-storage",
            DeviceKind::PlainStorage => "storage",
            DeviceKind::SmartNic => "smart-nic",
            DeviceKind::PlainNic => "nic",
            DeviceKind::NearMemAccel => "near-mem-accel",
            DeviceKind::MemoryController => "mem-ctl",
            DeviceKind::Switch => "switch",
        }
    }
}

/// A device's performance profile: which operation classes it supports and
/// at what streaming throughput.
#[derive(Debug, Clone)]
pub struct DeviceProfile {
    /// The device kind this profile describes.
    pub kind: DeviceKind,
    /// Throughput per supported op class (bytes of *input* per second).
    rates: BTreeMap<OpClass, Bandwidth>,
    /// Fixed startup cost per work chunk (dispatch, doorbell, kernel entry).
    pub per_chunk_overhead: SimDuration,
    /// One-time cost to install a kernel/program on the device (§7.2).
    pub kernel_install: SimDuration,
}

impl DeviceProfile {
    /// Reference profile for a device kind. Rates are per the calibration
    /// notes in DESIGN.md; CPUs scale with core count.
    pub fn reference(kind: DeviceKind) -> DeviceProfile {
        use OpClass::*;
        let gb = Bandwidth::gbytes_per_sec;
        let mut rates = BTreeMap::new();
        let (per_chunk_overhead, kernel_install);
        match kind {
            DeviceKind::Cpu { cores } => {
                // Single-core streaming rates; a core sustains 75-85% of a
                // controller's bandwidth at best (§5.1), and compute-heavy
                // ops run far below that.
                let c = cores as f64;
                rates.insert(Scan, gb(6.0 * c));
                rates.insert(Ingest, gb(6.0 * c));
                rates.insert(Filter, gb(3.0 * c));
                rates.insert(Project, gb(5.0 * c));
                rates.insert(Hash, gb(2.5 * c));
                rates.insert(Partition, gb(2.0 * c));
                rates.insert(AggregatePartial, gb(2.0 * c));
                rates.insert(AggregateFinal, gb(1.5 * c));
                rates.insert(JoinBuild, gb(1.0 * c));
                rates.insert(JoinProbe, gb(1.2 * c));
                rates.insert(Sort, gb(0.6 * c));
                rates.insert(Regex, gb(0.3 * c));
                rates.insert(Compress, gb(0.5 * c));
                rates.insert(Decompress, gb(1.5 * c));
                rates.insert(Encrypt, gb(1.2 * c));
                rates.insert(Transpose, gb(1.0 * c));
                rates.insert(PointerChase, gb(0.1 * c));
                rates.insert(Count, gb(8.0 * c));
                per_chunk_overhead = SimDuration::from_nanos(500);
                kernel_install = SimDuration::ZERO; // native code
            }
            DeviceKind::SmartStorage => {
                // Streams at aggregate internal flash bandwidth — higher
                // than the network egress, which is the economic point of
                // computing near storage (§3.2).
                let internal = 16.0;
                rates.insert(Scan, gb(internal));
                rates.insert(Ingest, gb(internal));
                rates.insert(Filter, gb(internal));
                rates.insert(Project, gb(internal));
                rates.insert(Regex, gb(8.0)); // accelerated pattern matcher
                rates.insert(AggregatePartial, gb(8.0));
                rates.insert(Hash, gb(12.0));
                rates.insert(Compress, gb(8.0));
                rates.insert(Decompress, gb(12.0));
                rates.insert(Encrypt, gb(12.0));
                rates.insert(Count, gb(internal));
                per_chunk_overhead = SimDuration::from_micros(2);
                kernel_install = SimDuration::from_micros(50);
            }
            DeviceKind::PlainStorage => {
                rates.insert(Scan, gb(16.0));
                per_chunk_overhead = SimDuration::from_micros(2);
                kernel_install = SimDuration::ZERO;
            }
            DeviceKind::SmartNic => {
                // Bump-in-the-wire: processes at line rate (100 GbE).
                let line = 12.5;
                rates.insert(Ingest, gb(line));
                rates.insert(Filter, gb(line));
                rates.insert(Project, gb(line));
                rates.insert(Hash, gb(line));
                rates.insert(Partition, gb(line));
                rates.insert(AggregatePartial, gb(8.0));
                rates.insert(Count, gb(line));
                rates.insert(Compress, gb(10.0));
                rates.insert(Decompress, gb(12.0));
                rates.insert(Encrypt, gb(12.5)); // inline crypto engine
                rates.insert(Regex, gb(4.0));
                per_chunk_overhead = SimDuration::from_micros(1);
                kernel_install = SimDuration::from_micros(100);
            }
            DeviceKind::PlainNic => {
                per_chunk_overhead = SimDuration::from_micros(1);
                kernel_install = SimDuration::ZERO;
            }
            DeviceKind::NearMemAccel => {
                // Operates at memory-controller bandwidth (§5.2): sees the
                // full DDR rate no core can sustain alone.
                let ddr = 25.0;
                rates.insert(Scan, gb(ddr));
                rates.insert(Ingest, gb(ddr));
                rates.insert(Filter, gb(ddr));
                rates.insert(Project, gb(ddr));
                rates.insert(Decompress, gb(20.0));
                rates.insert(Transpose, gb(15.0));
                rates.insert(PointerChase, gb(2.0));
                rates.insert(AggregatePartial, gb(10.0));
                rates.insert(Count, gb(ddr));
                per_chunk_overhead = SimDuration::from_nanos(200);
                kernel_install = SimDuration::from_micros(20);
            }
            DeviceKind::MemoryController => {
                rates.insert(Scan, gb(25.0));
                per_chunk_overhead = SimDuration::from_nanos(100);
                kernel_install = SimDuration::ZERO;
            }
            DeviceKind::Switch => {
                // In-network compute at switch line rate.
                rates.insert(Partition, gb(50.0));
                rates.insert(AggregatePartial, gb(25.0));
                rates.insert(Count, gb(50.0));
                per_chunk_overhead = SimDuration::from_nanos(500);
                kernel_install = SimDuration::from_micros(200);
            }
        }
        DeviceProfile {
            kind,
            rates,
            per_chunk_overhead,
            kernel_install,
        }
    }

    /// Whether this device can host the given operation class, respecting
    /// the stateless-streaming restriction on in-path devices.
    pub fn supports(&self, op: OpClass) -> bool {
        self.rates.contains_key(&op)
    }

    /// Service throughput for `op`, if supported.
    pub fn rate(&self, op: OpClass) -> Option<Bandwidth> {
        self.rates.get(&op).copied()
    }

    /// Time to process `bytes` of input for `op`, including per-chunk
    /// overhead. `None` if unsupported.
    pub fn service_time(&self, op: OpClass, bytes: u64) -> Option<SimDuration> {
        self.rate(op)
            .map(|bw| bw.time_for_bytes(bytes) + self.per_chunk_overhead)
    }

    /// Override one rate (calibration / ablation hooks).
    pub fn set_rate(&mut self, op: OpClass, bw: Bandwidth) {
        self.rates.insert(op, bw);
    }

    /// Remove support for an op class.
    pub fn remove_op(&mut self, op: OpClass) {
        self.rates.remove(&op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_scales_with_cores() {
        let one = DeviceProfile::reference(DeviceKind::Cpu { cores: 1 });
        let eight = DeviceProfile::reference(DeviceKind::Cpu { cores: 8 });
        let r1 = one.rate(OpClass::Filter).unwrap().as_bytes_per_sec();
        let r8 = eight.rate(OpClass::Filter).unwrap().as_bytes_per_sec();
        assert!((r8 / r1 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn stateless_devices_reject_stateful_ops() {
        for kind in [DeviceKind::SmartStorage, DeviceKind::SmartNic] {
            let p = DeviceProfile::reference(kind);
            assert!(!p.supports(OpClass::JoinBuild), "{kind:?}");
            assert!(!p.supports(OpClass::Sort), "{kind:?}");
            assert!(!p.supports(OpClass::AggregateFinal), "{kind:?}");
            assert!(p.supports(OpClass::Filter), "{kind:?}");
        }
    }

    #[test]
    fn regex_is_faster_on_accelerators_than_one_core() {
        let cpu = DeviceProfile::reference(DeviceKind::Cpu { cores: 1 });
        let ssd = DeviceProfile::reference(DeviceKind::SmartStorage);
        assert!(
            ssd.rate(OpClass::Regex).unwrap().as_bytes_per_sec()
                > 5.0 * cpu.rate(OpClass::Regex).unwrap().as_bytes_per_sec()
        );
    }

    #[test]
    fn near_mem_filter_beats_cpu_core_streaming() {
        let cpu = DeviceProfile::reference(DeviceKind::Cpu { cores: 1 });
        let accel = DeviceProfile::reference(DeviceKind::NearMemAccel);
        assert!(
            accel.rate(OpClass::Filter).unwrap().as_bytes_per_sec()
                > cpu.rate(OpClass::Filter).unwrap().as_bytes_per_sec()
        );
    }

    #[test]
    fn service_time_includes_overhead() {
        let p = DeviceProfile::reference(DeviceKind::SmartNic);
        let zero = p.service_time(OpClass::Filter, 0).unwrap();
        assert_eq!(zero, p.per_chunk_overhead);
        let some = p.service_time(OpClass::Filter, 1 << 20).unwrap();
        assert!(some > zero);
    }

    #[test]
    fn unsupported_op_yields_none() {
        let p = DeviceProfile::reference(DeviceKind::PlainNic);
        assert!(p.service_time(OpClass::Filter, 100).is_none());
    }

    #[test]
    fn state_classification() {
        assert!(OpClass::JoinBuild.needs_unbounded_state());
        assert!(!OpClass::Filter.needs_unbounded_state());
        assert!(!OpClass::AggregatePartial.needs_unbounded_state());
    }

    #[test]
    fn profile_overrides() {
        let mut p = DeviceProfile::reference(DeviceKind::PlainNic);
        assert!(!p.supports(OpClass::Filter));
        p.set_rate(OpClass::Filter, Bandwidth::gbytes_per_sec(1.0));
        assert!(p.supports(OpClass::Filter));
        p.remove_op(OpClass::Filter);
        assert!(!p.supports(OpClass::Filter));
    }
}
