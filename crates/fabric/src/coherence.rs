//! Cache-coherence cost models: hardware (cxl.cache, a directory MESI
//! protocol) versus software (RDMA-style explicit access) coherence.
//!
//! §6.2: with CXL, "coherency allows a near-memory accelerator to operate on
//! the data at the same time as a CPU core ... any cache holding the
//! modified address will be invalidated through a series of cxl.cache
//! messages"; with plain PCIe/RDMA, coherence is the application's problem
//! and is usually solved by *not caching* remote data (every access pays a
//! round trip) — the "software coherence via one-sided RDMA" pattern whose
//! pitfalls the paper cites (\[36\]).
//!
//! The model tracks per-line MESI states for every agent, a memory version
//! per line (the "value"), message and byte counts, and per-access latency.
//! Reads always return the version of the most recent write — the
//! correctness invariant the property tests check.

use df_sim::SimDuration;

/// Coherence mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Hardware coherence over a CXL-class coherent link.
    HardwareCxl,
    /// Software-managed access over RDMA: remote lines are never cached.
    SoftwareRdma,
}

/// MESI state of one line in one agent's cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Invalid (not cached).
    I,
    /// Shared, clean.
    S,
    /// Exclusive, clean.
    E,
    /// Modified, dirty.
    M,
}

/// Configuration of a coherence domain.
#[derive(Debug, Clone)]
pub struct CoherenceConfig {
    /// Number of caching agents (CPU caches, accelerator caches).
    pub agents: usize,
    /// Number of cachelines in the shared region.
    pub lines: usize,
    /// One-way latency of the interconnect carrying coherence traffic.
    pub link_latency: SimDuration,
    /// The mechanism.
    pub mode: Mode,
}

impl Default for CoherenceConfig {
    fn default() -> Self {
        CoherenceConfig {
            agents: 2,
            lines: 1024,
            link_latency: SimDuration::from_nanos(250),
            mode: Mode::HardwareCxl,
        }
    }
}

/// Outcome of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Latency the accessing agent observed.
    pub latency: SimDuration,
    /// Protocol messages exchanged.
    pub messages: u32,
    /// The value (memory version) read or installed.
    pub value: u64,
}

/// Cumulative statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoherenceStats {
    /// Total accesses.
    pub accesses: u64,
    /// Local cache hits.
    pub hits: u64,
    /// Total protocol messages.
    pub messages: u64,
    /// Invalidation messages specifically.
    pub invalidations: u64,
    /// Total latency across accesses.
    pub total_latency: SimDuration,
    /// Bytes moved (64 B per message header, 64 B per line transfer).
    pub bytes: u64,
}

impl CoherenceStats {
    /// Mean access latency.
    pub fn mean_latency(&self) -> SimDuration {
        self.total_latency
            .nanos()
            .checked_div(self.accesses)
            .map_or(SimDuration::ZERO, SimDuration::from_nanos)
    }

    /// Hit rate (0..=1).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

const CACHE_HIT_NS: u64 = 10;
const LINE_BYTES: u64 = 64;
const MSG_BYTES: u64 = 64;

/// A simulated coherence domain.
#[derive(Debug)]
pub struct CoherenceSim {
    config: CoherenceConfig,
    /// `state[agent][line]`.
    state: Vec<Vec<LineState>>,
    /// `cached[agent][line]`: version held in that cache (valid iff != I).
    cached: Vec<Vec<u64>>,
    /// Memory's version per line.
    memory: Vec<u64>,
    /// Monotonic write counter (the "value" written).
    next_version: u64,
    /// Version of the latest write per line, regardless of where it lives.
    latest: Vec<u64>,
    stats: CoherenceStats,
}

impl CoherenceSim {
    /// A fresh domain; all caches empty, memory at version 0.
    pub fn new(config: CoherenceConfig) -> Self {
        assert!(config.agents >= 1 && config.lines >= 1);
        CoherenceSim {
            state: vec![vec![LineState::I; config.lines]; config.agents],
            cached: vec![vec![0; config.lines]; config.agents],
            memory: vec![0; config.lines],
            next_version: 0,
            latest: vec![0; config.lines],
            stats: CoherenceStats::default(),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CoherenceConfig {
        &self.config
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &CoherenceStats {
        &self.stats
    }

    /// MESI state of a line in an agent's cache (always `I` in RDMA mode).
    pub fn line_state(&self, agent: usize, line: usize) -> LineState {
        self.state[agent][line]
    }

    fn account(&mut self, access: Access, hit: bool) -> Access {
        self.stats.accesses += 1;
        if hit {
            self.stats.hits += 1;
        }
        self.stats.messages += u64::from(access.messages);
        self.stats.total_latency += access.latency;
        self.stats.bytes += u64::from(access.messages) * MSG_BYTES;
        access
    }

    /// Agent `agent` reads `line`.
    pub fn read(&mut self, agent: usize, line: usize) -> Access {
        match self.config.mode {
            Mode::SoftwareRdma => {
                // One-sided RDMA read: one round trip, never cached.
                let access = Access {
                    latency: self.config.link_latency.saturating_mul(2),
                    messages: 2, // request + response carrying the line
                    value: self.memory_value(line),
                };
                self.stats.bytes += LINE_BYTES;
                self.account(access, false)
            }
            Mode::HardwareCxl => self.read_hw(agent, line),
        }
    }

    /// Agent `agent` writes `line`, installing a new version. Returns the
    /// version written.
    pub fn write(&mut self, agent: usize, line: usize) -> Access {
        self.next_version += 1;
        let version = self.next_version;
        self.latest[line] = version;
        match self.config.mode {
            Mode::SoftwareRdma => {
                // RDMA write + remote flush/fence to make it visible (the
                // two-step pattern [36] describes).
                self.memory[line] = version;
                let access = Access {
                    latency: self.config.link_latency.saturating_mul(4),
                    messages: 4, // write + ack, flush + ack
                    value: version,
                };
                self.stats.bytes += LINE_BYTES;
                self.account(access, false)
            }
            Mode::HardwareCxl => self.write_hw(agent, line, version),
        }
    }

    fn memory_value(&self, line: usize) -> u64 {
        // If some cache holds the line Modified, memory is stale; the true
        // value lives in that cache. RDMA mode never has dirty caches, so
        // memory is always authoritative there.
        self.memory[line]
    }

    fn dirty_owner(&self, line: usize) -> Option<usize> {
        (0..self.config.agents).find(|&a| matches!(self.state[a][line], LineState::M))
    }

    fn exclusive_clean_owner(&self, line: usize) -> Option<usize> {
        (0..self.config.agents).find(|&a| matches!(self.state[a][line], LineState::E))
    }

    fn sharers(&self, line: usize, except: usize) -> Vec<usize> {
        (0..self.config.agents)
            .filter(|&a| a != except && self.state[a][line] != LineState::I)
            .collect()
    }

    fn read_hw(&mut self, agent: usize, line: usize) -> Access {
        let lat = self.config.link_latency;
        if self.state[agent][line] != LineState::I {
            // Hit: hardware kept it coherent, so the cached copy is current.
            let access = Access {
                latency: SimDuration::from_nanos(CACHE_HIT_NS),
                messages: 0,
                value: self.cached[agent][line],
            };
            return self.account(access, true);
        }
        // Miss: request to the directory (home).
        let mut messages = 2u32; // req + data response
        let mut latency = lat.saturating_mul(2);
        if let Some(owner) = self.dirty_owner(line) {
            // Forward to the dirty owner; owner supplies data and writes
            // back; owner downgrades M -> S.
            messages += 2; // forward + writeback
            latency += lat; // extra hop through the owner
            self.memory[line] = self.cached[owner][line];
            self.state[owner][line] = LineState::S;
        } else if let Some(owner) = self.exclusive_clean_owner(line) {
            // An E holder must drop to S before a second sharer appears.
            messages += 2; // snoop + ack
            latency += lat;
            self.state[owner][line] = LineState::S;
        }
        let value = self.memory[line];
        let alone = self.sharers(line, agent).is_empty();
        self.state[agent][line] = if alone { LineState::E } else { LineState::S };
        self.cached[agent][line] = value;
        self.stats.bytes += LINE_BYTES;
        self.account(
            Access {
                latency,
                messages,
                value,
            },
            false,
        )
    }

    fn write_hw(&mut self, agent: usize, line: usize, version: u64) -> Access {
        let lat = self.config.link_latency;
        let access = match self.state[agent][line] {
            LineState::M => Access {
                latency: SimDuration::from_nanos(CACHE_HIT_NS),
                messages: 0,
                value: version,
            },
            LineState::E => {
                // Silent upgrade.
                self.state[agent][line] = LineState::M;
                Access {
                    latency: SimDuration::from_nanos(CACHE_HIT_NS),
                    messages: 0,
                    value: version,
                }
            }
            LineState::S | LineState::I => {
                let was_invalid = self.state[agent][line] == LineState::I;
                let mut messages = 2u32; // RFO request + grant/data
                let mut latency = lat.saturating_mul(2);
                if let Some(owner) = self.dirty_owner(line) {
                    // Dirty elsewhere: owner writes back and invalidates.
                    self.memory[line] = self.cached[owner][line];
                    messages += 2;
                    latency += lat;
                }
                let sharers = self.sharers(line, agent);
                if !sharers.is_empty() {
                    // Invalidate every sharer; acks return in parallel, so
                    // latency grows by one round trip, messages by 2 each.
                    messages += 2 * sharers.len() as u32;
                    latency += lat.saturating_mul(2);
                    self.stats.invalidations += sharers.len() as u64;
                    for s in sharers {
                        self.state[s][line] = LineState::I;
                    }
                }
                if was_invalid {
                    self.stats.bytes += LINE_BYTES; // data fetched with RFO
                }
                self.state[agent][line] = LineState::M;
                Access {
                    latency,
                    messages,
                    value: version,
                }
            }
        };
        self.cached[agent][line] = version;
        let hit = access.messages == 0;
        self.account(access, hit)
    }

    /// The version of the most recent write to `line` — the oracle the
    /// property tests compare reads against.
    pub fn latest_version(&self, line: usize) -> u64 {
        self.latest[line]
    }

    /// Protocol invariants (debug/property checks): at most one M/E holder,
    /// and M excludes any other holder; every valid copy matches the latest
    /// version (hardware keeps caches current through invalidation).
    pub fn check_invariants(&self) -> Result<(), String> {
        for line in 0..self.config.lines {
            let holders: Vec<(usize, LineState)> = (0..self.config.agents)
                .map(|a| (a, self.state[a][line]))
                .filter(|(_, s)| *s != LineState::I)
                .collect();
            let exclusive = holders
                .iter()
                .filter(|(_, s)| matches!(s, LineState::M | LineState::E))
                .count();
            if exclusive > 1 {
                return Err(format!("line {line}: multiple exclusive holders"));
            }
            if exclusive == 1 && holders.len() > 1 {
                return Err(format!("line {line}: M/E coexists with sharers"));
            }
            for (a, _) in &holders {
                if self.cached[*a][line] != self.latest[line] {
                    return Err(format!(
                        "line {line}: agent {a} caches stale version {} != {}",
                        self.cached[*a][line], self.latest[line]
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> CoherenceSim {
        CoherenceSim::new(CoherenceConfig::default())
    }

    fn sw() -> CoherenceSim {
        CoherenceSim::new(CoherenceConfig {
            mode: Mode::SoftwareRdma,
            ..CoherenceConfig::default()
        })
    }

    #[test]
    fn first_read_misses_then_hits() {
        let mut sim = hw();
        let a = sim.read(0, 5);
        assert!(a.messages > 0);
        let b = sim.read(0, 5);
        assert_eq!(b.messages, 0);
        assert_eq!(b.latency, SimDuration::from_nanos(10));
        assert_eq!(sim.line_state(0, 5), LineState::E);
    }

    #[test]
    fn second_reader_downgrades_to_shared() {
        let mut sim = hw();
        sim.read(0, 5);
        sim.read(1, 5);
        assert_eq!(sim.line_state(1, 5), LineState::S);
        sim.check_invariants().unwrap();
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut sim = hw();
        sim.read(0, 7);
        sim.read(1, 7);
        let w = sim.write(0, 7);
        assert!(w.messages >= 2);
        assert_eq!(sim.line_state(0, 7), LineState::M);
        assert_eq!(sim.line_state(1, 7), LineState::I);
        assert_eq!(sim.stats().invalidations, 1);
        sim.check_invariants().unwrap();
    }

    #[test]
    fn reader_sees_writers_value_through_hardware() {
        // The §6.2 scenario: an accelerator updates a tuple; a CPU cache
        // holding the line is invalidated and re-reads the new value.
        let mut sim = hw();
        sim.read(1, 3); // CPU caches the line
        let w = sim.write(0, 3); // accelerator writes
        let r = sim.read(1, 3); // CPU reads again
        assert_eq!(r.value, w.value);
        assert_eq!(r.value, sim.latest_version(3));
        sim.check_invariants().unwrap();
    }

    #[test]
    fn exclusive_upgrade_is_silent() {
        let mut sim = hw();
        sim.read(0, 2); // E
        let w = sim.write(0, 2);
        assert_eq!(w.messages, 0);
        assert_eq!(sim.line_state(0, 2), LineState::M);
    }

    #[test]
    fn dirty_line_forwarded_on_read() {
        let mut sim = hw();
        sim.write(0, 9);
        let r = sim.read(1, 9);
        assert_eq!(r.value, sim.latest_version(9));
        assert_eq!(r.messages, 4); // req + fwd + writeback + data
        assert_eq!(sim.line_state(0, 9), LineState::S);
        sim.check_invariants().unwrap();
    }

    #[test]
    fn software_mode_never_caches() {
        let mut sim = sw();
        sim.read(0, 1);
        sim.read(0, 1);
        assert_eq!(sim.stats().hits, 0);
        assert_eq!(sim.line_state(0, 1), LineState::I);
    }

    #[test]
    fn software_reads_see_writes() {
        let mut sim = sw();
        let w = sim.write(1, 4);
        let r = sim.read(0, 4);
        assert_eq!(r.value, w.value);
    }

    #[test]
    fn hardware_beats_software_on_read_heavy_sharing() {
        // 1 write / 100 reads per line: the CXL argument.
        let run = |mut sim: CoherenceSim| {
            for line in 0..32 {
                sim.write(0, line);
                for i in 0..100 {
                    sim.read(i % 2, line);
                }
            }
            sim.stats().total_latency
        };
        let hw_lat = run(hw());
        let sw_lat = run(sw());
        assert!(
            hw_lat.nanos() * 5 < sw_lat.nanos(),
            "hw {hw_lat} not ≪ sw {sw_lat}"
        );
    }

    #[test]
    fn software_costs_more_messages_per_write() {
        let mut h = hw();
        let mut s = sw();
        // Exclusive-held write: hardware is free, software pays the fence.
        h.read(0, 0);
        h.write(0, 0);
        let hw_msgs = h.stats().messages;
        s.read(0, 0);
        s.write(0, 0);
        let sw_msgs = s.stats().messages;
        assert!(sw_msgs > hw_msgs);
    }

    #[test]
    fn invariants_hold_under_mixed_traffic() {
        let mut sim = CoherenceSim::new(CoherenceConfig {
            agents: 4,
            lines: 16,
            ..CoherenceConfig::default()
        });
        let mut x = 123u64;
        for _ in 0..2000 {
            // Cheap LCG for a deterministic access pattern.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let agent = (x >> 10) as usize % 4;
            let line = (x >> 20) as usize % 16;
            if x.is_multiple_of(3) {
                sim.write(agent, line);
            } else {
                let r = sim.read(agent, line);
                assert_eq!(r.value, sim.latest_version(line), "stale read");
            }
            sim.check_invariants().unwrap();
        }
        assert!(sim.stats().hit_rate() > 0.1);
    }
}
