//! DMA-engine primitives: credit-based flow control and token-bucket rate
//! limiting.
//!
//! §7.1: "What we envisage for data movement is a sequence of queues placed
//! strategically in the pipeline that are connected via DMA engines ... This
//! flow control method is called credit-based". §7.3 adds that the scheduler
//! must be able to "rate limit the bandwidth used" by those DMA engines.
//! [`CreditQueue`] and [`TokenBucket`] are those two mechanisms; the flow
//! simulator composes them.

use df_sim::{Bandwidth, SimDuration, SimTime};

/// A bounded queue governed by credits.
///
/// The downstream stage owns the queue; the upstream producer may only send
/// when it holds a credit. Credits return upstream as small control
/// messages, which the queue counts so experiments can report the control
/// overhead (E12 shows it is a tiny fraction of data traffic).
#[derive(Debug, Clone)]
pub struct CreditQueue {
    capacity: usize,
    occupied: usize,
    high_watermark: usize,
    credit_messages: u64,
}

/// Size in bytes of one credit-return control message (a header-only frame).
pub const CREDIT_MSG_BYTES: u64 = 64;

impl CreditQueue {
    /// A queue with `capacity` slots, initially empty (all credits with the
    /// producer).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "credit queue needs at least one slot");
        CreditQueue {
            capacity,
            occupied: 0,
            high_watermark: 0,
            credit_messages: 0,
        }
    }

    /// Slots configured.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Slots currently occupied.
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Whether the producer holds at least one credit.
    pub fn can_accept(&self) -> bool {
        self.occupied < self.capacity
    }

    /// Producer sends one chunk into the queue. Returns `false` (and does
    /// nothing) if no credit is available.
    pub fn accept(&mut self) -> bool {
        if !self.can_accept() {
            return false;
        }
        self.occupied += 1;
        self.high_watermark = self.high_watermark.max(self.occupied);
        true
    }

    /// Consumer drains one chunk, returning a credit upstream (counted as a
    /// control message). Panics if the queue is empty — a protocol bug.
    pub fn release(&mut self) {
        assert!(self.occupied > 0, "release on empty credit queue");
        self.occupied -= 1;
        self.credit_messages += 1;
    }

    /// Largest occupancy observed.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Number of credit-return messages sent upstream.
    pub fn credit_messages(&self) -> u64 {
        self.credit_messages
    }

    /// Total control traffic in bytes.
    pub fn control_bytes(&self) -> u64 {
        self.credit_messages * CREDIT_MSG_BYTES
    }
}

/// A token-bucket bandwidth limiter for a DMA engine.
///
/// Tokens are bytes; they refill at `rate` up to `burst`. The scheduler uses
/// this to cap a query's data-path bandwidth at runtime (§7.3).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: Bandwidth,
    burst: u64,
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// A bucket with the given sustained rate and burst size, initially full.
    pub fn new(rate: Bandwidth, burst: u64) -> Self {
        assert!(burst > 0, "burst must be positive");
        TokenBucket {
            rate,
            burst,
            tokens: burst as f64,
            last_refill: SimTime::ZERO,
        }
    }

    /// The configured sustained rate.
    pub fn rate(&self) -> Bandwidth {
        self.rate
    }

    fn refill(&mut self, now: SimTime) {
        let elapsed = now.since(self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.rate.as_bytes_per_sec()).min(self.burst as f64);
        self.last_refill = self.last_refill.max(now);
    }

    /// The earliest instant at or after `now` when `bytes` tokens will be
    /// available. Requests larger than the burst are allowed and simply wait
    /// proportionally longer.
    pub fn earliest_available(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.refill(now);
        let deficit = bytes as f64 - self.tokens;
        if deficit <= 0.0 {
            now
        } else {
            now + SimDuration::from_secs_f64(deficit / self.rate.as_bytes_per_sec())
        }
    }

    /// Consume `bytes` tokens at instant `at` (the bucket may go negative if
    /// the caller did not wait; sustained rate is still enforced on average).
    pub fn consume(&mut self, at: SimTime, bytes: u64) {
        self.refill(at);
        self.tokens -= bytes as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credits_bound_occupancy() {
        let mut q = CreditQueue::new(2);
        assert!(q.accept());
        assert!(q.accept());
        assert!(!q.accept());
        assert_eq!(q.occupied(), 2);
        assert_eq!(q.high_watermark(), 2);
        q.release();
        assert!(q.accept());
        assert_eq!(q.credit_messages(), 1);
        assert_eq!(q.control_bytes(), CREDIT_MSG_BYTES);
    }

    #[test]
    #[should_panic(expected = "release on empty")]
    fn release_empty_is_a_bug() {
        CreditQueue::new(1).release();
    }

    #[test]
    fn bucket_allows_burst_then_throttles() {
        // 1 GB/s, 1 MB burst.
        let mut b = TokenBucket::new(Bandwidth::gbytes_per_sec(1.0), 1 << 20);
        let now = SimTime::ZERO;
        // The full burst is available immediately.
        assert_eq!(b.earliest_available(now, 1 << 20), now);
        b.consume(now, 1 << 20);
        // The next 1 MB must wait ~1 MB / 1 GB/s ≈ 1.05 ms.
        let next = b.earliest_available(now, 1 << 20);
        let wait = next.since(now).as_secs_f64();
        assert!((wait - (1 << 20) as f64 / 1e9).abs() < 1e-6, "wait={wait}");
    }

    #[test]
    fn bucket_refills_over_time() {
        let mut b = TokenBucket::new(Bandwidth::mbytes_per_sec(100.0), 1000);
        b.consume(SimTime::ZERO, 1000);
        // After 10 microseconds, 1000 bytes refilled.
        let later = SimTime(10_000);
        assert_eq!(b.earliest_available(later, 1000), later);
    }

    #[test]
    fn bucket_caps_at_burst() {
        let mut b = TokenBucket::new(Bandwidth::gbytes_per_sec(10.0), 100);
        // Even after a long idle period, only `burst` tokens exist.
        let late = SimTime(1_000_000_000);
        assert_eq!(b.earliest_available(late, 100), late);
        b.consume(late, 100);
        assert!(b.earliest_available(late, 100) > late);
    }

    #[test]
    fn sustained_rate_is_enforced() {
        let rate = Bandwidth::mbytes_per_sec(10.0);
        let mut b = TokenBucket::new(rate, 4096);
        let mut now = SimTime::ZERO;
        let chunk = 4096u64;
        let n = 1000u64;
        for _ in 0..n {
            now = b.earliest_available(now, chunk);
            b.consume(now, chunk);
        }
        let elapsed = now.as_secs_f64();
        let expected = ((n - 1) * chunk) as f64 / rate.as_bytes_per_sec();
        assert!(
            (elapsed - expected).abs() / expected < 0.01,
            "elapsed={elapsed} expected={expected}"
        );
    }
}
