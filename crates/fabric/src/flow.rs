//! Discrete-event model of credit-based streaming pipelines over the fabric.
//!
//! This is the execution model of §7.1 made concrete: a query plan becomes a
//! chain of stages placed on devices; chunks flow stage-to-stage through
//! bounded queues; a stage may only forward output when it holds a credit
//! for the downstream queue; credits return upstream as small control
//! messages. DMA transfers occupy the physical links of the route between
//! the two devices, so *concurrent pipelines contend for shared links and
//! devices* — which is exactly what the scheduling experiment (E13) needs.
//!
//! The model works on byte counts, not real data: the engine executes the
//! plan for real elsewhere and feeds the measured per-stage reduction
//! factors in as `selectivity`.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

use df_sim::trace::{LaneId, LaneKind, Tracer};
use df_sim::{Bandwidth, SimDuration, SimTime, Simulation};

use crate::device::{DeviceId, OpClass};
use crate::dma::{TokenBucket, CREDIT_MSG_BYTES};
use crate::link::LinkId;
use crate::topology::{Route, Topology};

/// One stage of a streaming pipeline.
#[derive(Debug, Clone)]
pub struct StageSpec {
    /// Device the stage runs on. Must support `op`.
    pub device: DeviceId,
    /// The operation class (determines service rate on the device).
    pub op: OpClass,
    /// Output bytes per input byte (reduction < 1.0, expansion > 1.0).
    pub selectivity: f64,
    /// Input queue capacity in chunks (the credit budget, §7.1).
    pub queue_capacity: usize,
}

impl StageSpec {
    /// A stage with the default 4-chunk credit budget.
    pub fn new(device: DeviceId, op: OpClass, selectivity: f64) -> StageSpec {
        StageSpec {
            device,
            op,
            selectivity,
            queue_capacity: 4,
        }
    }

    /// Override the credit budget.
    pub fn with_queue(mut self, capacity: usize) -> StageSpec {
        self.queue_capacity = capacity.max(1);
        self
    }
}

/// A full pipeline: a source of bytes pushed through a chain of stages.
#[derive(Debug, Clone)]
pub struct PipelineSpec {
    /// Name for reports.
    pub name: String,
    /// The stage chain (first stage is co-located with the data source).
    pub stages: Vec<StageSpec>,
    /// Total bytes produced by the source.
    pub source_bytes: u64,
    /// Chunk granularity (a "batch on the wire").
    pub chunk_bytes: u64,
    /// Optional DMA rate limit applied to all of this pipeline's transfers.
    pub rate_limit: Option<Bandwidth>,
    /// When the pipeline starts.
    pub start_at: SimTime,
    /// Owning tenant, when the pipeline belongs to a multi-query run. Sets
    /// the trace lane to `tenant.<tenant>.pipe.<name>` and keys the
    /// per-tenant credit/byte accounting on [`FlowReport`].
    pub tenant: Option<String>,
}

impl PipelineSpec {
    /// A pipeline starting at time zero with 1 MiB chunks and no rate limit.
    pub fn new(name: impl Into<String>, stages: Vec<StageSpec>, source_bytes: u64) -> Self {
        PipelineSpec {
            name: name.into(),
            stages,
            source_bytes,
            chunk_bytes: 1 << 20,
            rate_limit: None,
            start_at: SimTime::ZERO,
            tenant: None,
        }
    }

    /// Tag the pipeline with its owning tenant (multi-query accounting).
    pub fn for_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Set the chunk size.
    pub fn with_chunk(mut self, bytes: u64) -> Self {
        self.chunk_bytes = bytes.max(1);
        self
    }

    /// Apply a DMA rate limit.
    pub fn with_rate_limit(mut self, limit: Bandwidth) -> Self {
        self.rate_limit = Some(limit);
        self
    }

    /// Delay the start.
    pub fn starting_at(mut self, at: SimTime) -> Self {
        self.start_at = at;
        self
    }
}

/// Per-stage outcome.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Device the stage ran on.
    pub device: DeviceId,
    /// Operation class.
    pub op: OpClass,
    /// Total service (busy) time.
    pub busy: SimDuration,
    /// Chunks processed.
    pub chunks: u64,
    /// Input bytes consumed.
    pub bytes_in: u64,
    /// Output bytes produced.
    pub bytes_out: u64,
    /// Largest input-queue occupancy observed.
    pub queue_high_watermark: usize,
    /// Credit-return messages this stage sent upstream.
    pub credit_messages: u64,
}

/// Per-pipeline outcome.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Pipeline name.
    pub name: String,
    /// Owning tenant, copied from the spec.
    pub tenant: Option<String>,
    /// Start time.
    pub started: SimTime,
    /// Completion time (all bytes drained through the last stage).
    pub finished: SimTime,
    /// Bytes delivered by the final stage.
    pub bytes_delivered: u64,
    /// Stage details.
    pub stages: Vec<StageReport>,
}

impl PipelineReport {
    /// End-to-end duration.
    pub fn duration(&self) -> SimDuration {
        self.finished.since(self.started)
    }

    /// Total control (credit) traffic in bytes.
    pub fn control_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.credit_messages).sum::<u64>() * CREDIT_MSG_BYTES
    }
}

/// Whole-simulation outcome.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// One report per pipeline, in submission order.
    pub pipelines: Vec<PipelineReport>,
    /// Data bytes carried per link.
    pub link_bytes: BTreeMap<LinkId, u64>,
    /// Cumulative serialization (busy) time per link.
    pub link_busy: BTreeMap<LinkId, SimDuration>,
    /// Time the last pipeline finished.
    pub makespan: SimTime,
}

impl FlowReport {
    /// Utilization of a link over the makespan (0..=1).
    pub fn link_utilization(&self, link: LinkId) -> f64 {
        let busy = self.link_busy.get(&link).map_or(0, |d| d.nanos());
        if self.makespan.nanos() == 0 {
            0.0
        } else {
            busy as f64 / self.makespan.nanos() as f64
        }
    }

    /// Credit-control traffic per tenant, in bytes. Untenanted pipelines
    /// are keyed under the empty string.
    pub fn control_bytes_by_tenant(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for p in &self.pipelines {
            *out.entry(p.tenant.clone().unwrap_or_default()).or_insert(0) += p.control_bytes();
        }
        out
    }

    /// Data bytes delivered per tenant (empty string = untenanted).
    pub fn bytes_by_tenant(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for p in &self.pipelines {
            *out.entry(p.tenant.clone().unwrap_or_default()).or_insert(0) += p.bytes_delivered;
        }
        out
    }
}

// ------------------------------------------------------------------ runtime

struct StageRt {
    spec: StageSpec,
    /// Queued input chunks with their arrival times (for queue-wait traces).
    queue: VecDeque<(SimTime, u64)>,
    /// Downstream-reserved slots for in-flight transfers into this stage.
    reserved: usize,
    busy: bool,
    /// Output chunk awaiting a downstream credit (bounded to 1: this is the
    /// backpressure point).
    pending_out: VecDeque<u64>,
    busy_ns: u64,
    chunks: u64,
    bytes_in: u64,
    bytes_out: u64,
    high_watermark: usize,
    credit_messages: u64,
}

impl StageRt {
    fn new(spec: StageSpec) -> StageRt {
        StageRt {
            spec,
            queue: VecDeque::new(),
            reserved: 0,
            busy: false,
            pending_out: VecDeque::new(),
            busy_ns: 0,
            chunks: 0,
            bytes_in: 0,
            bytes_out: 0,
            high_watermark: 0,
            credit_messages: 0,
        }
    }

    fn has_room(&self) -> bool {
        self.queue.len() + self.reserved < self.spec.queue_capacity
    }
}

struct PipeRt {
    spec: PipelineSpec,
    /// Routes between consecutive stage devices.
    routes: Vec<Route>,
    stages: Vec<StageRt>,
    remaining_bytes: u64,
    /// Chunks alive anywhere in the pipeline.
    outstanding: u64,
    delivered: u64,
    limiter: Option<TokenBucket>,
    finished: Option<SimTime>,
}

/// Trace lanes for one simulation: one sim lane per device, per link, and
/// per pipeline (the pipeline lane carries control events — credit returns
/// and DMA throttling).
struct TraceCtx {
    tracer: Arc<Tracer>,
    device_lanes: Vec<LaneId>,
    link_lanes: Vec<LaneId>,
    pipe_lanes: Vec<LaneId>,
}

struct World {
    topo: Topology,
    link_busy_until: Vec<SimTime>,
    link_bytes: Vec<u64>,
    link_busy_ns: Vec<u64>,
    device_busy_until: Vec<SimTime>,
    pipes: Vec<PipeRt>,
    trace: Option<TraceCtx>,
}

/// Simulator for a set of concurrent pipelines over one topology.
pub struct FlowSim {
    topo: Topology,
    pipelines: Vec<PipelineSpec>,
    tracer: Option<Arc<Tracer>>,
}

/// Handle identifying a submitted pipeline in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineHandle(pub usize);

impl FlowSim {
    /// A simulator over `topo`.
    pub fn new(topo: Topology) -> FlowSim {
        FlowSim {
            topo,
            pipelines: Vec::new(),
            tracer: None,
        }
    }

    /// Record every device service span, link transfer, credit return and
    /// DMA throttle event into `tracer` (on sim-time lanes). The lanes are
    /// created deterministically from the topology, so two runs of the same
    /// simulation produce identical [`Tracer::sim_timeline`] strings.
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Submit a pipeline. Panics if a stage's device does not support its op
    /// or consecutive devices are not connected — those are plan bugs the
    /// placement layer must not produce.
    pub fn add_pipeline(&mut self, spec: PipelineSpec) -> PipelineHandle {
        assert!(!spec.stages.is_empty(), "pipeline needs at least one stage");
        assert!(spec.chunk_bytes > 0, "chunk size must be positive");
        for stage in &spec.stages {
            let dev = self.topo.device(stage.device);
            assert!(
                dev.profile.supports(stage.op),
                "device '{}' ({}) does not support op {}",
                dev.name,
                dev.profile.kind.name(),
                stage.op
            );
            assert!(
                stage.selectivity >= 0.0 && stage.selectivity.is_finite(),
                "selectivity must be finite and non-negative"
            );
        }
        for pair in spec.stages.windows(2) {
            assert!(
                self.topo.route(pair[0].device, pair[1].device).is_some(),
                "no route between consecutive stage devices"
            );
        }
        self.pipelines.push(spec);
        PipelineHandle(self.pipelines.len() - 1)
    }

    /// Run to completion and report.
    pub fn run(self) -> FlowReport {
        let FlowSim {
            topo,
            pipelines,
            tracer,
        } = self;
        let trace = tracer.map(|tracer| {
            let device_lanes = topo
                .devices()
                .iter()
                .map(|d| tracer.lane(&d.name, LaneKind::Sim))
                .collect();
            let link_lanes = topo
                .links()
                .iter()
                .map(|l| {
                    let name = format!(
                        "link.{}-{}.{}",
                        topo.device(l.a).name,
                        topo.device(l.b).name,
                        l.tech.name()
                    );
                    tracer.lane(&name, LaneKind::Sim)
                })
                .collect();
            let pipe_lanes = pipelines
                .iter()
                .map(|p| {
                    let lane = match &p.tenant {
                        Some(t) => format!("tenant.{t}.pipe.{}", p.name),
                        None => format!("pipe.{}", p.name),
                    };
                    tracer.lane(&lane, LaneKind::Sim)
                })
                .collect();
            TraceCtx {
                tracer,
                device_lanes,
                link_lanes,
                pipe_lanes,
            }
        });
        let mut pipes = Vec::with_capacity(pipelines.len());
        for spec in pipelines {
            let routes = spec
                .stages
                .windows(2)
                .map(|pair| {
                    topo.route(pair[0].device, pair[1].device)
                        .expect("validated at add_pipeline")
                })
                .collect();
            let stages = spec.stages.iter().cloned().map(StageRt::new).collect();
            let limiter = spec
                .rate_limit
                .map(|bw| TokenBucket::new(bw, spec.chunk_bytes.max(64 * 1024)));
            pipes.push(PipeRt {
                remaining_bytes: spec.source_bytes,
                outstanding: 0,
                delivered: 0,
                routes,
                stages,
                limiter,
                finished: None,
                spec,
            });
        }

        let nlinks = topo.links().len();
        let ndevs = topo.devices().len();
        let world = Rc::new(RefCell::new(World {
            topo,
            link_busy_until: vec![SimTime::ZERO; nlinks],
            link_bytes: vec![0; nlinks],
            link_busy_ns: vec![0; nlinks],
            device_busy_until: vec![SimTime::ZERO; ndevs],
            pipes,
            trace,
        }));

        let mut sim = Simulation::new();
        let n = world.borrow().pipes.len();
        for p in 0..n {
            let start = world.borrow().pipes[p].spec.start_at;
            let wc = world.clone();
            sim.schedule_at(start, move |sim| pump_source(&wc, sim, p));
        }
        sim.run();
        let makespan = sim.now();

        let w = world.borrow();
        let mut link_bytes = BTreeMap::new();
        let mut link_busy = BTreeMap::new();
        for (i, (&bytes, &busy)) in w.link_bytes.iter().zip(&w.link_busy_ns).enumerate() {
            if bytes > 0 {
                link_bytes.insert(LinkId(i as u32), bytes);
                link_busy.insert(LinkId(i as u32), SimDuration::from_nanos(busy));
            }
        }
        let pipelines = w
            .pipes
            .iter()
            .map(|pipe| PipelineReport {
                name: pipe.spec.name.clone(),
                tenant: pipe.spec.tenant.clone(),
                started: pipe.spec.start_at,
                finished: pipe.finished.unwrap_or(makespan),
                bytes_delivered: pipe.delivered,
                stages: pipe
                    .stages
                    .iter()
                    .map(|s| StageReport {
                        device: s.spec.device,
                        op: s.spec.op,
                        busy: SimDuration::from_nanos(s.busy_ns),
                        chunks: s.chunks,
                        bytes_in: s.bytes_in,
                        bytes_out: s.bytes_out,
                        queue_high_watermark: s.high_watermark,
                        credit_messages: s.credit_messages,
                    })
                    .collect(),
            })
            .collect();
        FlowReport {
            pipelines,
            link_bytes,
            link_busy,
            makespan,
        }
    }
}

type WorldRef = Rc<RefCell<World>>;

/// Source feeds chunks into stage 0's queue while credits allow.
fn pump_source(world: &WorldRef, sim: &mut Simulation, p: usize) {
    {
        let mut w = world.borrow_mut();
        let now = sim.now();
        let pipe = &mut w.pipes[p];
        while pipe.remaining_bytes > 0 && pipe.stages[0].has_room() {
            let chunk = pipe.spec.chunk_bytes.min(pipe.remaining_bytes);
            pipe.remaining_bytes -= chunk;
            pipe.outstanding += 1;
            let st = &mut pipe.stages[0];
            st.queue.push_back((now, chunk));
            st.high_watermark = st.high_watermark.max(st.queue.len() + st.reserved);
        }
    }
    try_start(world, sim, p, 0);
}

/// Try to begin service on stage `s` of pipeline `p`.
fn try_start(world: &WorldRef, sim: &mut Simulation, p: usize, s: usize) {
    let (service_end, out_bytes, credit_delay);
    {
        let mut w = world.borrow_mut();
        let now = sim.now();
        let pipe = &mut w.pipes[p];
        {
            let st = &mut pipe.stages[s];
            if st.busy || !st.pending_out.is_empty() || st.queue.is_empty() {
                return;
            }
        }
        let (arrived, chunk) = pipe.stages[s].queue.pop_front().expect("non-empty");
        let device = pipe.stages[s].spec.device;
        let op = pipe.stages[s].spec.op;
        let selectivity = pipe.stages[s].spec.selectivity;
        let upstream_route = (s > 0).then(|| pipe.routes[s - 1].clone());
        // Credit frees as soon as the queue slot empties; the return message
        // takes one control-latency to reach the upstream sender.
        credit_delay = upstream_route.map(|route| w.topo.route_latency(&route));
        let pipe = &mut w.pipes[p];
        if s > 0 {
            pipe.stages[s].credit_messages += 1;
        }
        let service = {
            let profile = &w.topo.device(device).profile;
            profile
                .service_time(op, chunk)
                .expect("validated at add_pipeline")
        };
        let w2 = &mut *w;
        let dev_busy = &mut w2.device_busy_until[device.0 as usize];
        let start = now.max(*dev_busy);
        let end = start + service;
        *dev_busy = end;
        let pipe = &mut w2.pipes[p];
        let st = &mut pipe.stages[s];
        st.busy = true;
        st.busy_ns += service.nanos();
        st.chunks += 1;
        st.bytes_in += chunk;
        out_bytes = (chunk as f64 * selectivity).round() as u64;
        service_end = end;
        if let Some(tc) = &w2.trace {
            // Device claims happen in non-decreasing start order (each claim
            // pushes `device_busy_until` forward), so emitting the complete
            // span here keeps the device lane monotone.
            tc.tracer.span_at(
                tc.device_lanes[device.0 as usize],
                &format!("{} [{}]", op, w2.pipes[p].spec.name),
                start,
                end,
                &[
                    ("bytes", chunk),
                    ("queue_wait_ns", start.since(arrived).nanos()),
                ],
            );
        }
    }
    if let Some(delay) = credit_delay {
        let wc = world.clone();
        sim.schedule(delay, move |sim| credit_arrived(&wc, sim, p, s));
    } else {
        // Source refill is immediate (same device).
        pump_source(world, sim, p);
    }
    let wc = world.clone();
    sim.schedule_at(service_end, move |sim| {
        finish_service(&wc, sim, p, s, out_bytes)
    });
}

/// Stage `s` finished servicing one chunk producing `out` bytes.
fn finish_service(world: &WorldRef, sim: &mut Simulation, p: usize, s: usize, out: u64) {
    let is_last;
    {
        let mut w = world.borrow_mut();
        let pipe = &mut w.pipes[p];
        is_last = s + 1 == pipe.stages.len();
        let st = &mut pipe.stages[s];
        st.busy = false;
        st.bytes_out += out;
        if is_last || out == 0 {
            // Chunk leaves the pipeline (delivered or reduced to nothing).
            pipe.delivered += if is_last { out } else { 0 };
            pipe.outstanding -= 1;
        } else {
            st.pending_out.push_back(out);
        }
        maybe_finish(pipe, sim.now());
    }
    if !is_last && out > 0 {
        try_send(world, sim, p, s);
    }
    try_start(world, sim, p, s);
}

/// Move stage `s`'s pending output toward stage `s+1` if a credit and the
/// links are available. Rate-limited transfers defer their *link claims* to
/// the instant tokens become available, so a throttled pipeline never
/// reserves links ahead of time against other traffic.
fn try_send(world: &WorldRef, sim: &mut Simulation, p: usize, s: usize) {
    let mut immediate: Vec<u64> = Vec::new();
    let mut deferred: Vec<(SimTime, u64)> = Vec::new();
    {
        let mut w = world.borrow_mut();
        let now = sim.now();
        loop {
            let pipe = &mut w.pipes[p];
            if pipe.stages[s].pending_out.is_empty() || !pipe.stages[s + 1].has_room() {
                break;
            }
            let chunk = pipe.stages[s].pending_out.pop_front().expect("non-empty");
            pipe.stages[s + 1].reserved += 1;
            // DMA rate limiting (§7.3) gates the transfer start.
            let mut token_time = now;
            if !pipe.routes[s].is_local() {
                if let Some(limiter) = pipe.limiter.as_mut() {
                    token_time = limiter.earliest_available(now, chunk);
                    limiter.consume(token_time, chunk);
                }
            }
            if token_time > now {
                if let Some(tc) = &w.trace {
                    tc.tracer.instant_at_with(
                        tc.pipe_lanes[p],
                        "dma-throttled",
                        now,
                        &[
                            ("bytes", chunk),
                            ("delay_ns", token_time.since(now).nanos()),
                        ],
                    );
                }
                deferred.push((token_time, chunk));
            } else {
                immediate.push(chunk);
            }
        }
    }
    for chunk in immediate {
        start_transfer(world, sim, p, s, chunk);
    }
    for (at, chunk) in deferred {
        let wc = world.clone();
        sim.schedule_at(at, move |sim| start_transfer(&wc, sim, p, s, chunk));
    }
}

/// Claim the route's links (FIFO per link, shared across pipelines) and
/// schedule the delivery into stage `s+1`.
///
/// Links are claimed hop-by-hop, each one only when the chunk actually
/// reaches it (store-and-forward). Claiming the whole route up front would
/// reserve downstream capacity at computed future times; when many pipelines
/// share a link — e.g. every producer's shuffle pairs funneling into one
/// switch port — those phantom reservations serialize in claim order and
/// open convoy gaps that badly under-utilize the link.
fn start_transfer(world: &WorldRef, sim: &mut Simulation, p: usize, s: usize, chunk: u64) {
    if world.borrow().pipes[p].routes[s].links.is_empty() {
        let wc = world.clone();
        let now = sim.now();
        sim.schedule_at(now, move |sim| deliver(&wc, sim, p, s + 1, chunk));
    } else {
        transfer_hop(world, sim, p, s, 0, chunk);
    }
}

/// Serialize `chunk` onto link `hop` of stage `s`'s route, then continue to
/// the next hop — or deliver into stage `s+1` after the final link's latency.
fn transfer_hop(
    world: &WorldRef,
    sim: &mut Simulation,
    p: usize,
    s: usize,
    hop: usize,
    chunk: u64,
) {
    let depart;
    let last;
    {
        let mut w = world.borrow_mut();
        let link_id = w.pipes[p].routes[s].links[hop];
        let idx = link_id.0 as usize;
        let (serialize, latency) = {
            let spec = w.topo.link(link_id);
            (
                spec.tech.bandwidth().time_for_bytes(chunk),
                spec.tech.latency(),
            )
        };
        let start = sim.now().max(w.link_busy_until[idx]);
        let end = start + serialize;
        w.link_busy_until[idx] = end;
        w.link_bytes[idx] += chunk;
        w.link_busy_ns[idx] += serialize.nanos();
        if let Some(tc) = &w.trace {
            // Like devices, links are claimed FIFO via `link_busy_until`,
            // so whole spans stay monotone per link lane.
            tc.tracer.span_at(
                tc.link_lanes[idx],
                &format!("dma [{}]", w.pipes[p].spec.name),
                start,
                end,
                &[("bytes", chunk)],
            );
        }
        depart = end + latency;
        last = hop + 1 == w.pipes[p].routes[s].links.len();
    }
    let wc = world.clone();
    if last {
        sim.schedule_at(depart, move |sim| deliver(&wc, sim, p, s + 1, chunk));
    } else {
        sim.schedule_at(depart, move |sim| {
            transfer_hop(&wc, sim, p, s, hop + 1, chunk)
        });
    }
}

/// A chunk arrives in stage `s`'s input queue.
fn deliver(world: &WorldRef, sim: &mut Simulation, p: usize, s: usize, chunk: u64) {
    {
        let mut w = world.borrow_mut();
        let now = sim.now();
        let st = &mut w.pipes[p].stages[s];
        st.reserved -= 1;
        st.queue.push_back((now, chunk));
        st.high_watermark = st.high_watermark.max(st.queue.len() + st.reserved);
    }
    try_start(world, sim, p, s);
}

/// A credit-return message reached stage `s-1` (or the source).
fn credit_arrived(world: &WorldRef, sim: &mut Simulation, p: usize, s: usize) {
    debug_assert!(s > 0);
    {
        let w = world.borrow();
        if let Some(tc) = &w.trace {
            tc.tracer.instant_at_with(
                tc.pipe_lanes[p],
                "credit-return",
                sim.now(),
                &[("stage", (s - 1) as u64), ("msg_bytes", CREDIT_MSG_BYTES)],
            );
        }
    }
    try_send(world, sim, p, s - 1);
    // Draining the pending output may unblock the stage itself.
    try_start(world, sim, p, s - 1);
}

/// Mark the pipeline finished once nothing remains in flight.
fn maybe_finish(pipe: &mut PipeRt, now: SimTime) {
    if pipe.finished.is_none() && pipe.remaining_bytes == 0 && pipe.outstanding == 0 {
        pipe.finished = Some(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::DisaggregatedConfig;

    fn disagg() -> Topology {
        Topology::disaggregated(&DisaggregatedConfig::default())
    }

    fn full_path_pipeline(topo: &Topology, bytes: u64, filter_sel: f64) -> PipelineSpec {
        let ssd = topo.expect_device("storage.ssd");
        let snic = topo.expect_device("storage.nic");
        let cnic = topo.expect_device("compute0.nic");
        let cpu = topo.expect_device("compute0.cpu");
        PipelineSpec::new(
            "q",
            vec![
                StageSpec::new(ssd, OpClass::Filter, filter_sel),
                StageSpec::new(snic, OpClass::Project, 1.0),
                StageSpec::new(cnic, OpClass::Hash, 1.0),
                StageSpec::new(cpu, OpClass::AggregateFinal, 0.01),
            ],
            bytes,
        )
    }

    #[test]
    fn single_stage_pipeline_time_matches_service_rate() {
        let topo = disagg();
        let cpu = topo.expect_device("compute0.cpu");
        let rate = topo
            .device(cpu)
            .profile
            .rate(OpClass::Filter)
            .unwrap()
            .as_bytes_per_sec();
        let bytes = 1u64 << 30;
        let mut sim = FlowSim::new(topo);
        sim.add_pipeline(PipelineSpec::new(
            "local",
            vec![StageSpec::new(cpu, OpClass::Filter, 0.5)],
            bytes,
        ));
        let report = sim.run();
        let expect = bytes as f64 / rate;
        let got = report.pipelines[0].duration().as_secs_f64();
        // Within 5% (per-chunk overheads add a little).
        assert!(
            (got - expect).abs() / expect < 0.05,
            "got {got}, expect {expect}"
        );
        assert_eq!(report.pipelines[0].bytes_delivered, bytes / 2);
    }

    #[test]
    fn conservation_of_bytes_through_stages() {
        let topo = disagg();
        let spec = full_path_pipeline(&topo, 64 << 20, 0.25);
        let mut sim = FlowSim::new(topo);
        sim.add_pipeline(spec);
        let report = sim.run();
        let stages = &report.pipelines[0].stages;
        assert_eq!(stages[0].bytes_in, 64 << 20);
        // Filter reduces to 25%.
        let expect = (64u64 << 20) / 4;
        assert!((stages[0].bytes_out as i64 - expect as i64).unsigned_abs() < 1024);
        // Downstream stages see exactly what upstream produced.
        assert_eq!(stages[1].bytes_in, stages[0].bytes_out);
        assert_eq!(stages[2].bytes_in, stages[1].bytes_out);
        assert_eq!(stages[3].bytes_in, stages[2].bytes_out);
    }

    #[test]
    fn selective_pushdown_beats_shipping_everything() {
        // Figure 2's claim at the flow level: filtering at storage with 1%
        // selectivity finishes much faster than shipping all bytes when the
        // network is the bottleneck.
        let topo = disagg();
        let ssd = topo.expect_device("storage.ssd");
        let snic = topo.expect_device("storage.nic");
        let cnic = topo.expect_device("compute0.nic");
        let cpu = topo.expect_device("compute0.cpu");
        let bytes = 256u64 << 20;

        let pushdown = PipelineSpec::new(
            "pushdown",
            vec![
                StageSpec::new(ssd, OpClass::Filter, 0.01),
                StageSpec::new(cpu, OpClass::AggregateFinal, 0.01),
            ],
            bytes,
        );
        let ship_all = PipelineSpec::new(
            "ship-all",
            vec![
                StageSpec::new(ssd, OpClass::Scan, 1.0),
                StageSpec::new(snic, OpClass::Project, 1.0),
                StageSpec::new(cnic, OpClass::Project, 1.0),
                StageSpec::new(cpu, OpClass::Filter, 0.01),
            ],
            bytes,
        );

        let mut sim_a = FlowSim::new(Topology::disaggregated(&DisaggregatedConfig::default()));
        sim_a.add_pipeline(pushdown);
        let a = sim_a.run();
        let mut sim_b = FlowSim::new(Topology::disaggregated(&DisaggregatedConfig::default()));
        sim_b.add_pipeline(ship_all);
        let b = sim_b.run();

        assert!(
            a.pipelines[0].duration() < b.pipelines[0].duration(),
            "pushdown {} !< ship-all {}",
            a.pipelines[0].duration(),
            b.pipelines[0].duration()
        );
        // And the network moved ~100x fewer bytes.
        let net_a: u64 = a.link_bytes.values().sum();
        let net_b: u64 = b.link_bytes.values().sum();
        assert!(net_a * 10 < net_b, "net_a={net_a} net_b={net_b}");
    }

    #[test]
    fn queues_never_exceed_capacity() {
        let topo = disagg();
        let spec = full_path_pipeline(&topo, 32 << 20, 1.0);
        let caps: Vec<usize> = spec.stages.iter().map(|s| s.queue_capacity).collect();
        let mut sim = FlowSim::new(topo);
        sim.add_pipeline(spec);
        let report = sim.run();
        for (stage, cap) in report.pipelines[0].stages.iter().zip(caps) {
            assert!(
                stage.queue_high_watermark <= cap,
                "stage {} watermark {} > cap {}",
                stage.op,
                stage.queue_high_watermark,
                cap
            );
        }
    }

    #[test]
    fn control_traffic_is_a_small_fraction() {
        let topo = disagg();
        let spec = full_path_pipeline(&topo, 128 << 20, 1.0);
        let mut sim = FlowSim::new(topo);
        sim.add_pipeline(spec);
        let report = sim.run();
        let control = report.pipelines[0].control_bytes();
        let data: u64 = report.link_bytes.values().sum();
        assert!(
            (control as f64) < 0.01 * data as f64,
            "control {control} not << data {data}"
        );
        assert!(control > 0);
    }

    #[test]
    fn rate_limit_slows_pipeline() {
        let topo = disagg();
        let fast_spec = full_path_pipeline(&topo, 64 << 20, 1.0);
        let slow_spec = fast_spec
            .clone()
            .with_rate_limit(Bandwidth::gbytes_per_sec(1.0));
        let mut sim_a = FlowSim::new(Topology::disaggregated(&DisaggregatedConfig::default()));
        sim_a.add_pipeline(fast_spec);
        let fast = sim_a.run();
        let mut sim_b = FlowSim::new(Topology::disaggregated(&DisaggregatedConfig::default()));
        sim_b.add_pipeline(slow_spec);
        let slow = sim_b.run();
        assert!(
            slow.pipelines[0].duration().as_secs_f64()
                > 1.5 * fast.pipelines[0].duration().as_secs_f64()
        );
        // ~64 MB at 1 GB/s floor.
        assert!(slow.pipelines[0].duration().as_secs_f64() > 0.06);
    }

    #[test]
    fn concurrent_pipelines_contend_on_shared_link() {
        let make_spec = |topo: &Topology, name: &str| {
            let ssd = topo.expect_device("storage.ssd");
            let cpu = topo.expect_device("compute0.cpu");
            PipelineSpec::new(
                name,
                vec![
                    StageSpec::new(ssd, OpClass::Scan, 1.0),
                    StageSpec::new(cpu, OpClass::Count, 0.0),
                ],
                128 << 20,
            )
        };
        let topo = disagg();
        let mut solo = FlowSim::new(Topology::disaggregated(&DisaggregatedConfig::default()));
        solo.add_pipeline(make_spec(&topo, "solo"));
        let solo_report = solo.run();
        let solo_time = solo_report.pipelines[0].duration().as_secs_f64();

        let mut both = FlowSim::new(Topology::disaggregated(&DisaggregatedConfig::default()));
        both.add_pipeline(make_spec(&topo, "a"));
        both.add_pipeline(make_spec(&topo, "b"));
        let both_report = both.run();
        let t_a = both_report.pipelines[0].duration().as_secs_f64();
        let t_b = both_report.pipelines[1].duration().as_secs_f64();
        // Sharing the network roughly doubles each pipeline's time.
        assert!(t_a > 1.5 * solo_time, "t_a={t_a} solo={solo_time}");
        assert!(t_b > 1.5 * solo_time, "t_b={t_b} solo={solo_time}");
    }

    #[test]
    fn delayed_start_is_respected() {
        let topo = disagg();
        let cpu = topo.expect_device("compute0.cpu");
        let spec = PipelineSpec::new(
            "late",
            vec![StageSpec::new(cpu, OpClass::Count, 0.0)],
            1 << 20,
        )
        .starting_at(SimTime(5_000_000));
        let mut sim = FlowSim::new(topo);
        sim.add_pipeline(spec);
        let report = sim.run();
        assert!(report.pipelines[0].finished >= SimTime(5_000_000));
        assert_eq!(report.pipelines[0].started, SimTime(5_000_000));
    }

    #[test]
    fn tracer_records_valid_deterministic_timeline() {
        let run_once = || {
            let topo = disagg();
            let spec = full_path_pipeline(&topo, 16 << 20, 0.5);
            let mut sim = FlowSim::new(topo);
            let tracer = Arc::new(Tracer::new());
            sim.set_tracer(tracer.clone());
            sim.add_pipeline(spec);
            sim.run();
            tracer.validate().expect("structurally valid trace");
            tracer.sim_timeline()
        };
        let timeline = run_once();
        assert!(timeline.contains("storage.ssd"));
        assert!(timeline.contains("link."));
        assert!(timeline.contains("credit-return"));
        assert_eq!(timeline, run_once(), "sim trace must be deterministic");
    }

    #[test]
    #[should_panic(expected = "does not support op")]
    fn invalid_placement_rejected() {
        let topo = disagg();
        let nic = topo.expect_device("compute0.nic");
        let mut sim = FlowSim::new(topo);
        sim.add_pipeline(PipelineSpec::new(
            "bad",
            vec![StageSpec::new(nic, OpClass::Sort, 1.0)],
            1,
        ));
    }

    #[test]
    fn zero_selectivity_terminates_mid_pipeline() {
        // A COUNT on the NIC: nothing reaches the CPU (E6's shape).
        let topo = disagg();
        let ssd = topo.expect_device("storage.ssd");
        let snic = topo.expect_device("storage.nic");
        let cpu = topo.expect_device("compute0.cpu");
        let spec = PipelineSpec::new(
            "count-on-nic",
            vec![
                StageSpec::new(ssd, OpClass::Scan, 1.0),
                StageSpec::new(snic, OpClass::Count, 0.0),
                StageSpec::new(cpu, OpClass::Count, 0.0),
            ],
            32 << 20,
        );
        let mut sim = FlowSim::new(topo);
        sim.add_pipeline(spec);
        let report = sim.run();
        let stages = &report.pipelines[0].stages;
        assert_eq!(stages[1].bytes_in, 32 << 20);
        assert_eq!(stages[2].bytes_in, 0, "CPU saw bytes it should not have");
        assert_eq!(report.pipelines[0].bytes_delivered, 0);
    }
}
