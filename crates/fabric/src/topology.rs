//! The fabric graph: devices connected by links, with routing and the
//! reference platforms used throughout the experiments.

use std::collections::{HashMap, VecDeque};

use df_sim::{Bandwidth, SimDuration};

use crate::device::{DeviceId, DeviceKind, DeviceProfile};
use crate::link::{LinkId, LinkSpec, LinkTech};

/// Metadata for one device in a topology.
#[derive(Debug, Clone)]
pub struct DeviceMeta {
    /// The device id.
    pub id: DeviceId,
    /// Dotted name, e.g. `"compute0.cpu"` or `"storage.nic"`.
    pub name: String,
    /// Performance profile (kind + rates).
    pub profile: DeviceProfile,
}

/// An ordered path between two devices.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Links traversed, in order from source to destination.
    pub links: Vec<LinkId>,
    /// Devices visited, including both endpoints.
    pub devices: Vec<DeviceId>,
}

impl Route {
    /// The empty route (source == destination).
    pub fn local(device: DeviceId) -> Route {
        Route {
            links: Vec::new(),
            devices: vec![device],
        }
    }

    /// Whether source and destination are the same device.
    pub fn is_local(&self) -> bool {
        self.links.is_empty()
    }
}

/// A graph of devices and links modelling one hardware platform.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    devices: Vec<DeviceMeta>,
    links: Vec<LinkSpec>,
    by_name: HashMap<String, DeviceId>,
    adjacency: HashMap<DeviceId, Vec<(LinkId, DeviceId)>>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a device with the reference profile for its kind.
    pub fn add_device(&mut self, name: impl Into<String>, kind: DeviceKind) -> DeviceId {
        self.add_device_with_profile(name, DeviceProfile::reference(kind))
    }

    /// Add a device with an explicit profile.
    pub fn add_device_with_profile(
        &mut self,
        name: impl Into<String>,
        profile: DeviceProfile,
    ) -> DeviceId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate device name '{name}'"
        );
        let id = DeviceId(self.devices.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.devices.push(DeviceMeta { id, name, profile });
        self.adjacency.entry(id).or_default();
        id
    }

    /// Connect two devices with a link of the given technology.
    pub fn add_link(&mut self, tech: LinkTech, a: DeviceId, b: DeviceId) -> LinkId {
        assert!(a != b, "self-links are not allowed");
        assert!((a.0 as usize) < self.devices.len(), "unknown device {a}");
        assert!((b.0 as usize) < self.devices.len(), "unknown device {b}");
        let id = LinkId(self.links.len() as u32);
        self.links.push(LinkSpec { id, tech, a, b });
        self.adjacency.entry(a).or_default().push((id, b));
        self.adjacency.entry(b).or_default().push((id, a));
        id
    }

    /// All devices.
    pub fn devices(&self) -> &[DeviceMeta] {
        &self.devices
    }

    /// All links.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// Device metadata by id.
    pub fn device(&self, id: DeviceId) -> &DeviceMeta {
        &self.devices[id.0 as usize]
    }

    /// Device id by dotted name.
    pub fn device_by_name(&self, name: &str) -> Option<DeviceId> {
        self.by_name.get(name).copied()
    }

    /// Device id by dotted name, panicking with a useful message if absent.
    /// For experiment code where the platform shape is known.
    pub fn expect_device(&self, name: &str) -> DeviceId {
        self.device_by_name(name)
            .unwrap_or_else(|| panic!("no device named '{name}' in topology"))
    }

    /// Link spec by id.
    pub fn link(&self, id: LinkId) -> &LinkSpec {
        &self.links[id.0 as usize]
    }

    /// Shortest route (by hop count) between two devices, if connected.
    pub fn route(&self, from: DeviceId, to: DeviceId) -> Option<Route> {
        if from == to {
            return Some(Route::local(from));
        }
        let mut prev: HashMap<DeviceId, (LinkId, DeviceId)> = HashMap::new();
        let mut queue = VecDeque::from([from]);
        while let Some(cur) = queue.pop_front() {
            if cur == to {
                // Reconstruct.
                let mut links = Vec::new();
                let mut devices = vec![to];
                let mut walk = to;
                while walk != from {
                    let (l, p) = prev[&walk];
                    links.push(l);
                    devices.push(p);
                    walk = p;
                }
                links.reverse();
                devices.reverse();
                return Some(Route { links, devices });
            }
            for &(link, next) in self.adjacency.get(&cur).into_iter().flatten() {
                if next != from && !prev.contains_key(&next) {
                    prev.insert(next, (link, cur));
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// The bottleneck (minimum) bandwidth along a route; `None` for local
    /// routes (no link is crossed).
    pub fn route_bandwidth(&self, route: &Route) -> Option<Bandwidth> {
        route
            .links
            .iter()
            .map(|&l| self.link(l).tech.bandwidth())
            .reduce(Bandwidth::min)
    }

    /// Sum of per-link latencies along a route.
    pub fn route_latency(&self, route: &Route) -> SimDuration {
        route
            .links
            .iter()
            .map(|&l| self.link(l).tech.latency())
            .fold(SimDuration::ZERO, |acc, l| acc + l)
    }

    /// Store-and-forward transfer time for `bytes` along a route.
    pub fn route_transfer_time(&self, route: &Route, bytes: u64) -> SimDuration {
        route
            .links
            .iter()
            .map(|&l| self.link(l).transfer_time(bytes))
            .fold(SimDuration::ZERO, |acc, t| acc + t)
    }

    // ------------------------------------------------------------ builders

    /// Figure 1's platform: a conventional von Neumann server. Data path
    /// `ssd → cpu → memctl` with a plain NIC on the side.
    pub fn conventional_server() -> Topology {
        let mut t = Topology::new();
        let ssd = t.add_device("host.ssd", DeviceKind::PlainStorage);
        let cpu = t.add_device("host.cpu", DeviceKind::Cpu { cores: 8 });
        let mem = t.add_device("host.mem", DeviceKind::MemoryController);
        let nic = t.add_device("host.nic", DeviceKind::PlainNic);
        t.add_link(LinkTech::Pcie { generation: 4 }, ssd, cpu);
        t.add_link(LinkTech::Ddr { channels: 4 }, mem, cpu);
        t.add_link(LinkTech::Pcie { generation: 4 }, nic, cpu);
        t
    }

    /// The paper's disaggregated cloud platform (Figures 2–4, 6): a storage
    /// node and `compute_nodes` compute nodes joined by a switch.
    ///
    /// Device names: `storage.ssd`, `storage.nic`, `switch`,
    /// `compute{i}.nic`, `compute{i}.cpu`, `compute{i}.mem`.
    pub fn disaggregated(config: &DisaggregatedConfig) -> Topology {
        let mut t = Topology::new();
        let ssd = t.add_device(
            "storage.ssd",
            if config.smart_storage {
                DeviceKind::SmartStorage
            } else {
                DeviceKind::PlainStorage
            },
        );
        let snic = t.add_device(
            "storage.nic",
            if config.smart_nics {
                DeviceKind::SmartNic
            } else {
                DeviceKind::PlainNic
            },
        );
        let switch = t.add_device("switch", DeviceKind::Switch);
        t.add_link(
            LinkTech::Pcie {
                generation: config.pcie_generation,
            },
            ssd,
            snic,
        );
        t.add_link(config.network, snic, switch);
        for i in 0..config.compute_nodes {
            let nic = t.add_device(
                format!("compute{i}.nic"),
                if config.smart_nics {
                    DeviceKind::SmartNic
                } else {
                    DeviceKind::PlainNic
                },
            );
            let cpu = t.add_device(
                format!("compute{i}.cpu"),
                DeviceKind::Cpu {
                    cores: config.cores_per_node,
                },
            );
            let mem = t.add_device(
                format!("compute{i}.mem"),
                if config.near_memory_accel {
                    DeviceKind::NearMemAccel
                } else {
                    DeviceKind::MemoryController
                },
            );
            t.add_link(config.network, switch, nic);
            t.add_link(
                LinkTech::Pcie {
                    generation: config.pcie_generation,
                },
                nic,
                cpu,
            );
            t.add_link(LinkTech::Ddr { channels: 4 }, cpu, mem);
        }
        t
    }

    /// §6.4's rack-scale platform: compute sockets and disaggregated memory
    /// devices federated over a CXL fabric switch, every hop coherent.
    ///
    /// Device names: `cxl-switch`, `socket{i}.cpu`, `socket{i}.mem` (local),
    /// `pool{j}.mem` (+ near-memory accelerator) for the memory pool.
    pub fn cxl_rack(sockets: u32, memory_pools: u32, generation: u8) -> Topology {
        let mut t = Topology::new();
        let switch = t.add_device("cxl-switch", DeviceKind::Switch);
        for i in 0..sockets {
            let cpu = t.add_device(format!("socket{i}.cpu"), DeviceKind::Cpu { cores: 16 });
            let mem = t.add_device(format!("socket{i}.mem"), DeviceKind::MemoryController);
            t.add_link(LinkTech::Ddr { channels: 4 }, cpu, mem);
            t.add_link(LinkTech::Cxl { generation }, cpu, switch);
        }
        for j in 0..memory_pools {
            let mem = t.add_device(format!("pool{j}.mem"), DeviceKind::NearMemAccel);
            t.add_link(LinkTech::Cxl { generation }, mem, switch);
        }
        t
    }
}

/// Configuration for [`Topology::disaggregated`].
#[derive(Debug, Clone)]
pub struct DisaggregatedConfig {
    /// Number of compute nodes.
    pub compute_nodes: u32,
    /// CPU cores per compute node.
    pub cores_per_node: u32,
    /// Whether the storage controller is computational.
    pub smart_storage: bool,
    /// Whether NICs are smart (DPU-class).
    pub smart_nics: bool,
    /// Whether compute-node memory controllers carry a near-memory
    /// accelerator.
    pub near_memory_accel: bool,
    /// Network technology between NICs and the switch.
    pub network: LinkTech,
    /// PCIe generation for intra-node links.
    pub pcie_generation: u8,
}

impl Default for DisaggregatedConfig {
    fn default() -> Self {
        DisaggregatedConfig {
            compute_nodes: 1,
            cores_per_node: 8,
            smart_storage: true,
            smart_nics: true,
            near_memory_accel: true,
            network: LinkTech::Rdma { gbits: 100 },
            pcie_generation: 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::OpClass;

    #[test]
    fn conventional_server_routes() {
        let t = Topology::conventional_server();
        let ssd = t.expect_device("host.ssd");
        let mem = t.expect_device("host.mem");
        let route = t.route(ssd, mem).unwrap();
        // ssd -> cpu -> mem: two links.
        assert_eq!(route.links.len(), 2);
        assert_eq!(route.devices.len(), 3);
    }

    #[test]
    fn local_route_is_empty() {
        let t = Topology::conventional_server();
        let cpu = t.expect_device("host.cpu");
        let r = t.route(cpu, cpu).unwrap();
        assert!(r.is_local());
        assert!(t.route_bandwidth(&r).is_none());
        assert_eq!(t.route_latency(&r), SimDuration::ZERO);
    }

    #[test]
    fn disconnected_devices_have_no_route() {
        let mut t = Topology::new();
        let a = t.add_device("a", DeviceKind::PlainNic);
        let b = t.add_device("b", DeviceKind::PlainNic);
        assert!(t.route(a, b).is_none());
    }

    #[test]
    fn disaggregated_full_path() {
        let t = Topology::disaggregated(&DisaggregatedConfig::default());
        let ssd = t.expect_device("storage.ssd");
        let mem = t.expect_device("compute0.mem");
        let route = t.route(ssd, mem).unwrap();
        // ssd -> storage.nic -> switch -> compute0.nic -> cpu -> mem.
        assert_eq!(route.links.len(), 5);
        // Bottleneck is the 100 Gb RDMA network (12.5 GB/s).
        let bw = t.route_bandwidth(&route).unwrap();
        assert!((bw.as_gbytes_per_sec() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn route_is_shortest() {
        let t = Topology::disaggregated(&DisaggregatedConfig {
            compute_nodes: 3,
            ..DisaggregatedConfig::default()
        });
        let a = t.expect_device("compute0.nic");
        let b = t.expect_device("compute2.nic");
        let route = t.route(a, b).unwrap();
        assert_eq!(route.links.len(), 2); // via switch only
    }

    #[test]
    fn smart_flags_change_device_kinds() {
        let dumb = Topology::disaggregated(&DisaggregatedConfig {
            smart_storage: false,
            smart_nics: false,
            near_memory_accel: false,
            ..DisaggregatedConfig::default()
        });
        let ssd = dumb.expect_device("storage.ssd");
        assert!(!dumb.device(ssd).profile.supports(OpClass::Filter));
        let smart = Topology::disaggregated(&DisaggregatedConfig::default());
        let ssd = smart.expect_device("storage.ssd");
        assert!(smart.device(ssd).profile.supports(OpClass::Filter));
    }

    #[test]
    fn cxl_rack_cross_socket_memory_access() {
        let t = Topology::cxl_rack(2, 1, 5);
        let cpu = t.expect_device("socket0.cpu");
        let pool = t.expect_device("pool0.mem");
        let route = t.route(cpu, pool).unwrap();
        assert_eq!(route.links.len(), 2); // cpu -> cxl-switch -> pool
        for l in &route.links {
            assert!(t.link(*l).tech.coherent());
        }
    }

    #[test]
    fn route_transfer_time_sums_hops() {
        let t = Topology::conventional_server();
        let ssd = t.expect_device("host.ssd");
        let mem = t.expect_device("host.mem");
        let route = t.route(ssd, mem).unwrap();
        let direct: SimDuration = route
            .links
            .iter()
            .map(|&l| t.link(l).transfer_time(1 << 20))
            .fold(SimDuration::ZERO, |a, b| a + b);
        assert_eq!(t.route_transfer_time(&route, 1 << 20), direct);
    }

    #[test]
    #[should_panic(expected = "duplicate device name")]
    fn duplicate_names_rejected() {
        let mut t = Topology::new();
        t.add_device("x", DeviceKind::PlainNic);
        t.add_device("x", DeviceKind::PlainNic);
    }
}
