//! The fabric graph: devices connected by links, with routing and the
//! reference platforms used throughout the experiments.

use std::collections::{HashMap, VecDeque};
use std::sync::RwLock;

use df_sim::{Bandwidth, SimDuration};

use crate::device::{DeviceId, DeviceKind, DeviceProfile};
use crate::link::{LinkId, LinkSpec, LinkTech};

/// Metadata for one device in a topology.
#[derive(Debug, Clone)]
pub struct DeviceMeta {
    /// The device id.
    pub id: DeviceId,
    /// Dotted name, e.g. `"compute0.cpu"` or `"storage.nic"`.
    pub name: String,
    /// Performance profile (kind + rates).
    pub profile: DeviceProfile,
    /// Which host this device belongs to in a multi-host topology
    /// ([`Topology::cluster`]); `None` for shared infrastructure (the
    /// switch) and for single-host platforms.
    pub host: Option<u32>,
}

/// An ordered path between two devices.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Links traversed, in order from source to destination.
    pub links: Vec<LinkId>,
    /// Devices visited, including both endpoints.
    pub devices: Vec<DeviceId>,
}

impl Route {
    /// The empty route (source == destination).
    pub fn local(device: DeviceId) -> Route {
        Route {
            links: Vec::new(),
            devices: vec![device],
        }
    }

    /// Whether source and destination are the same device.
    pub fn is_local(&self) -> bool {
        self.links.is_empty()
    }
}

/// Memoized shortest routes. BFS runs once per `(from, to)` pair per
/// topology shape; mutations clear the cache. The lock is uncontended in
/// practice (compile-time lookups), and a poisoned lock simply falls back
/// to the surviving map — cached routes are immutable facts.
#[derive(Debug, Default)]
struct RouteCache {
    routes: RwLock<HashMap<(DeviceId, DeviceId), Option<Route>>>,
}

impl RouteCache {
    fn get(&self, key: (DeviceId, DeviceId)) -> Option<Option<Route>> {
        let guard = match self.routes.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.get(&key).cloned()
    }

    fn put(&self, key: (DeviceId, DeviceId), route: Option<Route>) {
        let mut guard = match self.routes.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.insert(key, route);
    }

    fn clear(&self) {
        let mut guard = match self.routes.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.clear();
    }
}

impl Clone for RouteCache {
    fn clone(&self) -> Self {
        let guard = match self.routes.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RouteCache {
            routes: RwLock::new(guard.clone()),
        }
    }
}

/// A graph of devices and links modelling one hardware platform.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    devices: Vec<DeviceMeta>,
    links: Vec<LinkSpec>,
    by_name: HashMap<String, DeviceId>,
    adjacency: HashMap<DeviceId, Vec<(LinkId, DeviceId)>>,
    route_cache: RouteCache,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a device with the reference profile for its kind.
    pub fn add_device(&mut self, name: impl Into<String>, kind: DeviceKind) -> DeviceId {
        self.add_device_with_profile(name, DeviceProfile::reference(kind))
    }

    /// Add a device with an explicit profile.
    pub fn add_device_with_profile(
        &mut self,
        name: impl Into<String>,
        profile: DeviceProfile,
    ) -> DeviceId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate device name '{name}'"
        );
        let id = DeviceId(self.devices.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.devices.push(DeviceMeta {
            id,
            name,
            profile,
            host: None,
        });
        self.adjacency.entry(id).or_default();
        self.route_cache.clear();
        id
    }

    /// Add a device that belongs to host `host` of a multi-host cluster.
    pub fn add_host_device(
        &mut self,
        host: u32,
        name: impl Into<String>,
        kind: DeviceKind,
    ) -> DeviceId {
        let id = self.add_device(name, kind);
        self.devices[id.0 as usize].host = Some(host);
        id
    }

    /// Connect two devices with a link of the given technology.
    pub fn add_link(&mut self, tech: LinkTech, a: DeviceId, b: DeviceId) -> LinkId {
        assert!(a != b, "self-links are not allowed");
        assert!((a.0 as usize) < self.devices.len(), "unknown device {a}");
        assert!((b.0 as usize) < self.devices.len(), "unknown device {b}");
        let id = LinkId(self.links.len() as u32);
        self.links.push(LinkSpec { id, tech, a, b });
        self.adjacency.entry(a).or_default().push((id, b));
        self.adjacency.entry(b).or_default().push((id, a));
        self.route_cache.clear();
        id
    }

    /// All devices.
    pub fn devices(&self) -> &[DeviceMeta] {
        &self.devices
    }

    /// All links.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// Device metadata by id.
    pub fn device(&self, id: DeviceId) -> &DeviceMeta {
        &self.devices[id.0 as usize]
    }

    /// Device id by dotted name.
    pub fn device_by_name(&self, name: &str) -> Option<DeviceId> {
        self.by_name.get(name).copied()
    }

    /// Device id by dotted name, panicking with a useful message if absent.
    /// For experiment code where the platform shape is known.
    pub fn expect_device(&self, name: &str) -> DeviceId {
        self.device_by_name(name)
            .unwrap_or_else(|| panic!("no device named '{name}' in topology"))
    }

    /// Link spec by id.
    pub fn link(&self, id: LinkId) -> &LinkSpec {
        &self.links[id.0 as usize]
    }

    /// Shortest route (by hop count) between two devices, if connected.
    /// Memoized: the BFS runs once per `(from, to)` pair, then the cached
    /// route is returned until the topology is mutated.
    pub fn route(&self, from: DeviceId, to: DeviceId) -> Option<Route> {
        if let Some(cached) = self.route_cache.get((from, to)) {
            return cached;
        }
        let route = self.compute_route(from, to);
        self.route_cache.put((from, to), route.clone());
        route
    }

    /// The uncached BFS behind [`Topology::route`].
    fn compute_route(&self, from: DeviceId, to: DeviceId) -> Option<Route> {
        if from == to {
            return Some(Route::local(from));
        }
        let mut prev: HashMap<DeviceId, (LinkId, DeviceId)> = HashMap::new();
        let mut queue = VecDeque::from([from]);
        while let Some(cur) = queue.pop_front() {
            if cur == to {
                // Reconstruct.
                let mut links = Vec::new();
                let mut devices = vec![to];
                let mut walk = to;
                while walk != from {
                    let (l, p) = prev[&walk];
                    links.push(l);
                    devices.push(p);
                    walk = p;
                }
                links.reverse();
                devices.reverse();
                return Some(Route { links, devices });
            }
            for &(link, next) in self.adjacency.get(&cur).into_iter().flatten() {
                if next != from && !prev.contains_key(&next) {
                    prev.insert(next, (link, cur));
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// The bottleneck (minimum) bandwidth along a route; `None` for local
    /// routes (no link is crossed).
    pub fn route_bandwidth(&self, route: &Route) -> Option<Bandwidth> {
        route
            .links
            .iter()
            .map(|&l| self.link(l).tech.bandwidth())
            .reduce(Bandwidth::min)
    }

    /// Sum of per-link latencies along a route.
    pub fn route_latency(&self, route: &Route) -> SimDuration {
        route
            .links
            .iter()
            .map(|&l| self.link(l).tech.latency())
            .fold(SimDuration::ZERO, |acc, l| acc + l)
    }

    /// Store-and-forward transfer time for `bytes` along a route.
    pub fn route_transfer_time(&self, route: &Route, bytes: u64) -> SimDuration {
        route
            .links
            .iter()
            .map(|&l| self.link(l).transfer_time(bytes))
            .fold(SimDuration::ZERO, |acc, t| acc + t)
    }

    // -------------------------------------------------------------- hosts

    /// Which host a device belongs to (`None` for shared infrastructure).
    pub fn host_of(&self, id: DeviceId) -> Option<u32> {
        self.device(id).host
    }

    /// Number of hosts in the topology (max host tag + 1; 0 when untagged).
    pub fn host_count(&self) -> usize {
        self.devices
            .iter()
            .filter_map(|d| d.host)
            .max()
            .map_or(0, |h| h as usize + 1)
    }

    /// The devices belonging to host `host`, in id order.
    pub fn host_devices(&self, host: u32) -> Vec<DeviceId> {
        self.devices
            .iter()
            .filter(|d| d.host == Some(host))
            .map(|d| d.id)
            .collect()
    }

    /// Route between two hosts' CPUs — the canonical inter-host path an
    /// exchange edge follows (cpu → nic → switch → nic → cpu). Falls back
    /// to the first tagged device of each host if a host has no CPU.
    pub fn route_between_hosts(&self, a: u32, b: u32) -> Option<Route> {
        let anchor = |host: u32| -> Option<DeviceId> {
            let tagged: Vec<&DeviceMeta> = self
                .devices
                .iter()
                .filter(|d| d.host == Some(host))
                .collect();
            tagged
                .iter()
                .find(|d| matches!(d.profile.kind, DeviceKind::Cpu { .. }))
                .or(tagged.first())
                .map(|d| d.id)
        };
        self.route(anchor(a)?, anchor(b)?)
    }

    // ------------------------------------------------------------ builders

    /// Figure 1's platform: a conventional von Neumann server. Data path
    /// `ssd → cpu → memctl` with a plain NIC on the side.
    pub fn conventional_server() -> Topology {
        let mut t = Topology::new();
        let ssd = t.add_device("host.ssd", DeviceKind::PlainStorage);
        let cpu = t.add_device("host.cpu", DeviceKind::Cpu { cores: 8 });
        let mem = t.add_device("host.mem", DeviceKind::MemoryController);
        let nic = t.add_device("host.nic", DeviceKind::PlainNic);
        t.add_link(LinkTech::Pcie { generation: 4 }, ssd, cpu);
        t.add_link(LinkTech::Ddr { channels: 4 }, mem, cpu);
        t.add_link(LinkTech::Pcie { generation: 4 }, nic, cpu);
        t
    }

    /// The paper's disaggregated cloud platform (Figures 2–4, 6): a storage
    /// node and `compute_nodes` compute nodes joined by a switch.
    ///
    /// Device names: `storage.ssd`, `storage.nic`, `switch`,
    /// `compute{i}.nic`, `compute{i}.cpu`, `compute{i}.mem`.
    pub fn disaggregated(config: &DisaggregatedConfig) -> Topology {
        let mut t = Topology::new();
        let ssd = t.add_device(
            "storage.ssd",
            if config.smart_storage {
                DeviceKind::SmartStorage
            } else {
                DeviceKind::PlainStorage
            },
        );
        let snic = t.add_device(
            "storage.nic",
            if config.smart_nics {
                DeviceKind::SmartNic
            } else {
                DeviceKind::PlainNic
            },
        );
        let switch = t.add_device("switch", DeviceKind::Switch);
        t.add_link(
            LinkTech::Pcie {
                generation: config.pcie_generation,
            },
            ssd,
            snic,
        );
        t.add_link(config.network, snic, switch);
        for i in 0..config.compute_nodes {
            let nic = t.add_device(
                format!("compute{i}.nic"),
                if config.smart_nics {
                    DeviceKind::SmartNic
                } else {
                    DeviceKind::PlainNic
                },
            );
            let cpu = t.add_device(
                format!("compute{i}.cpu"),
                DeviceKind::Cpu {
                    cores: config.cores_per_node,
                },
            );
            let mem = t.add_device(
                format!("compute{i}.mem"),
                if config.near_memory_accel {
                    DeviceKind::NearMemAccel
                } else {
                    DeviceKind::MemoryController
                },
            );
            t.add_link(config.network, switch, nic);
            t.add_link(
                LinkTech::Pcie {
                    generation: config.pcie_generation,
                },
                nic,
                cpu,
            );
            t.add_link(LinkTech::Ddr { channels: 4 }, cpu, mem);
        }
        t
    }

    /// An N-host scale-out cluster: every host owns a full data path
    /// (storage, NIC, CPU, memory) and all hosts meet at one switch —
    /// the substrate for partitioned tables and Exchange shuffles (§4.4).
    ///
    /// Device names: `switch`, `host{i}.ssd`, `host{i}.nic`,
    /// `host{i}.cpu`, `host{i}.mem`. Per-host links: `ssd —pcie— cpu`,
    /// `cpu —ddr— mem`, `cpu —pcie— nic`, `nic —network— switch`; so an
    /// exchange between hosts i and j travels
    /// `cpu → nic → switch → nic → cpu`, with the NICs able to run
    /// partition / pre-aggregate kernels in-path when `smart_nics` is set.
    /// Every `host{i}.*` device carries [`DeviceMeta::host`]` == Some(i)`.
    pub fn cluster(hosts: u32, config: &ClusterConfig) -> Topology {
        assert!(hosts > 0, "a cluster needs at least one host");
        let mut t = Topology::new();
        let switch = t.add_device("switch", DeviceKind::Switch);
        for i in 0..hosts {
            let ssd = t.add_host_device(
                i,
                format!("host{i}.ssd"),
                if config.smart_storage {
                    DeviceKind::SmartStorage
                } else {
                    DeviceKind::PlainStorage
                },
            );
            let nic = t.add_host_device(
                i,
                format!("host{i}.nic"),
                if config.smart_nics {
                    DeviceKind::SmartNic
                } else {
                    DeviceKind::PlainNic
                },
            );
            let cpu = t.add_host_device(
                i,
                format!("host{i}.cpu"),
                DeviceKind::Cpu {
                    cores: config.cores_per_host,
                },
            );
            let mem = t.add_host_device(
                i,
                format!("host{i}.mem"),
                if config.near_memory_accel {
                    DeviceKind::NearMemAccel
                } else {
                    DeviceKind::MemoryController
                },
            );
            let pcie = LinkTech::Pcie {
                generation: config.pcie_generation,
            };
            t.add_link(pcie, ssd, cpu);
            t.add_link(LinkTech::Ddr { channels: 4 }, cpu, mem);
            t.add_link(pcie, cpu, nic);
            t.add_link(config.network, nic, switch);
        }
        t
    }

    /// §6.4's rack-scale platform: compute sockets and disaggregated memory
    /// devices federated over a CXL fabric switch, every hop coherent.
    ///
    /// Device names: `cxl-switch`, `socket{i}.cpu`, `socket{i}.mem` (local),
    /// `pool{j}.mem` (+ near-memory accelerator) for the memory pool.
    pub fn cxl_rack(sockets: u32, memory_pools: u32, generation: u8) -> Topology {
        let mut t = Topology::new();
        let switch = t.add_device("cxl-switch", DeviceKind::Switch);
        for i in 0..sockets {
            let cpu = t.add_device(format!("socket{i}.cpu"), DeviceKind::Cpu { cores: 16 });
            let mem = t.add_device(format!("socket{i}.mem"), DeviceKind::MemoryController);
            t.add_link(LinkTech::Ddr { channels: 4 }, cpu, mem);
            t.add_link(LinkTech::Cxl { generation }, cpu, switch);
        }
        for j in 0..memory_pools {
            let mem = t.add_device(format!("pool{j}.mem"), DeviceKind::NearMemAccel);
            t.add_link(LinkTech::Cxl { generation }, mem, switch);
        }
        t
    }
}

/// Configuration for [`Topology::disaggregated`].
#[derive(Debug, Clone)]
pub struct DisaggregatedConfig {
    /// Number of compute nodes.
    pub compute_nodes: u32,
    /// CPU cores per compute node.
    pub cores_per_node: u32,
    /// Whether the storage controller is computational.
    pub smart_storage: bool,
    /// Whether NICs are smart (DPU-class).
    pub smart_nics: bool,
    /// Whether compute-node memory controllers carry a near-memory
    /// accelerator.
    pub near_memory_accel: bool,
    /// Network technology between NICs and the switch.
    pub network: LinkTech,
    /// PCIe generation for intra-node links.
    pub pcie_generation: u8,
}

impl Default for DisaggregatedConfig {
    fn default() -> Self {
        DisaggregatedConfig {
            compute_nodes: 1,
            cores_per_node: 8,
            smart_storage: true,
            smart_nics: true,
            near_memory_accel: true,
            network: LinkTech::Rdma { gbits: 100 },
            pcie_generation: 5,
        }
    }
}

/// Configuration for [`Topology::cluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// CPU cores per host.
    pub cores_per_host: u32,
    /// Whether per-host storage controllers are computational.
    pub smart_storage: bool,
    /// Whether NICs are smart (DPU-class) — enables in-path partition /
    /// pre-aggregation on exchange routes.
    pub smart_nics: bool,
    /// Whether host memory controllers carry a near-memory accelerator.
    pub near_memory_accel: bool,
    /// Network technology between host NICs and the switch.
    pub network: LinkTech,
    /// PCIe generation for intra-host links.
    pub pcie_generation: u8,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            cores_per_host: 8,
            smart_storage: true,
            smart_nics: true,
            near_memory_accel: true,
            network: LinkTech::Rdma { gbits: 100 },
            pcie_generation: 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::OpClass;

    #[test]
    fn conventional_server_routes() {
        let t = Topology::conventional_server();
        let ssd = t.expect_device("host.ssd");
        let mem = t.expect_device("host.mem");
        let route = t.route(ssd, mem).unwrap();
        // ssd -> cpu -> mem: two links.
        assert_eq!(route.links.len(), 2);
        assert_eq!(route.devices.len(), 3);
    }

    #[test]
    fn local_route_is_empty() {
        let t = Topology::conventional_server();
        let cpu = t.expect_device("host.cpu");
        let r = t.route(cpu, cpu).unwrap();
        assert!(r.is_local());
        assert!(t.route_bandwidth(&r).is_none());
        assert_eq!(t.route_latency(&r), SimDuration::ZERO);
    }

    #[test]
    fn disconnected_devices_have_no_route() {
        let mut t = Topology::new();
        let a = t.add_device("a", DeviceKind::PlainNic);
        let b = t.add_device("b", DeviceKind::PlainNic);
        assert!(t.route(a, b).is_none());
    }

    #[test]
    fn disaggregated_full_path() {
        let t = Topology::disaggregated(&DisaggregatedConfig::default());
        let ssd = t.expect_device("storage.ssd");
        let mem = t.expect_device("compute0.mem");
        let route = t.route(ssd, mem).unwrap();
        // ssd -> storage.nic -> switch -> compute0.nic -> cpu -> mem.
        assert_eq!(route.links.len(), 5);
        // Bottleneck is the 100 Gb RDMA network (12.5 GB/s).
        let bw = t.route_bandwidth(&route).unwrap();
        assert!((bw.as_gbytes_per_sec() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn route_is_shortest() {
        let t = Topology::disaggregated(&DisaggregatedConfig {
            compute_nodes: 3,
            ..DisaggregatedConfig::default()
        });
        let a = t.expect_device("compute0.nic");
        let b = t.expect_device("compute2.nic");
        let route = t.route(a, b).unwrap();
        assert_eq!(route.links.len(), 2); // via switch only
    }

    #[test]
    fn smart_flags_change_device_kinds() {
        let dumb = Topology::disaggregated(&DisaggregatedConfig {
            smart_storage: false,
            smart_nics: false,
            near_memory_accel: false,
            ..DisaggregatedConfig::default()
        });
        let ssd = dumb.expect_device("storage.ssd");
        assert!(!dumb.device(ssd).profile.supports(OpClass::Filter));
        let smart = Topology::disaggregated(&DisaggregatedConfig::default());
        let ssd = smart.expect_device("storage.ssd");
        assert!(smart.device(ssd).profile.supports(OpClass::Filter));
    }

    #[test]
    fn cxl_rack_cross_socket_memory_access() {
        let t = Topology::cxl_rack(2, 1, 5);
        let cpu = t.expect_device("socket0.cpu");
        let pool = t.expect_device("pool0.mem");
        let route = t.route(cpu, pool).unwrap();
        assert_eq!(route.links.len(), 2); // cpu -> cxl-switch -> pool
        for l in &route.links {
            assert!(t.link(*l).tech.coherent());
        }
    }

    #[test]
    fn route_transfer_time_sums_hops() {
        let t = Topology::conventional_server();
        let ssd = t.expect_device("host.ssd");
        let mem = t.expect_device("host.mem");
        let route = t.route(ssd, mem).unwrap();
        let direct: SimDuration = route
            .links
            .iter()
            .map(|&l| t.link(l).transfer_time(1 << 20))
            .fold(SimDuration::ZERO, |a, b| a + b);
        assert_eq!(t.route_transfer_time(&route, 1 << 20), direct);
    }

    #[test]
    #[should_panic(expected = "duplicate device name")]
    fn duplicate_names_rejected() {
        let mut t = Topology::new();
        t.add_device("x", DeviceKind::PlainNic);
        t.add_device("x", DeviceKind::PlainNic);
    }

    #[test]
    fn route_cache_returns_identical_routes() {
        let t = Topology::disaggregated(&DisaggregatedConfig {
            compute_nodes: 2,
            ..DisaggregatedConfig::default()
        });
        let ssd = t.expect_device("storage.ssd");
        let mem = t.expect_device("compute1.mem");
        let first = t.route(ssd, mem).unwrap();
        let second = t.route(ssd, mem).unwrap();
        assert_eq!(first, second);
        assert_eq!(first.links.len(), 5);
        // Local and disconnected results are cached correctly too.
        assert!(t.route(ssd, ssd).unwrap().is_local());
        assert!(t.route(ssd, ssd).unwrap().is_local());
    }

    #[test]
    fn route_cache_invalidated_by_mutation() {
        let mut t = Topology::new();
        let a = t.add_device("a", DeviceKind::PlainNic);
        let b = t.add_device("b", DeviceKind::PlainNic);
        assert!(t.route(a, b).is_none());
        t.add_link(LinkTech::Rdma { gbits: 100 }, a, b);
        let r = t.route(a, b).expect("link added, route must appear");
        assert_eq!(r.links.len(), 1);
    }

    #[test]
    fn cluster_shape_and_host_tags() {
        let t = Topology::cluster(4, &ClusterConfig::default());
        assert_eq!(t.host_count(), 4);
        // 1 switch + 4 devices per host.
        assert_eq!(t.devices().len(), 1 + 4 * 4);
        assert_eq!(t.host_of(t.expect_device("switch")), None);
        for i in 0..4u32 {
            assert_eq!(t.host_devices(i).len(), 4);
            for suffix in ["ssd", "nic", "cpu", "mem"] {
                let dev = t.expect_device(&format!("host{i}.{suffix}"));
                assert_eq!(t.host_of(dev), Some(i));
            }
        }
        // Smart flags take effect per host.
        let ssd = t.expect_device("host2.ssd");
        assert!(t.device(ssd).profile.supports(OpClass::Filter));
    }

    #[test]
    fn cluster_cross_host_route_goes_via_switch() {
        let t = Topology::cluster(8, &ClusterConfig::default());
        let route = t.route_between_hosts(1, 6).unwrap();
        // cpu -> nic -> switch -> nic -> cpu.
        assert_eq!(route.links.len(), 4);
        let switch = t.expect_device("switch");
        assert!(route.devices.contains(&switch));
        // Same-host "route" is local.
        assert!(t.route_between_hosts(3, 3).unwrap().is_local());
        // The bottleneck is the configured network.
        let bw = t.route_bandwidth(&route).unwrap();
        assert!((bw.as_gbytes_per_sec() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn cluster_scan_path_stays_on_host() {
        let t = Topology::cluster(2, &ClusterConfig::default());
        let ssd = t.expect_device("host0.ssd");
        let cpu = t.expect_device("host0.cpu");
        let route = t.route(ssd, cpu).unwrap();
        assert_eq!(route.links.len(), 1);
        assert!(
            route.devices.iter().all(|&d| t.host_of(d) == Some(0)),
            "scan path left host 0"
        );
    }
}
