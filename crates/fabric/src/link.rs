//! Interconnect technologies: bandwidth and latency models.
//!
//! §6 of the paper traces the evolution PCIe 3 → CXL-forced PCIe 5/6 → the
//! ratified-in-2025 PCIe 7, doubling bandwidth each generation (x16:
//! 16 → 32 → 64 → 128 → 256 GB/s). Experiment E11 sweeps these figures.

use std::fmt;

use df_sim::{Bandwidth, SimDuration};

/// Identifier of a link within a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// The technology of a link, determining bandwidth and latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkTech {
    /// PCI Express, by generation (3..=7), x16 lanes assumed.
    Pcie {
        /// Generation, 3 through 7.
        generation: u8,
    },
    /// CXL over the matching PCIe physical layer; lower effective latency
    /// than raw PCIe transactions and hardware coherence support.
    Cxl {
        /// Underlying PCIe generation (5..=7).
        generation: u8,
    },
    /// Datacenter Ethernet at the given line rate.
    Ethernet {
        /// Line rate in gigabits per second (e.g. 100, 200, 400, 800).
        gbits: u32,
    },
    /// RDMA over the same Ethernet physical layer: same bandwidth, lower
    /// effective latency (kernel bypass).
    Rdma {
        /// Line rate in gigabits per second.
        gbits: u32,
    },
    /// DDR memory channel group between a controller and a CPU/accelerator.
    Ddr {
        /// Number of channels (25 GB/s class each, DDR5-ish).
        channels: u32,
    },
    /// Proprietary GPU-class interconnect (NVLink/InfinityFabric class).
    NvLink,
}

impl LinkTech {
    /// Peak unidirectional bandwidth for the technology.
    pub fn bandwidth(self) -> Bandwidth {
        match self {
            LinkTech::Pcie { generation } | LinkTech::Cxl { generation } => {
                // x16 lanes: gen3 = 16 GB/s, doubling each generation (§6.2).
                let gen = generation.clamp(1, 8) as u32;
                Bandwidth::gbytes_per_sec(16.0 * f64::from(1u32 << (gen - 3).min(8)))
            }
            LinkTech::Ethernet { gbits } | LinkTech::Rdma { gbits } => {
                Bandwidth::gbits_per_sec(f64::from(gbits))
            }
            LinkTech::Ddr { channels } => Bandwidth::gbytes_per_sec(25.0 * f64::from(channels)),
            LinkTech::NvLink => Bandwidth::gbytes_per_sec(300.0),
        }
    }

    /// One-way message latency for the technology.
    pub fn latency(self) -> SimDuration {
        match self {
            LinkTech::Pcie { .. } => SimDuration::from_nanos(500),
            // CXL's load/store path is leaner than PCIe transactions (§6.2).
            LinkTech::Cxl { .. } => SimDuration::from_nanos(250),
            LinkTech::Ethernet { .. } => SimDuration::from_micros(10),
            LinkTech::Rdma { .. } => SimDuration::from_micros(2),
            LinkTech::Ddr { .. } => SimDuration::from_nanos(90),
            LinkTech::NvLink => SimDuration::from_nanos(300),
        }
    }

    /// Whether the link can carry hardware cache-coherence traffic (§6.2:
    /// cxl.cache / cxl.mem).
    pub fn coherent(self) -> bool {
        matches!(
            self,
            LinkTech::Cxl { .. } | LinkTech::Ddr { .. } | LinkTech::NvLink
        )
    }

    /// Short display name.
    pub fn name(self) -> String {
        match self {
            LinkTech::Pcie { generation } => format!("pcie{generation}"),
            LinkTech::Cxl { generation } => format!("cxl/pcie{generation}"),
            LinkTech::Ethernet { gbits } => format!("eth{gbits}"),
            LinkTech::Rdma { gbits } => format!("rdma{gbits}"),
            LinkTech::Ddr { channels } => format!("ddr-x{channels}"),
            LinkTech::NvLink => "nvlink".to_string(),
        }
    }
}

/// A concrete link instance between two devices.
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// Link identifier (unique within its topology).
    pub id: LinkId,
    /// The technology.
    pub tech: LinkTech,
    /// Endpoint device A.
    pub a: crate::device::DeviceId,
    /// Endpoint device B (links are bidirectional/full-duplex).
    pub b: crate::device::DeviceId,
}

impl LinkSpec {
    /// Serialization time for `bytes` plus the propagation latency.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.tech.bandwidth().time_for_bytes(bytes) + self.tech.latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_doubles_per_generation() {
        let g3 = LinkTech::Pcie { generation: 3 }
            .bandwidth()
            .as_gbytes_per_sec();
        let g4 = LinkTech::Pcie { generation: 4 }
            .bandwidth()
            .as_gbytes_per_sec();
        let g5 = LinkTech::Pcie { generation: 5 }
            .bandwidth()
            .as_gbytes_per_sec();
        let g6 = LinkTech::Pcie { generation: 6 }
            .bandwidth()
            .as_gbytes_per_sec();
        assert_eq!(g3, 16.0);
        assert_eq!(g4, 32.0);
        assert_eq!(g5, 64.0);
        assert_eq!(g6, 128.0);
    }

    #[test]
    fn cxl_matches_pcie_bandwidth_with_lower_latency() {
        let cxl = LinkTech::Cxl { generation: 5 };
        let pcie = LinkTech::Pcie { generation: 5 };
        assert_eq!(
            cxl.bandwidth().as_gbytes_per_sec(),
            pcie.bandwidth().as_gbytes_per_sec()
        );
        assert!(cxl.latency() < pcie.latency());
    }

    #[test]
    fn rdma_beats_tcp_latency_at_same_bandwidth() {
        let eth = LinkTech::Ethernet { gbits: 100 };
        let rdma = LinkTech::Rdma { gbits: 100 };
        assert_eq!(
            eth.bandwidth().as_bytes_per_sec(),
            rdma.bandwidth().as_bytes_per_sec()
        );
        assert!(rdma.latency() < eth.latency());
    }

    #[test]
    fn coherence_capability() {
        assert!(LinkTech::Cxl { generation: 5 }.coherent());
        assert!(LinkTech::Ddr { channels: 4 }.coherent());
        assert!(!LinkTech::Pcie { generation: 5 }.coherent());
        assert!(!LinkTech::Rdma { gbits: 100 }.coherent());
    }

    #[test]
    fn transfer_time_has_latency_floor() {
        let link = LinkSpec {
            id: LinkId(0),
            tech: LinkTech::Ethernet { gbits: 100 },
            a: crate::device::DeviceId(0),
            b: crate::device::DeviceId(1),
        };
        assert_eq!(
            link.transfer_time(0),
            LinkTech::Ethernet { gbits: 100 }.latency()
        );
        // 12.5 GB/s: 125 MB takes 10 ms + 10 us latency.
        let t = link.transfer_time(125_000_000);
        assert!((t.as_secs_f64() - 0.01001).abs() < 1e-5, "{t}");
    }

    #[test]
    fn ddr_scales_with_channels() {
        let one = LinkTech::Ddr { channels: 1 }
            .bandwidth()
            .as_gbytes_per_sec();
        let four = LinkTech::Ddr { channels: 4 }
            .bandwidth()
            .as_gbytes_per_sec();
        assert_eq!(four, 4.0 * one);
    }
}
