//! Two tenants sharing one query service — the README's serving
//! quick-start as a runnable example.
//!
//! Starts the multi-tenant server in-process on an ephemeral port, then
//! connects two clients concurrently over real TCP: `gold` (weight 4) and
//! `bronze` (weight 1). Both stream their results back through the
//! length-prefixed wire protocol while the fair-share scheduler arbitrates
//! credits between them.
//!
//! ```bash
//! cargo run --release --example multi_tenant_service
//! ```

use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;

use rheo::core::session::Session;
use rheo::data::{batch::batch_of, Column};
use rheo::serve::dispatch::{QueryService, ServiceConfig};
use rheo::serve::server::{serve, Client};
use rheo::serve::tenant::TenantSpec;

fn client(addr: SocketAddr, spec: TenantSpec, sql: &str) -> rheo::serve::Result<(u64, u64)> {
    let mut c = Client::connect(addr, &spec)?;
    let reply = c.query(sql)?;
    println!(
        "{:>6}: {:>5} rows, {:>3} credits  ({sql})",
        spec.name, reply.rows, reply.credits
    );
    c.bye()?;
    Ok((reply.rows, reply.credits))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::in_memory()?;
    let rows: i64 = 10_000;
    session.create_table(
        "orders",
        &[batch_of(vec![
            ("id", Column::from_i64((0..rows).collect())),
            (
                "amount",
                Column::from_f64((0..rows).map(|i| (i % 500) as f64).collect()),
            ),
        ])],
    )?;
    let service = Arc::new(QueryService::new(session, ServiceConfig::default()));
    let handle = serve(service, 0)?;
    let addr = handle.addr();
    println!("serving on {addr}");

    let gold = thread::spawn(move || {
        client(
            addr,
            TenantSpec::new("gold", 4),
            "SELECT COUNT(*) AS n FROM orders WHERE amount > 100.0",
        )
    });
    let bronze = thread::spawn(move || {
        client(
            addr,
            TenantSpec::new("bronze", 1),
            "SELECT COUNT(*) AS n FROM orders",
        )
    });
    let (gold_rows, _) = gold.join().expect("gold thread")?;
    let (bronze_rows, _) = bronze.join().expect("bronze thread")?;
    assert_eq!(gold_rows, 1);
    assert_eq!(bronze_rows, 1);
    handle.shutdown();
    println!("both tenants served concurrently; server drained cleanly");
    Ok(())
}
