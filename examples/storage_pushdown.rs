//! The Figure 2 scenario, end to end: the same analytical query executed
//! with and without pushing selection + projection to the storage layer,
//! with the byte-level billing story the paper highlights ("these systems
//! charge for the amount of data read from storage").
//!
//! ```text
//! cargo run --release --example storage_pushdown
//! ```

use rheo::bench::workload;
use rheo::core::session::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::in_memory()?;
    session.create_table("lineitem", &[workload::lineitem(200_000, 7)])?;

    let query = "SELECT l_orderkey, l_price FROM lineitem \
                 WHERE l_orderkey < 500 AND l_quantity > 45";
    println!("query: {query}\n");

    let logical = session.logical_plan(query)?;
    let variants = session.variants(&logical)?;
    println!(
        "the optimizer produced {} data-path alternatives (§7.3):\n",
        variants.len()
    );

    let mut reference = None;
    for v in &variants {
        let result = session.execute_plan(&v.plan)?;
        // Every alternative must agree.
        let rows = result.batch.canonical_rows();
        match &reference {
            None => reference = Some(rows),
            Some(r) => assert_eq!(r, &rows, "variants disagree!"),
        }
        println!("── variant: {} ──", v.plan.variant);
        print!("{}", v.plan.root.explain());
        println!(
            "  estimated: {} | moved {} bytes (est)",
            v.cost.time, v.cost.moved_bytes
        );
        println!(
            "  measured:  {} bytes across devices, {} rows returned",
            result.ledger.cross_device_bytes(),
            result.batch.rows()
        );
        if let Some(scan) = result.scan_stats.first() {
            println!(
                "  billing:   {} bytes scanned at storage, {} bytes shipped \
                 ({} pages pruned by zone maps)",
                scan.bytes_scanned, scan.bytes_returned, scan.pages_pruned
            );
        }
        println!();
    }

    println!(
        "all {} variants returned identical results — placement changed \
         only where the work happened and how many bytes moved",
        variants.len()
    );
    Ok(())
}
