//! Figure 6 in motion: one query planned as every data-path alternative,
//! executed for real, then replayed through the credit-based flow simulator
//! (§7.1) and admitted by the interference-aware scheduler (§7.3).
//!
//! ```text
//! cargo run --release --example full_pipeline
//! ```

use std::sync::Arc;

use rheo::bench::workload;
use rheo::core::scheduler::{flow_pipeline, Scheduler};
use rheo::core::session::Session;
use rheo::fabric::flow::FlowSim;
use rheo::fabric::topology::{DisaggregatedConfig, Topology};

const QUERY: &str = "SELECT l_region, COUNT(*) AS n, SUM(l_price) AS revenue \
                     FROM lineitem WHERE l_shipdate BETWEEN 100 AND 1500 \
                     GROUP BY l_region";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::in_memory()?;
    session.create_table("lineitem", &[workload::lineitem(300_000, 5)])?;
    let profiles = session.profiles();
    let cpu = session.optimizer().site().cpu;

    println!("query: {QUERY}\n");
    let logical = session.logical_plan(QUERY)?;
    let variants = session.variants(&logical)?;

    // Execute every alternative for real and replay it in simulated time.
    println!(
        "{:<20} {:>14} {:>14} {:>12}",
        "variant", "bytes moved", "sim time", "result rows"
    );
    let mut reference = None;
    for v in &variants {
        let result = session.execute_plan(&v.plan)?;
        match &reference {
            None => reference = Some(result.batch.canonical_rows()),
            Some(r) => assert_eq!(r, &result.batch.canonical_rows()),
        }
        let spec = flow_pipeline(&v.plan, &profiles, cpu, &v.plan.variant)?;
        let mut sim = FlowSim::new(Topology::disaggregated(&DisaggregatedConfig::default()));
        sim.add_pipeline(spec);
        let sim_time = sim.run().pipelines[0].duration().to_string();
        println!(
            "{:<20} {:>14} {:>14} {:>12}",
            v.plan.variant,
            result.ledger.cross_device_bytes(),
            sim_time,
            result.batch.rows()
        );
    }

    // The scheduler at work: admit three copies of the query back to back.
    // The first gets the best plan at full rate; later ones see contended
    // links and get alternates or rate limits.
    println!("\nscheduler admissions (§7.3):");
    let mut scheduler = Scheduler::new(Arc::clone(session.topology()), cpu);
    let mut handles = Vec::new();
    for q in 0..3 {
        let admission = scheduler.admit(&variants)?;
        println!(
            "  query {q}: variant '{}'{}",
            variants[admission.variant_index].plan.variant,
            admission
                .rate_limit
                .map(|bw| format!(", DMA rate-limited to {bw}"))
                .unwrap_or_default()
        );
        handles.push(admission.handle);
    }
    for h in handles {
        scheduler.release(h);
    }
    println!("  all released — links free again");
    Ok(())
}
