//! §5's near-memory functional units working together on an HTAP-flavoured
//! scenario: fresh rows land in row pages, the transposition unit converts
//! them to columns, the filter unit reduces them before the caches, and the
//! pointer-chasing unit serves index lookups at the memory controller.
//!
//! ```text
//! cargo run --release --example near_memory_htap
//! ```

use rheo::bench::workload;
use rheo::mem::accel::NearMemAccelerator;
use rheo::mem::btree;
use rheo::mem::region::{MemRegion, Placement};
use rheo::storage::predicate::StoragePredicate;
use rheo::storage::zonemap::CmpOp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut accel = NearMemAccelerator::new();

    // 1. OLTP side: recent data arrives row-major.
    let fresh = workload::orders(50_000, 3);
    let row_page = accel.transpose_to_rows(&fresh)?;
    println!(
        "ingested {} rows into a row page ({} bytes)",
        row_page.rows(),
        row_page.byte_size()
    );

    // 2. HTAP conversion: the transposition unit re-materializes columns
    //    near memory; the CPU never touches the row-major bytes.
    let columns = accel.transpose_to_columns(&row_page)?;
    assert_eq!(columns.canonical_rows(), fresh.canonical_rows());
    println!("transposed back to columnar — bit-exact roundtrip");

    // 3. Analytical filter along the DRAM→cache path (Figure 5): only
    //    high-priority rows proceed toward the cores.
    let hot = accel.filter(
        &columns,
        &StoragePredicate::cmp("o_priority", CmpOp::Eq, 4i64),
    )?;
    let stats = accel.stats();
    println!(
        "near-memory filter: {} of {} rows proceed to the caches \
         ({} bytes in, {} bytes out, {:.1}x reduction so far across units)",
        hot.rows(),
        columns.rows(),
        stats.bytes_in,
        stats.bytes_out,
        stats.reduction_factor()
    );

    // 4. Index lookups via the pointer-chasing unit: the B-tree lives in a
    //    (disaggregated) memory region; traversals never cross to the CPU.
    let pairs: Vec<(i64, i64)> = (0..fresh.rows() as i64).map(|k| (k, k * 2)).collect();
    let mut region = MemRegion::new(0, 512, Placement::Remote);
    let tree = btree::build(&mut region, &pairs, 16)?;
    region.reset_stats();
    let keys: Vec<i64> = (0..100).map(|i| i * 499).collect();
    let values = accel.chase(&mut region, &tree, &keys)?;
    let found = values.iter().filter(|v| v.is_some()).count();
    println!(
        "pointer chasing: {found}/{} lookups resolved at the memory \
         controller, touching {} pages locally (tree height {}); only the \
         values crossed toward the CPU",
        keys.len(),
        region.stats().pages_read,
        tree.height
    );

    // 5. Background maintenance: a GC-style list sweep near memory.
    let payloads: Vec<Vec<u8>> = (0..64u8).map(|i| vec![i]).collect();
    let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
    let mut gc_region = MemRegion::new(0, 64, Placement::Remote);
    let head = rheo::mem::accel::build_list(&mut gc_region, &refs)?;
    let (_, removed) = accel.sweep_list(&mut gc_region, head, &|p| p[0] % 4 != 0)?;
    println!("list unit: GC sweep removed {removed} dead nodes near memory");

    Ok(())
}
