//! Figure 4's scattering pipeline: a distributed, partitioned hash join
//! compiled as a placed Exchange plan over the pipeline-graph IR, with the
//! partitioning on the smart NICs — "without involvement of the CPU" —
//! versus the conventional host-CPU exchange.
//!
//! ```text
//! cargo run --release --example distributed_join
//! ```

use std::time::Instant;

use rheo::bench::workload;
use rheo::core::logical::LogicalPlan;
use rheo::core::scaleout::{exchange_hash_join, ScaleoutConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let orders = workload::orders(25_000, 11);
    let lineitem = workload::lineitem(100_000, 11);
    let join_schema = LogicalPlan::values(vec![orders.clone()])?
        .join(
            LogicalPlan::values(vec![lineitem.clone()])?,
            vec![("o_orderkey", "l_orderkey")],
        )?
        .schema();

    println!(
        "joining orders ({} rows) with lineitem ({} rows) across cluster hosts\n",
        orders.rows(),
        lineitem.rows()
    );

    let mut reference = None;
    for hosts in [2usize, 4, 8] {
        for smart in [true, false] {
            let config = ScaleoutConfig {
                hosts,
                smart_exchange: smart,
                ..ScaleoutConfig::default()
            };
            let t = Instant::now();
            let (result, report) = exchange_hash_join(
                &orders,
                &lineitem,
                ("o_orderkey", "l_orderkey"),
                join_schema.clone(),
                &config,
            )?;
            let wall = t.elapsed();
            let rows = result.canonical_rows();
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(r, &rows, "join result diverged"),
            }
            println!(
                "{hosts} hosts | exchange on {:9} | {} result rows | host CPUs \
                 partitioned {:>12} bytes | NICs partitioned {:>12} bytes | \
                 {:>12} bytes crossed the switch | {wall:?}",
                if smart { "smart NIC" } else { "host CPU" },
                report.result_rows,
                report.host_bytes,
                report.nic_bytes,
                report.cross_host_bytes,
            );
        }
    }

    // The per-host ledger breakdown of one configuration: every byte the
    // run charged, attributed to the host whose device it left.
    let config = ScaleoutConfig {
        hosts: 4,
        smart_exchange: true,
        ..ScaleoutConfig::default()
    };
    let (_, report) = exchange_hash_join(
        &orders,
        &lineitem,
        ("o_orderkey", "l_orderkey"),
        join_schema,
        &config,
    )?;
    println!("\nper-host ledger breakdown (4 hosts, smart exchange):");
    for (h, (bytes, rows)) in report
        .per_host_bytes
        .iter()
        .zip(&report.per_host_rows)
        .enumerate()
    {
        println!("  host{h}: {bytes:>12} bytes shuffled out, {rows:>8} result rows joined");
    }
    println!(
        "  total {} bytes charged, {} of them across the switch",
        report.total_bytes, report.cross_host_bytes
    );

    println!(
        "\nthe smart exchange keeps host-partitioned bytes at zero at every \
         host count — the Figure 4 claim — while producing bit-identical \
         join results"
    );
    Ok(())
}
