//! Figure 4's scattering pipeline: a distributed, partitioned hash join
//! whose exchange runs on the smart NICs — "without involvement of the
//! CPU" — versus the conventional host-CPU exchange.
//!
//! ```text
//! cargo run --release --example distributed_join
//! ```

use std::time::Instant;

use rheo::bench::workload;
use rheo::core::distributed::{distributed_hash_join, DistributedConfig};
use rheo::core::logical::LogicalPlan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let orders = workload::orders(25_000, 11);
    let lineitem = workload::lineitem(100_000, 11);
    let join_schema = LogicalPlan::values(vec![orders.clone()])?
        .join(
            LogicalPlan::values(vec![lineitem.clone()])?,
            vec![("o_orderkey", "l_orderkey")],
        )?
        .schema();

    println!(
        "joining orders ({} rows) with lineitem ({} rows) across worker nodes\n",
        orders.rows(),
        lineitem.rows()
    );

    let mut reference = None;
    for nodes in [2usize, 4, 8] {
        for smart in [true, false] {
            let config = DistributedConfig {
                nodes,
                smart_exchange: smart,
                ..DistributedConfig::default()
            };
            let t = Instant::now();
            let (result, report) = distributed_hash_join(
                &orders,
                &lineitem,
                ("o_orderkey", "l_orderkey"),
                join_schema.clone(),
                &config,
            )?;
            let wall = t.elapsed();
            let rows = result.canonical_rows();
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(r, &rows, "join result diverged"),
            }
            println!(
                "{nodes} nodes | exchange on {:9} | {} result rows | host \
                 touched {:>12} bytes | NICs processed {:>12} bytes | {:?}",
                if smart { "smart NIC" } else { "host CPU" },
                report.result_rows,
                report.host_bytes,
                report.nic_bytes,
                wall,
            );
        }
    }

    println!(
        "\nthe smart exchange keeps host-touched bytes at zero at every \
         node count — the Figure 4 claim — while producing bit-identical \
         join results"
    );
    Ok(())
}
