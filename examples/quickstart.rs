//! Quickstart: load a table, run SQL, and see where the plan executed.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rheo::core::session::Session;
use rheo::data::batch::batch_of;
use rheo::data::Column;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A session over the paper's disaggregated platform: smart storage,
    // smart NICs, a near-memory accelerator, and a CPU — all simulated,
    // all doing real work.
    let session = Session::in_memory()?;

    // Load a small orders table.
    let orders = batch_of(vec![
        ("id", Column::from_i64((0..1000).collect())),
        (
            "region",
            Column::from_strs(
                &(0..1000)
                    .map(|i| ["eu", "us", "ap"][i % 3].to_string())
                    .collect::<Vec<_>>(),
            ),
        ),
        (
            "amount",
            Column::from_f64((0..1000).map(|i| (i % 97) as f64).collect()),
        ),
    ]);
    session.create_table("orders", &[orders])?;

    // Ask a question.
    let query = "SELECT region, COUNT(*) AS n, AVG(amount) AS avg_amount \
                 FROM orders WHERE amount > 50.0 GROUP BY region \
                 ORDER BY region";
    let result = session.sql(query)?;

    println!("results:\n{}", result.batch);
    println!("plan variant chosen: {}", result.variant);
    println!(
        "data moved across devices: {} bytes",
        result.ledger.cross_device_bytes()
    );
    if let Some(scan) = result.scan_stats.first() {
        println!(
            "storage billing: scanned {} bytes, returned {} bytes ({}x reduction)",
            scan.bytes_scanned,
            scan.bytes_returned,
            scan.reduction_factor() as u64
        );
    }

    // EXPLAIN shows every data-path alternative the optimizer considered.
    println!("\n{}", session.explain(query)?);
    Ok(())
}
