/root/repo/target/release/examples/full_pipeline-6156367dcb5f3df5.d: examples/full_pipeline.rs

/root/repo/target/release/examples/full_pipeline-6156367dcb5f3df5: examples/full_pipeline.rs

examples/full_pipeline.rs:
