/root/repo/target/release/examples/near_memory_htap-5780ac9b4de8b309.d: examples/near_memory_htap.rs Cargo.toml

/root/repo/target/release/examples/libnear_memory_htap-5780ac9b4de8b309.rmeta: examples/near_memory_htap.rs Cargo.toml

examples/near_memory_htap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
