/root/repo/target/release/examples/distributed_join-0474264cc62da63d.d: examples/distributed_join.rs

/root/repo/target/release/examples/distributed_join-0474264cc62da63d: examples/distributed_join.rs

examples/distributed_join.rs:
