/root/repo/target/release/examples/distributed_join-39721cacf822eba2.d: examples/distributed_join.rs Cargo.toml

/root/repo/target/release/examples/libdistributed_join-39721cacf822eba2.rmeta: examples/distributed_join.rs Cargo.toml

examples/distributed_join.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
