/root/repo/target/release/examples/storage_pushdown-93cc1cf9429d772d.d: examples/storage_pushdown.rs

/root/repo/target/release/examples/storage_pushdown-93cc1cf9429d772d: examples/storage_pushdown.rs

examples/storage_pushdown.rs:
