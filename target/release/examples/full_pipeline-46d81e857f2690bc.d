/root/repo/target/release/examples/full_pipeline-46d81e857f2690bc.d: examples/full_pipeline.rs Cargo.toml

/root/repo/target/release/examples/libfull_pipeline-46d81e857f2690bc.rmeta: examples/full_pipeline.rs Cargo.toml

examples/full_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
