/root/repo/target/release/examples/storage_pushdown-23cfc78b4d9e2628.d: examples/storage_pushdown.rs Cargo.toml

/root/repo/target/release/examples/libstorage_pushdown-23cfc78b4d9e2628.rmeta: examples/storage_pushdown.rs Cargo.toml

examples/storage_pushdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
