/root/repo/target/release/examples/near_memory_htap-f2ab5dc73d62350e.d: examples/near_memory_htap.rs

/root/repo/target/release/examples/near_memory_htap-f2ab5dc73d62350e: examples/near_memory_htap.rs

examples/near_memory_htap.rs:
