/root/repo/target/release/examples/quickstart-15745cf006f46496.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-15745cf006f46496: examples/quickstart.rs

examples/quickstart.rs:
