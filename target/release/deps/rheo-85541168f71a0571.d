/root/repo/target/release/deps/rheo-85541168f71a0571.d: src/lib.rs src/check.rs

/root/repo/target/release/deps/librheo-85541168f71a0571.rlib: src/lib.rs src/check.rs

/root/repo/target/release/deps/librheo-85541168f71a0571.rmeta: src/lib.rs src/check.rs

src/lib.rs:
src/check.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
