/root/repo/target/release/deps/trace_ledger-20eb3f4e3c764efd.d: tests/trace_ledger.rs

/root/repo/target/release/deps/trace_ledger-20eb3f4e3c764efd: tests/trace_ledger.rs

tests/trace_ledger.rs:
