/root/repo/target/release/deps/figures-dd21bf749dedfaaa.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-dd21bf749dedfaaa: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
