/root/repo/target/release/deps/df_sim-28a9cbc71ea0146b.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/release/deps/libdf_sim-28a9cbc71ea0146b.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
