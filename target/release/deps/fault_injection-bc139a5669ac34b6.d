/root/repo/target/release/deps/fault_injection-bc139a5669ac34b6.d: tests/fault_injection.rs Cargo.toml

/root/repo/target/release/deps/libfault_injection-bc139a5669ac34b6.rmeta: tests/fault_injection.rs Cargo.toml

tests/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
