/root/repo/target/release/deps/trace_suite-ce835b078313936c.d: tests/trace_suite.rs Cargo.toml

/root/repo/target/release/deps/libtrace_suite-ce835b078313936c.rmeta: tests/trace_suite.rs Cargo.toml

tests/trace_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
