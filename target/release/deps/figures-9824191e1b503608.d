/root/repo/target/release/deps/figures-9824191e1b503608.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/release/deps/libfigures-9824191e1b503608.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
