/root/repo/target/release/deps/df_codec-d57784e4099649f1.d: crates/codec/src/lib.rs crates/codec/src/checksum.rs crates/codec/src/crypto.rs crates/codec/src/dict.rs crates/codec/src/int.rs crates/codec/src/lz.rs crates/codec/src/varint.rs crates/codec/src/wire.rs

/root/repo/target/release/deps/libdf_codec-d57784e4099649f1.rlib: crates/codec/src/lib.rs crates/codec/src/checksum.rs crates/codec/src/crypto.rs crates/codec/src/dict.rs crates/codec/src/int.rs crates/codec/src/lz.rs crates/codec/src/varint.rs crates/codec/src/wire.rs

/root/repo/target/release/deps/libdf_codec-d57784e4099649f1.rmeta: crates/codec/src/lib.rs crates/codec/src/checksum.rs crates/codec/src/crypto.rs crates/codec/src/dict.rs crates/codec/src/int.rs crates/codec/src/lz.rs crates/codec/src/varint.rs crates/codec/src/wire.rs

crates/codec/src/lib.rs:
crates/codec/src/checksum.rs:
crates/codec/src/crypto.rs:
crates/codec/src/dict.rs:
crates/codec/src/int.rs:
crates/codec/src/lz.rs:
crates/codec/src/varint.rs:
crates/codec/src/wire.rs:
