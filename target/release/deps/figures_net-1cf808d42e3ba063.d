/root/repo/target/release/deps/figures_net-1cf808d42e3ba063.d: crates/bench/benches/figures_net.rs Cargo.toml

/root/repo/target/release/deps/libfigures_net-1cf808d42e3ba063.rmeta: crates/bench/benches/figures_net.rs Cargo.toml

crates/bench/benches/figures_net.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
