/root/repo/target/release/deps/df_sim-fab7f45e767300e1.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/df_sim-fab7f45e767300e1: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
