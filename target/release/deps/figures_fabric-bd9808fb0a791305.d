/root/repo/target/release/deps/figures_fabric-bd9808fb0a791305.d: crates/bench/benches/figures_fabric.rs Cargo.toml

/root/repo/target/release/deps/libfigures_fabric-bd9808fb0a791305.rmeta: crates/bench/benches/figures_fabric.rs Cargo.toml

crates/bench/benches/figures_fabric.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
