/root/repo/target/release/deps/df_fabric-b86574294799302b.d: crates/fabric/src/lib.rs crates/fabric/src/coherence.rs crates/fabric/src/device.rs crates/fabric/src/dma.rs crates/fabric/src/flow.rs crates/fabric/src/link.rs crates/fabric/src/topology.rs

/root/repo/target/release/deps/libdf_fabric-b86574294799302b.rlib: crates/fabric/src/lib.rs crates/fabric/src/coherence.rs crates/fabric/src/device.rs crates/fabric/src/dma.rs crates/fabric/src/flow.rs crates/fabric/src/link.rs crates/fabric/src/topology.rs

/root/repo/target/release/deps/libdf_fabric-b86574294799302b.rmeta: crates/fabric/src/lib.rs crates/fabric/src/coherence.rs crates/fabric/src/device.rs crates/fabric/src/dma.rs crates/fabric/src/flow.rs crates/fabric/src/link.rs crates/fabric/src/topology.rs

crates/fabric/src/lib.rs:
crates/fabric/src/coherence.rs:
crates/fabric/src/device.rs:
crates/fabric/src/dma.rs:
crates/fabric/src/flow.rs:
crates/fabric/src/link.rs:
crates/fabric/src/topology.rs:
