/root/repo/target/release/deps/figures_storage-36436147b93cb68e.d: crates/bench/benches/figures_storage.rs Cargo.toml

/root/repo/target/release/deps/libfigures_storage-36436147b93cb68e.rmeta: crates/bench/benches/figures_storage.rs Cargo.toml

crates/bench/benches/figures_storage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
