/root/repo/target/release/deps/df_mem-cbbdf33441ce8b0f.d: crates/mem/src/lib.rs crates/mem/src/accel.rs crates/mem/src/btree.rs crates/mem/src/bufferpool.rs crates/mem/src/cache.rs crates/mem/src/region.rs

/root/repo/target/release/deps/libdf_mem-cbbdf33441ce8b0f.rlib: crates/mem/src/lib.rs crates/mem/src/accel.rs crates/mem/src/btree.rs crates/mem/src/bufferpool.rs crates/mem/src/cache.rs crates/mem/src/region.rs

/root/repo/target/release/deps/libdf_mem-cbbdf33441ce8b0f.rmeta: crates/mem/src/lib.rs crates/mem/src/accel.rs crates/mem/src/btree.rs crates/mem/src/bufferpool.rs crates/mem/src/cache.rs crates/mem/src/region.rs

crates/mem/src/lib.rs:
crates/mem/src/accel.rs:
crates/mem/src/btree.rs:
crates/mem/src/bufferpool.rs:
crates/mem/src/cache.rs:
crates/mem/src/region.rs:
