/root/repo/target/release/deps/figures_mem-ea943c6d2d6f7f19.d: crates/bench/benches/figures_mem.rs Cargo.toml

/root/repo/target/release/deps/libfigures_mem-ea943c6d2d6f7f19.rmeta: crates/bench/benches/figures_mem.rs Cargo.toml

crates/bench/benches/figures_mem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
