/root/repo/target/release/deps/df_net-8e46850bd45c1715.d: crates/net/src/lib.rs crates/net/src/collective.rs crates/net/src/nic.rs crates/net/src/switch.rs crates/net/src/transport.rs Cargo.toml

/root/repo/target/release/deps/libdf_net-8e46850bd45c1715.rmeta: crates/net/src/lib.rs crates/net/src/collective.rs crates/net/src/nic.rs crates/net/src/switch.rs crates/net/src/transport.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/collective.rs:
crates/net/src/nic.rs:
crates/net/src/switch.rs:
crates/net/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
