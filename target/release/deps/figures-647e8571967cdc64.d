/root/repo/target/release/deps/figures-647e8571967cdc64.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-647e8571967cdc64: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
