/root/repo/target/release/deps/trace_suite-fa8b122f3248350b.d: tests/trace_suite.rs

/root/repo/target/release/deps/trace_suite-fa8b122f3248350b: tests/trace_suite.rs

tests/trace_suite.rs:
