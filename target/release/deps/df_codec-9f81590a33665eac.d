/root/repo/target/release/deps/df_codec-9f81590a33665eac.d: crates/codec/src/lib.rs crates/codec/src/checksum.rs crates/codec/src/crypto.rs crates/codec/src/dict.rs crates/codec/src/int.rs crates/codec/src/lz.rs crates/codec/src/varint.rs crates/codec/src/wire.rs Cargo.toml

/root/repo/target/release/deps/libdf_codec-9f81590a33665eac.rmeta: crates/codec/src/lib.rs crates/codec/src/checksum.rs crates/codec/src/crypto.rs crates/codec/src/dict.rs crates/codec/src/int.rs crates/codec/src/lz.rs crates/codec/src/varint.rs crates/codec/src/wire.rs Cargo.toml

crates/codec/src/lib.rs:
crates/codec/src/checksum.rs:
crates/codec/src/crypto.rs:
crates/codec/src/dict.rs:
crates/codec/src/int.rs:
crates/codec/src/lz.rs:
crates/codec/src/varint.rs:
crates/codec/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
