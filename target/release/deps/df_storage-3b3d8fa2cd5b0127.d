/root/repo/target/release/deps/df_storage-3b3d8fa2cd5b0127.d: crates/storage/src/lib.rs crates/storage/src/object.rs crates/storage/src/pattern.rs crates/storage/src/predicate.rs crates/storage/src/segment.rs crates/storage/src/smart.rs crates/storage/src/table.rs crates/storage/src/zonemap.rs

/root/repo/target/release/deps/libdf_storage-3b3d8fa2cd5b0127.rlib: crates/storage/src/lib.rs crates/storage/src/object.rs crates/storage/src/pattern.rs crates/storage/src/predicate.rs crates/storage/src/segment.rs crates/storage/src/smart.rs crates/storage/src/table.rs crates/storage/src/zonemap.rs

/root/repo/target/release/deps/libdf_storage-3b3d8fa2cd5b0127.rmeta: crates/storage/src/lib.rs crates/storage/src/object.rs crates/storage/src/pattern.rs crates/storage/src/predicate.rs crates/storage/src/segment.rs crates/storage/src/smart.rs crates/storage/src/table.rs crates/storage/src/zonemap.rs

crates/storage/src/lib.rs:
crates/storage/src/object.rs:
crates/storage/src/pattern.rs:
crates/storage/src/predicate.rs:
crates/storage/src/segment.rs:
crates/storage/src/smart.rs:
crates/storage/src/table.rs:
crates/storage/src/zonemap.rs:
