/root/repo/target/release/deps/rheo-cc126f722ce572b1.d: src/lib.rs src/check.rs

/root/repo/target/release/deps/rheo-cc126f722ce572b1: src/lib.rs src/check.rs

src/lib.rs:
src/check.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
