/root/repo/target/release/deps/df_mem-8c32150cae73d601.d: crates/mem/src/lib.rs crates/mem/src/accel.rs crates/mem/src/btree.rs crates/mem/src/bufferpool.rs crates/mem/src/cache.rs crates/mem/src/region.rs Cargo.toml

/root/repo/target/release/deps/libdf_mem-8c32150cae73d601.rmeta: crates/mem/src/lib.rs crates/mem/src/accel.rs crates/mem/src/btree.rs crates/mem/src/bufferpool.rs crates/mem/src/cache.rs crates/mem/src/region.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/accel.rs:
crates/mem/src/btree.rs:
crates/mem/src/bufferpool.rs:
crates/mem/src/cache.rs:
crates/mem/src/region.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
