/root/repo/target/release/deps/df_mem-46a1b5f4bbd19981.d: crates/mem/src/lib.rs crates/mem/src/accel.rs crates/mem/src/btree.rs crates/mem/src/bufferpool.rs crates/mem/src/cache.rs crates/mem/src/region.rs

/root/repo/target/release/deps/df_mem-46a1b5f4bbd19981: crates/mem/src/lib.rs crates/mem/src/accel.rs crates/mem/src/btree.rs crates/mem/src/bufferpool.rs crates/mem/src/cache.rs crates/mem/src/region.rs

crates/mem/src/lib.rs:
crates/mem/src/accel.rs:
crates/mem/src/btree.rs:
crates/mem/src/bufferpool.rs:
crates/mem/src/cache.rs:
crates/mem/src/region.rs:
