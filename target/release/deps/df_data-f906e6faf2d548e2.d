/root/repo/target/release/deps/df_data-f906e6faf2d548e2.d: crates/data/src/lib.rs crates/data/src/batch.rs crates/data/src/bitmap.rs crates/data/src/column.rs crates/data/src/error.rs crates/data/src/rowpage.rs crates/data/src/schema.rs crates/data/src/sort.rs crates/data/src/types.rs

/root/repo/target/release/deps/libdf_data-f906e6faf2d548e2.rlib: crates/data/src/lib.rs crates/data/src/batch.rs crates/data/src/bitmap.rs crates/data/src/column.rs crates/data/src/error.rs crates/data/src/rowpage.rs crates/data/src/schema.rs crates/data/src/sort.rs crates/data/src/types.rs

/root/repo/target/release/deps/libdf_data-f906e6faf2d548e2.rmeta: crates/data/src/lib.rs crates/data/src/batch.rs crates/data/src/bitmap.rs crates/data/src/column.rs crates/data/src/error.rs crates/data/src/rowpage.rs crates/data/src/schema.rs crates/data/src/sort.rs crates/data/src/types.rs

crates/data/src/lib.rs:
crates/data/src/batch.rs:
crates/data/src/bitmap.rs:
crates/data/src/column.rs:
crates/data/src/error.rs:
crates/data/src/rowpage.rs:
crates/data/src/schema.rs:
crates/data/src/sort.rs:
crates/data/src/types.rs:
