/root/repo/target/release/deps/df_data-53bafe67971730cd.d: crates/data/src/lib.rs crates/data/src/batch.rs crates/data/src/bitmap.rs crates/data/src/column.rs crates/data/src/error.rs crates/data/src/rowpage.rs crates/data/src/schema.rs crates/data/src/sort.rs crates/data/src/types.rs Cargo.toml

/root/repo/target/release/deps/libdf_data-53bafe67971730cd.rmeta: crates/data/src/lib.rs crates/data/src/batch.rs crates/data/src/bitmap.rs crates/data/src/column.rs crates/data/src/error.rs crates/data/src/rowpage.rs crates/data/src/schema.rs crates/data/src/sort.rs crates/data/src/types.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/batch.rs:
crates/data/src/bitmap.rs:
crates/data/src/column.rs:
crates/data/src/error.rs:
crates/data/src/rowpage.rs:
crates/data/src/schema.rs:
crates/data/src/sort.rs:
crates/data/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
