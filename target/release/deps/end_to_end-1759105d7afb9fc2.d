/root/repo/target/release/deps/end_to_end-1759105d7afb9fc2.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-1759105d7afb9fc2: tests/end_to_end.rs

tests/end_to_end.rs:
