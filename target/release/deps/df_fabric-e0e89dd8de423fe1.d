/root/repo/target/release/deps/df_fabric-e0e89dd8de423fe1.d: crates/fabric/src/lib.rs crates/fabric/src/coherence.rs crates/fabric/src/device.rs crates/fabric/src/dma.rs crates/fabric/src/flow.rs crates/fabric/src/link.rs crates/fabric/src/topology.rs Cargo.toml

/root/repo/target/release/deps/libdf_fabric-e0e89dd8de423fe1.rmeta: crates/fabric/src/lib.rs crates/fabric/src/coherence.rs crates/fabric/src/device.rs crates/fabric/src/dma.rs crates/fabric/src/flow.rs crates/fabric/src/link.rs crates/fabric/src/topology.rs Cargo.toml

crates/fabric/src/lib.rs:
crates/fabric/src/coherence.rs:
crates/fabric/src/device.rs:
crates/fabric/src/dma.rs:
crates/fabric/src/flow.rs:
crates/fabric/src/link.rs:
crates/fabric/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
