/root/repo/target/release/deps/properties-b468993ef578b09e.d: tests/properties.rs

/root/repo/target/release/deps/properties-b468993ef578b09e: tests/properties.rs

tests/properties.rs:
