/root/repo/target/release/deps/df_net-43000f16eb2fe24a.d: crates/net/src/lib.rs crates/net/src/collective.rs crates/net/src/nic.rs crates/net/src/switch.rs crates/net/src/transport.rs Cargo.toml

/root/repo/target/release/deps/libdf_net-43000f16eb2fe24a.rmeta: crates/net/src/lib.rs crates/net/src/collective.rs crates/net/src/nic.rs crates/net/src/switch.rs crates/net/src/transport.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/collective.rs:
crates/net/src/nic.rs:
crates/net/src/switch.rs:
crates/net/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
