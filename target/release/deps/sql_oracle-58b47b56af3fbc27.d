/root/repo/target/release/deps/sql_oracle-58b47b56af3fbc27.d: tests/sql_oracle.rs

/root/repo/target/release/deps/sql_oracle-58b47b56af3fbc27: tests/sql_oracle.rs

tests/sql_oracle.rs:
