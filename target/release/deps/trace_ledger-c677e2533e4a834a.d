/root/repo/target/release/deps/trace_ledger-c677e2533e4a834a.d: tests/trace_ledger.rs Cargo.toml

/root/repo/target/release/deps/libtrace_ledger-c677e2533e4a834a.rmeta: tests/trace_ledger.rs Cargo.toml

tests/trace_ledger.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
