/root/repo/target/release/deps/df_storage-ef932646e89baaee.d: crates/storage/src/lib.rs crates/storage/src/object.rs crates/storage/src/pattern.rs crates/storage/src/predicate.rs crates/storage/src/segment.rs crates/storage/src/smart.rs crates/storage/src/table.rs crates/storage/src/zonemap.rs

/root/repo/target/release/deps/df_storage-ef932646e89baaee: crates/storage/src/lib.rs crates/storage/src/object.rs crates/storage/src/pattern.rs crates/storage/src/predicate.rs crates/storage/src/segment.rs crates/storage/src/smart.rs crates/storage/src/table.rs crates/storage/src/zonemap.rs

crates/storage/src/lib.rs:
crates/storage/src/object.rs:
crates/storage/src/pattern.rs:
crates/storage/src/predicate.rs:
crates/storage/src/segment.rs:
crates/storage/src/smart.rs:
crates/storage/src/table.rs:
crates/storage/src/zonemap.rs:
