/root/repo/target/release/deps/df_sim-0ca5b73e78cf5521.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libdf_sim-0ca5b73e78cf5521.rlib: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libdf_sim-0ca5b73e78cf5521.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
