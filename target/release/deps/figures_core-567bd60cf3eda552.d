/root/repo/target/release/deps/figures_core-567bd60cf3eda552.d: crates/bench/benches/figures_core.rs Cargo.toml

/root/repo/target/release/deps/libfigures_core-567bd60cf3eda552.rmeta: crates/bench/benches/figures_core.rs Cargo.toml

crates/bench/benches/figures_core.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
