/root/repo/target/release/deps/df_net-f12adcd742700733.d: crates/net/src/lib.rs crates/net/src/collective.rs crates/net/src/nic.rs crates/net/src/switch.rs crates/net/src/transport.rs

/root/repo/target/release/deps/libdf_net-f12adcd742700733.rlib: crates/net/src/lib.rs crates/net/src/collective.rs crates/net/src/nic.rs crates/net/src/switch.rs crates/net/src/transport.rs

/root/repo/target/release/deps/libdf_net-f12adcd742700733.rmeta: crates/net/src/lib.rs crates/net/src/collective.rs crates/net/src/nic.rs crates/net/src/switch.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/collective.rs:
crates/net/src/nic.rs:
crates/net/src/switch.rs:
crates/net/src/transport.rs:
