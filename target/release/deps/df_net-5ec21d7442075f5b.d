/root/repo/target/release/deps/df_net-5ec21d7442075f5b.d: crates/net/src/lib.rs crates/net/src/collective.rs crates/net/src/nic.rs crates/net/src/switch.rs crates/net/src/transport.rs

/root/repo/target/release/deps/df_net-5ec21d7442075f5b: crates/net/src/lib.rs crates/net/src/collective.rs crates/net/src/nic.rs crates/net/src/switch.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/collective.rs:
crates/net/src/nic.rs:
crates/net/src/switch.rs:
crates/net/src/transport.rs:
