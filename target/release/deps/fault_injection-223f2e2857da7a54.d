/root/repo/target/release/deps/fault_injection-223f2e2857da7a54.d: tests/fault_injection.rs

/root/repo/target/release/deps/fault_injection-223f2e2857da7a54: tests/fault_injection.rs

tests/fault_injection.rs:
