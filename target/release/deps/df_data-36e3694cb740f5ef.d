/root/repo/target/release/deps/df_data-36e3694cb740f5ef.d: crates/data/src/lib.rs crates/data/src/batch.rs crates/data/src/bitmap.rs crates/data/src/column.rs crates/data/src/error.rs crates/data/src/rowpage.rs crates/data/src/schema.rs crates/data/src/sort.rs crates/data/src/types.rs

/root/repo/target/release/deps/df_data-36e3694cb740f5ef: crates/data/src/lib.rs crates/data/src/batch.rs crates/data/src/bitmap.rs crates/data/src/column.rs crates/data/src/error.rs crates/data/src/rowpage.rs crates/data/src/schema.rs crates/data/src/sort.rs crates/data/src/types.rs

crates/data/src/lib.rs:
crates/data/src/batch.rs:
crates/data/src/bitmap.rs:
crates/data/src/column.rs:
crates/data/src/error.rs:
crates/data/src/rowpage.rs:
crates/data/src/schema.rs:
crates/data/src/sort.rs:
crates/data/src/types.rs:
