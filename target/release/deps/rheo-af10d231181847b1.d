/root/repo/target/release/deps/rheo-af10d231181847b1.d: src/lib.rs src/check.rs Cargo.toml

/root/repo/target/release/deps/librheo-af10d231181847b1.rmeta: src/lib.rs src/check.rs Cargo.toml

src/lib.rs:
src/check.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
