/root/repo/target/release/deps/df_fabric-831b2eefa780e86c.d: crates/fabric/src/lib.rs crates/fabric/src/coherence.rs crates/fabric/src/device.rs crates/fabric/src/dma.rs crates/fabric/src/flow.rs crates/fabric/src/link.rs crates/fabric/src/topology.rs

/root/repo/target/release/deps/df_fabric-831b2eefa780e86c: crates/fabric/src/lib.rs crates/fabric/src/coherence.rs crates/fabric/src/device.rs crates/fabric/src/dma.rs crates/fabric/src/flow.rs crates/fabric/src/link.rs crates/fabric/src/topology.rs

crates/fabric/src/lib.rs:
crates/fabric/src/coherence.rs:
crates/fabric/src/device.rs:
crates/fabric/src/dma.rs:
crates/fabric/src/flow.rs:
crates/fabric/src/link.rs:
crates/fabric/src/topology.rs:
