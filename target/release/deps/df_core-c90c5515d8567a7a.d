/root/repo/target/release/deps/df_core-c90c5515d8567a7a.d: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/error.rs crates/core/src/exec/mod.rs crates/core/src/exec/ledger.rs crates/core/src/exec/parallel.rs crates/core/src/exec/push.rs crates/core/src/exec/volcano.rs crates/core/src/expr.rs crates/core/src/kernel/mod.rs crates/core/src/kernel/regex.rs crates/core/src/logical.rs crates/core/src/ops/mod.rs crates/core/src/ops/aggregate.rs crates/core/src/ops/filter.rs crates/core/src/ops/join.rs crates/core/src/ops/limit.rs crates/core/src/ops/project.rs crates/core/src/ops/sort.rs crates/core/src/ops/topk.rs crates/core/src/optimizer/mod.rs crates/core/src/optimizer/cost.rs crates/core/src/optimizer/rewrite.rs crates/core/src/optimizer/stats.rs crates/core/src/physical.rs crates/core/src/scheduler.rs crates/core/src/session.rs crates/core/src/sql.rs Cargo.toml

/root/repo/target/release/deps/libdf_core-c90c5515d8567a7a.rmeta: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/error.rs crates/core/src/exec/mod.rs crates/core/src/exec/ledger.rs crates/core/src/exec/parallel.rs crates/core/src/exec/push.rs crates/core/src/exec/volcano.rs crates/core/src/expr.rs crates/core/src/kernel/mod.rs crates/core/src/kernel/regex.rs crates/core/src/logical.rs crates/core/src/ops/mod.rs crates/core/src/ops/aggregate.rs crates/core/src/ops/filter.rs crates/core/src/ops/join.rs crates/core/src/ops/limit.rs crates/core/src/ops/project.rs crates/core/src/ops/sort.rs crates/core/src/ops/topk.rs crates/core/src/optimizer/mod.rs crates/core/src/optimizer/cost.rs crates/core/src/optimizer/rewrite.rs crates/core/src/optimizer/stats.rs crates/core/src/physical.rs crates/core/src/scheduler.rs crates/core/src/session.rs crates/core/src/sql.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/distributed.rs:
crates/core/src/error.rs:
crates/core/src/exec/mod.rs:
crates/core/src/exec/ledger.rs:
crates/core/src/exec/parallel.rs:
crates/core/src/exec/push.rs:
crates/core/src/exec/volcano.rs:
crates/core/src/expr.rs:
crates/core/src/kernel/mod.rs:
crates/core/src/kernel/regex.rs:
crates/core/src/logical.rs:
crates/core/src/ops/mod.rs:
crates/core/src/ops/aggregate.rs:
crates/core/src/ops/filter.rs:
crates/core/src/ops/join.rs:
crates/core/src/ops/limit.rs:
crates/core/src/ops/project.rs:
crates/core/src/ops/sort.rs:
crates/core/src/ops/topk.rs:
crates/core/src/optimizer/mod.rs:
crates/core/src/optimizer/cost.rs:
crates/core/src/optimizer/rewrite.rs:
crates/core/src/optimizer/stats.rs:
crates/core/src/physical.rs:
crates/core/src/scheduler.rs:
crates/core/src/session.rs:
crates/core/src/sql.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
