/root/repo/target/release/deps/sql_oracle-45e794fd7a6ce465.d: tests/sql_oracle.rs Cargo.toml

/root/repo/target/release/deps/libsql_oracle-45e794fd7a6ce465.rmeta: tests/sql_oracle.rs Cargo.toml

tests/sql_oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
