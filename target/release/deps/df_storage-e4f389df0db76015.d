/root/repo/target/release/deps/df_storage-e4f389df0db76015.d: crates/storage/src/lib.rs crates/storage/src/object.rs crates/storage/src/pattern.rs crates/storage/src/predicate.rs crates/storage/src/segment.rs crates/storage/src/smart.rs crates/storage/src/table.rs crates/storage/src/zonemap.rs Cargo.toml

/root/repo/target/release/deps/libdf_storage-e4f389df0db76015.rmeta: crates/storage/src/lib.rs crates/storage/src/object.rs crates/storage/src/pattern.rs crates/storage/src/predicate.rs crates/storage/src/segment.rs crates/storage/src/smart.rs crates/storage/src/table.rs crates/storage/src/zonemap.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/object.rs:
crates/storage/src/pattern.rs:
crates/storage/src/predicate.rs:
crates/storage/src/segment.rs:
crates/storage/src/smart.rs:
crates/storage/src/table.rs:
crates/storage/src/zonemap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
