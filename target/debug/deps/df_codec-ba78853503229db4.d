/root/repo/target/debug/deps/df_codec-ba78853503229db4.d: crates/codec/src/lib.rs crates/codec/src/checksum.rs crates/codec/src/crypto.rs crates/codec/src/dict.rs crates/codec/src/int.rs crates/codec/src/lz.rs crates/codec/src/varint.rs crates/codec/src/wire.rs

/root/repo/target/debug/deps/libdf_codec-ba78853503229db4.rlib: crates/codec/src/lib.rs crates/codec/src/checksum.rs crates/codec/src/crypto.rs crates/codec/src/dict.rs crates/codec/src/int.rs crates/codec/src/lz.rs crates/codec/src/varint.rs crates/codec/src/wire.rs

/root/repo/target/debug/deps/libdf_codec-ba78853503229db4.rmeta: crates/codec/src/lib.rs crates/codec/src/checksum.rs crates/codec/src/crypto.rs crates/codec/src/dict.rs crates/codec/src/int.rs crates/codec/src/lz.rs crates/codec/src/varint.rs crates/codec/src/wire.rs

crates/codec/src/lib.rs:
crates/codec/src/checksum.rs:
crates/codec/src/crypto.rs:
crates/codec/src/dict.rs:
crates/codec/src/int.rs:
crates/codec/src/lz.rs:
crates/codec/src/varint.rs:
crates/codec/src/wire.rs:
