/root/repo/target/debug/deps/df_core-c05fd718ae2b2775.d: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/error.rs crates/core/src/exec/mod.rs crates/core/src/exec/ledger.rs crates/core/src/exec/parallel.rs crates/core/src/exec/push.rs crates/core/src/exec/volcano.rs crates/core/src/expr.rs crates/core/src/kernel/mod.rs crates/core/src/kernel/regex.rs crates/core/src/logical.rs crates/core/src/ops/mod.rs crates/core/src/ops/aggregate.rs crates/core/src/ops/filter.rs crates/core/src/ops/join.rs crates/core/src/ops/limit.rs crates/core/src/ops/project.rs crates/core/src/ops/sort.rs crates/core/src/ops/topk.rs crates/core/src/optimizer/mod.rs crates/core/src/optimizer/cost.rs crates/core/src/optimizer/rewrite.rs crates/core/src/optimizer/stats.rs crates/core/src/physical.rs crates/core/src/scheduler.rs crates/core/src/session.rs crates/core/src/sql.rs

/root/repo/target/debug/deps/libdf_core-c05fd718ae2b2775.rlib: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/error.rs crates/core/src/exec/mod.rs crates/core/src/exec/ledger.rs crates/core/src/exec/parallel.rs crates/core/src/exec/push.rs crates/core/src/exec/volcano.rs crates/core/src/expr.rs crates/core/src/kernel/mod.rs crates/core/src/kernel/regex.rs crates/core/src/logical.rs crates/core/src/ops/mod.rs crates/core/src/ops/aggregate.rs crates/core/src/ops/filter.rs crates/core/src/ops/join.rs crates/core/src/ops/limit.rs crates/core/src/ops/project.rs crates/core/src/ops/sort.rs crates/core/src/ops/topk.rs crates/core/src/optimizer/mod.rs crates/core/src/optimizer/cost.rs crates/core/src/optimizer/rewrite.rs crates/core/src/optimizer/stats.rs crates/core/src/physical.rs crates/core/src/scheduler.rs crates/core/src/session.rs crates/core/src/sql.rs

/root/repo/target/debug/deps/libdf_core-c05fd718ae2b2775.rmeta: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/error.rs crates/core/src/exec/mod.rs crates/core/src/exec/ledger.rs crates/core/src/exec/parallel.rs crates/core/src/exec/push.rs crates/core/src/exec/volcano.rs crates/core/src/expr.rs crates/core/src/kernel/mod.rs crates/core/src/kernel/regex.rs crates/core/src/logical.rs crates/core/src/ops/mod.rs crates/core/src/ops/aggregate.rs crates/core/src/ops/filter.rs crates/core/src/ops/join.rs crates/core/src/ops/limit.rs crates/core/src/ops/project.rs crates/core/src/ops/sort.rs crates/core/src/ops/topk.rs crates/core/src/optimizer/mod.rs crates/core/src/optimizer/cost.rs crates/core/src/optimizer/rewrite.rs crates/core/src/optimizer/stats.rs crates/core/src/physical.rs crates/core/src/scheduler.rs crates/core/src/session.rs crates/core/src/sql.rs

crates/core/src/lib.rs:
crates/core/src/distributed.rs:
crates/core/src/error.rs:
crates/core/src/exec/mod.rs:
crates/core/src/exec/ledger.rs:
crates/core/src/exec/parallel.rs:
crates/core/src/exec/push.rs:
crates/core/src/exec/volcano.rs:
crates/core/src/expr.rs:
crates/core/src/kernel/mod.rs:
crates/core/src/kernel/regex.rs:
crates/core/src/logical.rs:
crates/core/src/ops/mod.rs:
crates/core/src/ops/aggregate.rs:
crates/core/src/ops/filter.rs:
crates/core/src/ops/join.rs:
crates/core/src/ops/limit.rs:
crates/core/src/ops/project.rs:
crates/core/src/ops/sort.rs:
crates/core/src/ops/topk.rs:
crates/core/src/optimizer/mod.rs:
crates/core/src/optimizer/cost.rs:
crates/core/src/optimizer/rewrite.rs:
crates/core/src/optimizer/stats.rs:
crates/core/src/physical.rs:
crates/core/src/scheduler.rs:
crates/core/src/session.rs:
crates/core/src/sql.rs:
