/root/repo/target/debug/deps/df_net-23390dceb9b2f725.d: crates/net/src/lib.rs crates/net/src/collective.rs crates/net/src/nic.rs crates/net/src/switch.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/libdf_net-23390dceb9b2f725.rlib: crates/net/src/lib.rs crates/net/src/collective.rs crates/net/src/nic.rs crates/net/src/switch.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/libdf_net-23390dceb9b2f725.rmeta: crates/net/src/lib.rs crates/net/src/collective.rs crates/net/src/nic.rs crates/net/src/switch.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/collective.rs:
crates/net/src/nic.rs:
crates/net/src/switch.rs:
crates/net/src/transport.rs:
