/root/repo/target/debug/deps/df_data-ef121207d113ed30.d: crates/data/src/lib.rs crates/data/src/batch.rs crates/data/src/bitmap.rs crates/data/src/column.rs crates/data/src/error.rs crates/data/src/rowpage.rs crates/data/src/schema.rs crates/data/src/sort.rs crates/data/src/types.rs

/root/repo/target/debug/deps/libdf_data-ef121207d113ed30.rlib: crates/data/src/lib.rs crates/data/src/batch.rs crates/data/src/bitmap.rs crates/data/src/column.rs crates/data/src/error.rs crates/data/src/rowpage.rs crates/data/src/schema.rs crates/data/src/sort.rs crates/data/src/types.rs

/root/repo/target/debug/deps/libdf_data-ef121207d113ed30.rmeta: crates/data/src/lib.rs crates/data/src/batch.rs crates/data/src/bitmap.rs crates/data/src/column.rs crates/data/src/error.rs crates/data/src/rowpage.rs crates/data/src/schema.rs crates/data/src/sort.rs crates/data/src/types.rs

crates/data/src/lib.rs:
crates/data/src/batch.rs:
crates/data/src/bitmap.rs:
crates/data/src/column.rs:
crates/data/src/error.rs:
crates/data/src/rowpage.rs:
crates/data/src/schema.rs:
crates/data/src/sort.rs:
crates/data/src/types.rs:
