/root/repo/target/debug/deps/df_storage-81f65503f8b90b16.d: crates/storage/src/lib.rs crates/storage/src/object.rs crates/storage/src/pattern.rs crates/storage/src/predicate.rs crates/storage/src/segment.rs crates/storage/src/smart.rs crates/storage/src/table.rs crates/storage/src/zonemap.rs

/root/repo/target/debug/deps/libdf_storage-81f65503f8b90b16.rlib: crates/storage/src/lib.rs crates/storage/src/object.rs crates/storage/src/pattern.rs crates/storage/src/predicate.rs crates/storage/src/segment.rs crates/storage/src/smart.rs crates/storage/src/table.rs crates/storage/src/zonemap.rs

/root/repo/target/debug/deps/libdf_storage-81f65503f8b90b16.rmeta: crates/storage/src/lib.rs crates/storage/src/object.rs crates/storage/src/pattern.rs crates/storage/src/predicate.rs crates/storage/src/segment.rs crates/storage/src/smart.rs crates/storage/src/table.rs crates/storage/src/zonemap.rs

crates/storage/src/lib.rs:
crates/storage/src/object.rs:
crates/storage/src/pattern.rs:
crates/storage/src/predicate.rs:
crates/storage/src/segment.rs:
crates/storage/src/smart.rs:
crates/storage/src/table.rs:
crates/storage/src/zonemap.rs:
