/root/repo/target/debug/deps/df_codec-b413c8391c23c455.d: crates/codec/src/lib.rs crates/codec/src/checksum.rs crates/codec/src/crypto.rs crates/codec/src/dict.rs crates/codec/src/int.rs crates/codec/src/lz.rs crates/codec/src/varint.rs crates/codec/src/wire.rs

/root/repo/target/debug/deps/df_codec-b413c8391c23c455: crates/codec/src/lib.rs crates/codec/src/checksum.rs crates/codec/src/crypto.rs crates/codec/src/dict.rs crates/codec/src/int.rs crates/codec/src/lz.rs crates/codec/src/varint.rs crates/codec/src/wire.rs

crates/codec/src/lib.rs:
crates/codec/src/checksum.rs:
crates/codec/src/crypto.rs:
crates/codec/src/dict.rs:
crates/codec/src/int.rs:
crates/codec/src/lz.rs:
crates/codec/src/varint.rs:
crates/codec/src/wire.rs:
