/root/repo/target/debug/deps/df_sim-4ac5c06dabbda312.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/df_sim-4ac5c06dabbda312: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
