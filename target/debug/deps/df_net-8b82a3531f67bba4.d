/root/repo/target/debug/deps/df_net-8b82a3531f67bba4.d: crates/net/src/lib.rs crates/net/src/collective.rs crates/net/src/nic.rs crates/net/src/switch.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/df_net-8b82a3531f67bba4: crates/net/src/lib.rs crates/net/src/collective.rs crates/net/src/nic.rs crates/net/src/switch.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/collective.rs:
crates/net/src/nic.rs:
crates/net/src/switch.rs:
crates/net/src/transport.rs:
