/root/repo/target/debug/deps/df_fabric-faa42ce20ff96280.d: crates/fabric/src/lib.rs crates/fabric/src/coherence.rs crates/fabric/src/device.rs crates/fabric/src/dma.rs crates/fabric/src/flow.rs crates/fabric/src/link.rs crates/fabric/src/topology.rs

/root/repo/target/debug/deps/df_fabric-faa42ce20ff96280: crates/fabric/src/lib.rs crates/fabric/src/coherence.rs crates/fabric/src/device.rs crates/fabric/src/dma.rs crates/fabric/src/flow.rs crates/fabric/src/link.rs crates/fabric/src/topology.rs

crates/fabric/src/lib.rs:
crates/fabric/src/coherence.rs:
crates/fabric/src/device.rs:
crates/fabric/src/dma.rs:
crates/fabric/src/flow.rs:
crates/fabric/src/link.rs:
crates/fabric/src/topology.rs:
