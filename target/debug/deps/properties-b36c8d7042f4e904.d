/root/repo/target/debug/deps/properties-b36c8d7042f4e904.d: tests/properties.rs

/root/repo/target/debug/deps/properties-b36c8d7042f4e904: tests/properties.rs

tests/properties.rs:
