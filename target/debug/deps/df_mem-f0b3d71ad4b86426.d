/root/repo/target/debug/deps/df_mem-f0b3d71ad4b86426.d: crates/mem/src/lib.rs crates/mem/src/accel.rs crates/mem/src/btree.rs crates/mem/src/bufferpool.rs crates/mem/src/cache.rs crates/mem/src/region.rs

/root/repo/target/debug/deps/libdf_mem-f0b3d71ad4b86426.rlib: crates/mem/src/lib.rs crates/mem/src/accel.rs crates/mem/src/btree.rs crates/mem/src/bufferpool.rs crates/mem/src/cache.rs crates/mem/src/region.rs

/root/repo/target/debug/deps/libdf_mem-f0b3d71ad4b86426.rmeta: crates/mem/src/lib.rs crates/mem/src/accel.rs crates/mem/src/btree.rs crates/mem/src/bufferpool.rs crates/mem/src/cache.rs crates/mem/src/region.rs

crates/mem/src/lib.rs:
crates/mem/src/accel.rs:
crates/mem/src/btree.rs:
crates/mem/src/bufferpool.rs:
crates/mem/src/cache.rs:
crates/mem/src/region.rs:
