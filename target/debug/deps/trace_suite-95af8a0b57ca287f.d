/root/repo/target/debug/deps/trace_suite-95af8a0b57ca287f.d: tests/trace_suite.rs

/root/repo/target/debug/deps/trace_suite-95af8a0b57ca287f: tests/trace_suite.rs

tests/trace_suite.rs:
