/root/repo/target/debug/deps/df_storage-c21c92676fa1e382.d: crates/storage/src/lib.rs crates/storage/src/object.rs crates/storage/src/pattern.rs crates/storage/src/predicate.rs crates/storage/src/segment.rs crates/storage/src/smart.rs crates/storage/src/table.rs crates/storage/src/zonemap.rs

/root/repo/target/debug/deps/df_storage-c21c92676fa1e382: crates/storage/src/lib.rs crates/storage/src/object.rs crates/storage/src/pattern.rs crates/storage/src/predicate.rs crates/storage/src/segment.rs crates/storage/src/smart.rs crates/storage/src/table.rs crates/storage/src/zonemap.rs

crates/storage/src/lib.rs:
crates/storage/src/object.rs:
crates/storage/src/pattern.rs:
crates/storage/src/predicate.rs:
crates/storage/src/segment.rs:
crates/storage/src/smart.rs:
crates/storage/src/table.rs:
crates/storage/src/zonemap.rs:
