/root/repo/target/debug/deps/rheo-3a00201f06da8fb7.d: src/lib.rs src/check.rs

/root/repo/target/debug/deps/rheo-3a00201f06da8fb7: src/lib.rs src/check.rs

src/lib.rs:
src/check.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
