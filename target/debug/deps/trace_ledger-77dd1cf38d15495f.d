/root/repo/target/debug/deps/trace_ledger-77dd1cf38d15495f.d: tests/trace_ledger.rs

/root/repo/target/debug/deps/trace_ledger-77dd1cf38d15495f: tests/trace_ledger.rs

tests/trace_ledger.rs:
