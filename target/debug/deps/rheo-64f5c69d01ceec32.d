/root/repo/target/debug/deps/rheo-64f5c69d01ceec32.d: src/lib.rs src/check.rs

/root/repo/target/debug/deps/librheo-64f5c69d01ceec32.rlib: src/lib.rs src/check.rs

/root/repo/target/debug/deps/librheo-64f5c69d01ceec32.rmeta: src/lib.rs src/check.rs

src/lib.rs:
src/check.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
