/root/repo/target/debug/deps/figures-93a957a5b807917d.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-93a957a5b807917d: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
