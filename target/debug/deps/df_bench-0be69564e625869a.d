/root/repo/target/debug/deps/df_bench-0be69564e625869a.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e01_conventional.rs crates/bench/src/experiments/e02_pushdown.rs crates/bench/src/experiments/e03_like_offload.rs crates/bench/src/experiments/e04_nic_pipeline.rs crates/bench/src/experiments/e05_scatter_join.rs crates/bench/src/experiments/e06_nic_count.rs crates/bench/src/experiments/e07_near_memory.rs crates/bench/src/experiments/e08_pointer_chase.rs crates/bench/src/experiments/e09_transpose.rs crates/bench/src/experiments/e10_full_pipeline.rs crates/bench/src/experiments/e11_interconnect.rs crates/bench/src/experiments/e12_flow_control.rs crates/bench/src/experiments/e13_scheduling.rs crates/bench/src/experiments/e14_bufferpool.rs crates/bench/src/microbench.rs crates/bench/src/report.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libdf_bench-0be69564e625869a.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e01_conventional.rs crates/bench/src/experiments/e02_pushdown.rs crates/bench/src/experiments/e03_like_offload.rs crates/bench/src/experiments/e04_nic_pipeline.rs crates/bench/src/experiments/e05_scatter_join.rs crates/bench/src/experiments/e06_nic_count.rs crates/bench/src/experiments/e07_near_memory.rs crates/bench/src/experiments/e08_pointer_chase.rs crates/bench/src/experiments/e09_transpose.rs crates/bench/src/experiments/e10_full_pipeline.rs crates/bench/src/experiments/e11_interconnect.rs crates/bench/src/experiments/e12_flow_control.rs crates/bench/src/experiments/e13_scheduling.rs crates/bench/src/experiments/e14_bufferpool.rs crates/bench/src/microbench.rs crates/bench/src/report.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libdf_bench-0be69564e625869a.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e01_conventional.rs crates/bench/src/experiments/e02_pushdown.rs crates/bench/src/experiments/e03_like_offload.rs crates/bench/src/experiments/e04_nic_pipeline.rs crates/bench/src/experiments/e05_scatter_join.rs crates/bench/src/experiments/e06_nic_count.rs crates/bench/src/experiments/e07_near_memory.rs crates/bench/src/experiments/e08_pointer_chase.rs crates/bench/src/experiments/e09_transpose.rs crates/bench/src/experiments/e10_full_pipeline.rs crates/bench/src/experiments/e11_interconnect.rs crates/bench/src/experiments/e12_flow_control.rs crates/bench/src/experiments/e13_scheduling.rs crates/bench/src/experiments/e14_bufferpool.rs crates/bench/src/microbench.rs crates/bench/src/report.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/e01_conventional.rs:
crates/bench/src/experiments/e02_pushdown.rs:
crates/bench/src/experiments/e03_like_offload.rs:
crates/bench/src/experiments/e04_nic_pipeline.rs:
crates/bench/src/experiments/e05_scatter_join.rs:
crates/bench/src/experiments/e06_nic_count.rs:
crates/bench/src/experiments/e07_near_memory.rs:
crates/bench/src/experiments/e08_pointer_chase.rs:
crates/bench/src/experiments/e09_transpose.rs:
crates/bench/src/experiments/e10_full_pipeline.rs:
crates/bench/src/experiments/e11_interconnect.rs:
crates/bench/src/experiments/e12_flow_control.rs:
crates/bench/src/experiments/e13_scheduling.rs:
crates/bench/src/experiments/e14_bufferpool.rs:
crates/bench/src/microbench.rs:
crates/bench/src/report.rs:
crates/bench/src/workload.rs:
