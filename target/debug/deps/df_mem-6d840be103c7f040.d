/root/repo/target/debug/deps/df_mem-6d840be103c7f040.d: crates/mem/src/lib.rs crates/mem/src/accel.rs crates/mem/src/btree.rs crates/mem/src/bufferpool.rs crates/mem/src/cache.rs crates/mem/src/region.rs

/root/repo/target/debug/deps/df_mem-6d840be103c7f040: crates/mem/src/lib.rs crates/mem/src/accel.rs crates/mem/src/btree.rs crates/mem/src/bufferpool.rs crates/mem/src/cache.rs crates/mem/src/region.rs

crates/mem/src/lib.rs:
crates/mem/src/accel.rs:
crates/mem/src/btree.rs:
crates/mem/src/bufferpool.rs:
crates/mem/src/cache.rs:
crates/mem/src/region.rs:
