/root/repo/target/debug/deps/df_sim-c8b8ccb5d12d0d18.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libdf_sim-c8b8ccb5d12d0d18.rlib: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libdf_sim-c8b8ccb5d12d0d18.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
