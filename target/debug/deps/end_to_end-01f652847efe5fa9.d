/root/repo/target/debug/deps/end_to_end-01f652847efe5fa9.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-01f652847efe5fa9: tests/end_to_end.rs

tests/end_to_end.rs:
