/root/repo/target/debug/deps/df_fabric-d1817dd5f6296c54.d: crates/fabric/src/lib.rs crates/fabric/src/coherence.rs crates/fabric/src/device.rs crates/fabric/src/dma.rs crates/fabric/src/flow.rs crates/fabric/src/link.rs crates/fabric/src/topology.rs

/root/repo/target/debug/deps/libdf_fabric-d1817dd5f6296c54.rlib: crates/fabric/src/lib.rs crates/fabric/src/coherence.rs crates/fabric/src/device.rs crates/fabric/src/dma.rs crates/fabric/src/flow.rs crates/fabric/src/link.rs crates/fabric/src/topology.rs

/root/repo/target/debug/deps/libdf_fabric-d1817dd5f6296c54.rmeta: crates/fabric/src/lib.rs crates/fabric/src/coherence.rs crates/fabric/src/device.rs crates/fabric/src/dma.rs crates/fabric/src/flow.rs crates/fabric/src/link.rs crates/fabric/src/topology.rs

crates/fabric/src/lib.rs:
crates/fabric/src/coherence.rs:
crates/fabric/src/device.rs:
crates/fabric/src/dma.rs:
crates/fabric/src/flow.rs:
crates/fabric/src/link.rs:
crates/fabric/src/topology.rs:
