/root/repo/target/debug/deps/fault_injection-eb7cf0ca5725899b.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-eb7cf0ca5725899b: tests/fault_injection.rs

tests/fault_injection.rs:
