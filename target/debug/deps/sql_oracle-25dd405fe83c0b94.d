/root/repo/target/debug/deps/sql_oracle-25dd405fe83c0b94.d: tests/sql_oracle.rs

/root/repo/target/debug/deps/sql_oracle-25dd405fe83c0b94: tests/sql_oracle.rs

tests/sql_oracle.rs:
