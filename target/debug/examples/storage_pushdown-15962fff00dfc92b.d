/root/repo/target/debug/examples/storage_pushdown-15962fff00dfc92b.d: examples/storage_pushdown.rs

/root/repo/target/debug/examples/storage_pushdown-15962fff00dfc92b: examples/storage_pushdown.rs

examples/storage_pushdown.rs:
