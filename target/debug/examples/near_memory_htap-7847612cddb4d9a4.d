/root/repo/target/debug/examples/near_memory_htap-7847612cddb4d9a4.d: examples/near_memory_htap.rs

/root/repo/target/debug/examples/near_memory_htap-7847612cddb4d9a4: examples/near_memory_htap.rs

examples/near_memory_htap.rs:
