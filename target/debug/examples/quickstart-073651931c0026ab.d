/root/repo/target/debug/examples/quickstart-073651931c0026ab.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-073651931c0026ab: examples/quickstart.rs

examples/quickstart.rs:
