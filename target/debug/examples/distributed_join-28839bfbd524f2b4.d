/root/repo/target/debug/examples/distributed_join-28839bfbd524f2b4.d: examples/distributed_join.rs

/root/repo/target/debug/examples/distributed_join-28839bfbd524f2b4: examples/distributed_join.rs

examples/distributed_join.rs:
