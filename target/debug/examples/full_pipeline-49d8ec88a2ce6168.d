/root/repo/target/debug/examples/full_pipeline-49d8ec88a2ce6168.d: examples/full_pipeline.rs

/root/repo/target/debug/examples/full_pipeline-49d8ec88a2ce6168: examples/full_pipeline.rs

examples/full_pipeline.rs:
