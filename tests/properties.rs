//! Property-based tests over the core invariants (proptest).
//!
//! Each property pins one of the contracts the experiments rely on:
//! codecs round-trip arbitrary data, device kernels agree with host
//! evaluation, partitioning is a permutation, zone-map pruning is sound,
//! coherence never serves stale reads, and the flow simulator conserves
//! bytes under backpressure.

use proptest::prelude::*;

use rheo::codec::wire::{decode_batch, encode_batch, WireOptions};
use rheo::codec::{crypto, int, lz};
use rheo::core::kernel::Program;
use rheo::data::batch::batch_of;
use rheo::data::sort::{is_sorted, sort_batch, SortKey};
use rheo::data::{Batch, Column, RowPage, Scalar};
use rheo::fabric::coherence::{CoherenceConfig, CoherenceSim, Mode};
use rheo::fabric::flow::{FlowSim, PipelineSpec, StageSpec};
use rheo::fabric::topology::{DisaggregatedConfig, Topology};
use rheo::fabric::OpClass;
use rheo::mem::btree;
use rheo::mem::region::{MemRegion, Placement};
use rheo::net::nic::{NicKernel, NicPipeline};
use rheo::storage::pattern::LikePattern;
use rheo::storage::zonemap::{CmpOp, ZoneMap};

// ------------------------------------------------------------- generators

fn arb_opt_i64() -> impl Strategy<Value = Option<i64>> {
    prop_oneof![
        3 => any::<i64>().prop_map(Some),
        1 => Just(None),
    ]
}

fn arb_small_string() -> impl Strategy<Value = String> {
    "[a-z%_0-9]{0,12}"
}

fn arb_batch(max_rows: usize) -> impl Strategy<Value = Batch> {
    (1..=max_rows).prop_flat_map(|rows| {
        (
            prop::collection::vec(arb_opt_i64(), rows),
            prop::collection::vec(any::<f64>(), rows),
            prop::collection::vec(arb_small_string(), rows),
            prop::collection::vec(any::<bool>(), rows),
        )
            .prop_map(|(ints, floats, strings, bools)| {
                batch_of(vec![
                    ("i", Column::from_opt_i64(&ints)),
                    ("f", Column::from_f64(floats)),
                    ("s", Column::from_strs(&strings)),
                    ("b", Column::from_bools(&bools)),
                ])
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // -------------------------------------------------------------- codecs

    #[test]
    fn wire_roundtrip_any_batch(batch in arb_batch(200), compress in any::<bool>(), encrypt in any::<bool>()) {
        let key = crypto::Key::from_seed(7);
        let opts = WireOptions {
            compress,
            encrypt: encrypt.then_some((key, 3)),
        };
        let frame = encode_batch(&batch, &opts);
        let back = decode_batch(&frame, encrypt.then_some(&key)).unwrap();
        prop_assert_eq!(batch.canonical_rows(), back.canonical_rows());
    }

    #[test]
    fn int_codecs_roundtrip(values in prop::collection::vec(any::<i64>(), 0..500)) {
        prop_assert_eq!(&int::rle_decode(&int::rle_encode(&values)).unwrap(), &values);
        prop_assert_eq!(&int::delta_decode(&int::delta_encode(&values)).unwrap(), &values);
        let (tag, bytes) = int::encode_best(&values);
        prop_assert_eq!(&int::decode_tagged(tag, &bytes).unwrap(), &values);
    }

    #[test]
    fn lz_roundtrip_any_bytes(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        prop_assert_eq!(lz::decompress(&lz::compress(&data)).unwrap(), data);
    }

    #[test]
    fn lz_decoder_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = lz::decompress(&data); // must not panic
    }

    #[test]
    fn rowpage_roundtrip(batch in arb_batch(100)) {
        let page = RowPage::from_batch(&batch).unwrap();
        let back = page.to_batch().unwrap();
        prop_assert_eq!(batch.canonical_rows(), back.canonical_rows());
    }

    // ------------------------------------------------------ device kernels

    #[test]
    fn kernel_vm_matches_host_eval(
        batch in arb_batch(100),
        bound in any::<i64>(),
        pattern in "[a-z%_]{0,6}",
        negate in any::<bool>(),
    ) {
        use rheo::core::expr::{col, lit};
        let mut expr = col("i")
            .gt(lit(bound))
            .or(col("s").like(pattern))
            .and(col("b").eq(lit(true)))
            .or(col("i").is_null());
        if negate {
            expr = expr.not();
        }
        let host = expr.eval_predicate(&batch).unwrap();
        let device = Program::compile_predicate(&expr).unwrap().run(&batch).unwrap();
        prop_assert_eq!(host, device);
    }

    #[test]
    fn pushdown_matches_host_eval(batch in arb_batch(100), lo in -100i64..100, span in 0i64..50) {
        use rheo::core::expr::col;
        let expr = col("i").between(lo, lo + span);
        let host = expr.eval_predicate(&batch).unwrap();
        let pushed = rheo::core::kernel::to_storage_predicate(&expr).unwrap();
        let storage = pushed.evaluate(&batch).unwrap();
        prop_assert_eq!(host, storage);
    }

    // --------------------------------------------------------- partitioner

    #[test]
    fn partitioning_is_a_permutation(
        keys in prop::collection::vec(any::<i64>(), 1..300),
        fanout in 1usize..8,
    ) {
        let batch = batch_of(vec![("k", Column::from_i64(keys.clone()))]);
        let mut nic = NicPipeline::new(vec![NicKernel::Partition {
            columns: vec!["k".into()],
            fanout,
        }]).unwrap();
        let outs = nic.push(batch).unwrap();
        // Union of partitions is the input multiset.
        let mut got: Vec<i64> = outs
            .iter()
            .flat_map(|(_, b)| b.column(0).i64_values().unwrap().to_vec())
            .collect();
        let mut want = keys.clone();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        // Determinism: same key -> same partition across separate runs.
        let mut nic2 = NicPipeline::new(vec![NicKernel::Partition {
            columns: vec!["k".into()],
            fanout,
        }]).unwrap();
        let batch2 = batch_of(vec![("k", Column::from_i64(keys))]);
        let outs2 = nic2.push(batch2).unwrap();
        let assignment = |outs: &[(usize, Batch)]| {
            let mut map = std::collections::HashMap::new();
            for (p, b) in outs {
                for &k in b.column(0).i64_values().unwrap() {
                    let prev = map.insert(k, *p);
                    if let Some(prev) = prev {
                        assert_eq!(prev, *p, "key {k} split across partitions");
                    }
                }
            }
            map
        };
        prop_assert_eq!(assignment(&outs), assignment(&outs2));
    }

    // ----------------------------------------------------------- zone maps

    #[test]
    fn zonemap_pruning_is_sound(
        values in prop::collection::vec(arb_opt_i64(), 1..200),
        literal in any::<i64>(),
        op_idx in 0usize..6,
    ) {
        let ops = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
        let op = ops[op_idx];
        let column = Column::from_opt_i64(&values);
        let zone = ZoneMap::of(&column);
        if zone.can_skip(op, &Scalar::Int(literal)) {
            // Pruning claimed no row matches: verify exhaustively.
            for v in values.iter().flatten() {
                prop_assert!(
                    !op.matches(Scalar::Int(*v).total_cmp(&Scalar::Int(literal))),
                    "zone map dropped a matching row: {v} {op:?} {literal}"
                );
            }
        }
    }

    // ---------------------------------------------------------------- LIKE

    #[test]
    fn like_matches_naive_semantics(input in "[ab%_]{0,8}", pattern in "[ab%_\\\\]{0,8}") {
        fn naive(input: &[char], pat: &[char]) -> bool {
            match pat.split_first() {
                None => input.is_empty(),
                Some(('\\', rest)) => match rest.split_first() {
                    None => input == ['\\'],
                    Some((lit, rest2)) => {
                        input.first() == Some(lit) && naive(&input[1..], rest2)
                    }
                },
                Some(('%', rest)) => {
                    (0..=input.len()).any(|k| naive(&input[k..], rest))
                }
                Some(('_', rest)) => {
                    !input.is_empty() && naive(&input[1..], rest)
                }
                Some((c, rest)) => {
                    input.first() == Some(c) && naive(&input[1..], rest)
                }
            }
        }
        let compiled = LikePattern::compile(&pattern);
        let in_chars: Vec<char> = input.chars().collect();
        let pat_chars: Vec<char> = pattern.chars().collect();
        prop_assert_eq!(
            compiled.matches(&input),
            naive(&in_chars, &pat_chars),
            "LIKE '{}' over '{}'", pattern, input
        );
    }

    // ---------------------------------------------------------------- sort

    #[test]
    fn sort_orders_and_permutes(batch in arb_batch(150), asc in any::<bool>()) {
        let keys = [SortKey { column: 0, ascending: asc }, SortKey::asc(2)];
        let sorted = sort_batch(&batch, &keys).unwrap();
        prop_assert!(is_sorted(&sorted, &keys));
        prop_assert_eq!(batch.canonical_rows(), sorted.canonical_rows());
    }

    // --------------------------------------------------------------- btree

    #[test]
    fn btree_lookup_total(mut keys in prop::collection::vec(-10_000i64..10_000, 1..400), fanout in 2usize..20) {
        keys.sort_unstable();
        keys.dedup();
        let pairs: Vec<(i64, i64)> = keys.iter().map(|&k| (k, k.wrapping_mul(7))).collect();
        let mut region = MemRegion::new(0, rheo::mem::btree::required_page_size(fanout).max(256), Placement::Local);
        let tree = btree::build(&mut region, &pairs, fanout).unwrap();
        for &k in &keys {
            prop_assert_eq!(btree::lookup(&mut region, &tree, k).unwrap(), Some(k.wrapping_mul(7)));
        }
        // Absent keys miss.
        for probe in [-10_001i64, 10_001, 12345] {
            if !keys.contains(&probe) {
                prop_assert_eq!(btree::lookup(&mut region, &tree, probe).unwrap(), None);
            }
        }
        // Range agrees with a filter of the key list.
        let (lo, hi) = (-500i64, 500i64);
        let got = btree::range(&mut region, &tree, lo, hi).unwrap();
        let want: Vec<(i64, i64)> = pairs.iter().copied().filter(|(k, _)| (lo..=hi).contains(k)).collect();
        prop_assert_eq!(got, want);
    }

    // ----------------------------------------------------------- coherence

    #[test]
    fn coherence_never_serves_stale_reads(
        ops in prop::collection::vec((0usize..3, 0usize..16, any::<bool>()), 1..300),
        hw in any::<bool>(),
    ) {
        let mut sim = CoherenceSim::new(CoherenceConfig {
            agents: 3,
            lines: 16,
            mode: if hw { Mode::HardwareCxl } else { Mode::SoftwareRdma },
            ..CoherenceConfig::default()
        });
        for (agent, line, is_write) in ops {
            if is_write {
                sim.write(agent, line);
            } else {
                let access = sim.read(agent, line);
                prop_assert_eq!(access.value, sim.latest_version(line));
            }
            sim.check_invariants().map_err(TestCaseError::fail)?;
        }
    }

    // ------------------------------------------------------ flow simulator

    #[test]
    fn flow_conserves_bytes_and_respects_credits(
        source_kb in 64u64..2048,
        sel_a in 0.0f64..1.0,
        sel_b in 0.0f64..1.0,
        credits in 1usize..6,
    ) {
        let topo = Topology::disaggregated(&DisaggregatedConfig::default());
        let ssd = topo.expect_device("storage.ssd");
        let snic = topo.expect_device("storage.nic");
        let cpu = topo.expect_device("compute0.cpu");
        let spec = PipelineSpec::new(
            "prop",
            vec![
                StageSpec::new(ssd, OpClass::Filter, sel_a).with_queue(credits),
                StageSpec::new(snic, OpClass::Project, sel_b).with_queue(credits),
                StageSpec::new(cpu, OpClass::Count, 0.0).with_queue(credits),
            ],
            source_kb << 10,
        )
        .with_chunk(64 << 10);
        let mut sim = FlowSim::new(topo);
        sim.add_pipeline(spec);
        let report = sim.run();
        let p = &report.pipelines[0];
        // Stage i+1 consumes exactly what stage i produced.
        prop_assert_eq!(p.stages[0].bytes_in, source_kb << 10);
        prop_assert_eq!(p.stages[1].bytes_in, p.stages[0].bytes_out);
        prop_assert_eq!(p.stages[2].bytes_in, p.stages[1].bytes_out);
        // Queues never exceeded their credit budget.
        for stage in &p.stages {
            prop_assert!(stage.queue_high_watermark <= credits);
        }
        // The pipeline terminated (the sim queue drained).
        prop_assert!(p.finished.nanos() > 0);
    }
}
