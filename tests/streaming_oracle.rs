//! Streaming-vs-batch oracle equivalence.
//!
//! A punctuated streaming run over a finite prefix must be **bit-identical**
//! to the batch run over the materialized prefix: [`WindowAggOp`] closes
//! windows ascending whether the frontier arrives via punctuation or at
//! end-of-input, and [`HashAggOp`] drains each window in deterministic key
//! order, so the output rows, their drain order, and the movement-ledger
//! accounting must all agree. Plans, windows, and seeds are randomized
//! (`rheo::check`); failing seeds land in `proptest-regressions/`.
//!
//! [`WindowAggOp`]: rheo::core::streaming::WindowAggOp
//! [`HashAggOp`]: rheo::core::ops::HashAggOp

use std::collections::BTreeMap;

use rheo::check::{check, Gen};
use rheo::core::exec::push::{execute, execute_graph, ExecEnv, ExecOutcome};
use rheo::core::logical::{AggCall, AggFn};
use rheo::core::physical::{PhysNode, PhysicalPlan};
use rheo::core::pipeline::{PipelineGraph, DEFAULT_QUEUE_CAPACITY};
use rheo::core::streaming::{windowed_stream_plan, StreamSourceSpec, WindowSpec};
use rheo::fabric::topology::DisaggregatedConfig;
use rheo::fabric::{DeviceId, Topology};

fn topo() -> Topology {
    Topology::disaggregated(&DisaggregatedConfig::default())
}

/// Swap every `StreamScan` leaf for `Values` over its materialized finite
/// prefix — the batch oracle. Everything else in the plan is unchanged,
/// so the two runs differ only in how the frontier advances.
fn batch_oracle(node: &PhysNode) -> PhysNode {
    match node {
        PhysNode::StreamScan {
            spec,
            schema,
            device,
        } => PhysNode::Values {
            schema: schema.clone(),
            batches: spec
                .materialize(None)
                .expect("oracle needs a bounded stream"),
            device: *device,
        },
        PhysNode::WindowAggregate {
            input,
            ts_col,
            window,
            group_by,
            aggs,
            mode,
            final_schema,
            device,
        } => PhysNode::WindowAggregate {
            input: Box::new(batch_oracle(input)),
            ts_col: ts_col.clone(),
            window: *window,
            group_by: group_by.clone(),
            aggs: aggs.clone(),
            mode: *mode,
            final_schema: final_schema.clone(),
            device: *device,
        },
        PhysNode::Filter {
            input,
            predicate,
            device,
            use_kernel,
        } => PhysNode::Filter {
            input: Box::new(batch_oracle(input)),
            predicate: predicate.clone(),
            device: *device,
            use_kernel: *use_kernel,
        },
        other => other.clone(),
    }
}

/// Flatten an outcome's output into one comparable row-order-sensitive
/// fingerprint.
fn drained_rows(out: &ExecOutcome) -> Vec<String> {
    out.batches
        .iter()
        .flat_map(|b| (0..b.rows()).map(|r| format!("{:?}", b.row(r))))
        .collect()
}

/// The ledger's full (from, to) -> (bytes, rows) account.
fn ledger_edges(out: &ExecOutcome) -> BTreeMap<String, (u64, u64)> {
    out.ledger
        .edges()
        .map(|((from, to), stats)| (format!("{from:?}->{to:?}"), (stats.bytes, stats.rows)))
        .collect()
}

struct Case {
    spec: StreamSourceSpec,
    window: WindowSpec,
    group_by: Vec<String>,
    aggs: Vec<AggCall>,
    max_groups: usize,
    devices: (Option<DeviceId>, Option<DeviceId>, Option<DeviceId>),
}

fn random_case(gen: &mut Gen, topo: &Topology) -> Case {
    let spec = StreamSourceSpec {
        seed: gen.u64(),
        rows_per_batch: gen.usize_in(16, 96),
        batches: Some(gen.usize_in(2, 8) as u64),
        sensors: gen.usize_in(1, 8) as u64,
        start_ts: gen.i64_in(-64, 64),
        punct_every: gen.usize_in(1, 4) as u64,
    };
    let size = gen.i64_in(8, 96);
    let window = if gen.bool() {
        WindowSpec::tumbling(size)
    } else {
        WindowSpec::sliding(size, gen.i64_in(1, size))
    };
    let group_by: Vec<String> = match gen.usize_in(0, 2) {
        0 => vec![],
        1 => vec!["sensor".into()],
        _ => vec!["sensor".into(), "level".into()],
    };
    let mut aggs = vec![AggCall::count_star("n")];
    if gen.bool() {
        aggs.push(AggCall::new(AggFn::Sum, "value", "total"));
    }
    if gen.bool() {
        aggs.push(AggCall::new(AggFn::Min, "value", "lo"));
    }
    if gen.bool() {
        aggs.push(AggCall::new(AggFn::Max, "ts", "hi_ts"));
    }
    // Small bounds force mid-window partial flushes on some cases.
    let max_groups = gen.usize_in(1, 64);
    let devices = if gen.bool() {
        let nic = topo.expect_device("compute0.nic");
        let cpu = topo.expect_device("compute0.cpu");
        (Some(nic), Some(nic), Some(cpu))
    } else {
        (None, None, None)
    };
    Case {
        spec,
        window,
        group_by,
        aggs,
        max_groups,
        devices,
    }
}

fn build_plan(case: &Case) -> PhysicalPlan {
    windowed_stream_plan(
        &case.spec,
        case.window,
        case.group_by.clone(),
        case.aggs.clone(),
        case.max_groups,
        case.devices.0,
        case.devices.1,
        case.devices.2,
    )
    .expect("windowed stream plan")
}

#[test]
fn streaming_prefix_is_bit_identical_to_batch_oracle() {
    let topo = topo();
    check("streaming_oracle_equivalence", 48, |gen| {
        let case = random_case(gen, &topo);
        let plan = build_plan(&case);
        let oracle_plan = PhysicalPlan::new(batch_oracle(&plan.root), "batch-oracle");

        let env = ExecEnv {
            topology: Some(&topo),
            ..ExecEnv::in_memory()
        };
        let streamed = execute(&plan, &env).expect("streaming run");
        let oracle = execute(&oracle_plan, &env).expect("oracle run");

        assert!(
            streamed.rows() > 0,
            "vacuous case: no windows closed (spec {:?})",
            case.spec
        );
        assert_eq!(
            drained_rows(&streamed),
            drained_rows(&oracle),
            "row content or drain order diverged from the batch oracle"
        );
        assert_eq!(
            ledger_edges(&streamed),
            ledger_edges(&oracle),
            "ledger accounting diverged from the batch oracle"
        );
        // The streaming run saw punctuation; the oracle must not have.
        assert!(
            !streamed.frontiers.is_empty(),
            "streaming run processed no punctuation"
        );
        assert!(oracle.frontiers.is_empty(), "oracle run saw punctuation");
    });
}

#[test]
fn bounded_horizon_run_matches_bounded_spec_run() {
    // Bounding an *unbounded* graph with `with_stream_horizon(n)` must be
    // byte-identical to compiling the same spec with `batches: Some(n)`.
    let topo = topo();
    check("streaming_horizon_equivalence", 24, |gen| {
        let mut case = random_case(gen, &topo);
        let horizon = case.spec.batches.expect("random case is bounded");
        let bounded = execute(&build_plan(&case), &ExecEnv::in_memory()).expect("bounded run");

        case.spec.batches = None;
        let unbounded_plan = build_plan(&case);
        let graph = PipelineGraph::compile(&unbounded_plan, None, None, DEFAULT_QUEUE_CAPACITY);
        assert!(graph.has_unbounded_stream());
        let horizon_graph = graph.with_stream_horizon(horizon);
        let env = ExecEnv::in_memory();
        let horizoned =
            execute_graph(&horizon_graph, &env, "horizon").expect("horizon-bounded run");

        assert_eq!(drained_rows(&bounded), drained_rows(&horizoned));
        assert_eq!(ledger_edges(&bounded), ledger_edges(&horizoned));
    });
}

#[test]
fn unbounded_stream_is_refused_by_the_executor() {
    let mut case = Case {
        spec: StreamSourceSpec::default(),
        window: WindowSpec::tumbling(64),
        group_by: vec!["sensor".into()],
        aggs: vec![AggCall::count_star("n")],
        max_groups: 1 << 20,
        devices: (None, None, None),
    };
    case.spec.batches = None;
    let plan = build_plan(&case);
    let graph = PipelineGraph::compile(&plan, None, None, DEFAULT_QUEUE_CAPACITY);
    let env = ExecEnv::in_memory();
    let err = execute_graph(&graph, &env, "unbounded").expect_err("unbounded must not run");
    assert!(
        format!("{err}").contains("with_stream_horizon"),
        "error should point at the horizon API: {err}"
    );
}

#[test]
fn same_seed_streaming_runs_are_byte_identical() {
    let topo = topo();
    let nic = topo.expect_device("compute0.nic");
    let cpu = topo.expect_device("compute0.cpu");
    let case = Case {
        spec: StreamSourceSpec {
            batches: Some(6),
            ..StreamSourceSpec::default()
        },
        window: WindowSpec::tumbling(48),
        group_by: vec!["sensor".into()],
        aggs: vec![
            AggCall::count_star("n"),
            AggCall::new(AggFn::Sum, "value", "total"),
        ],
        max_groups: 8,
        devices: (Some(nic), Some(nic), Some(cpu)),
    };
    let plan = build_plan(&case);
    let env = ExecEnv {
        topology: Some(&topo),
        ..ExecEnv::in_memory()
    };
    let a = execute(&plan, &env).expect("first run");
    let b = execute(&plan, &env).expect("second run");
    assert_eq!(drained_rows(&a), drained_rows(&b));
    assert_eq!(ledger_edges(&a), ledger_edges(&b));
    assert_eq!(a.frontiers, b.frontiers);
    assert_eq!(a.window_lags, b.window_lags);
}
