//! Mutation-based property tests for the pipeline-graph verifier.
//!
//! Two directions:
//!
//! - **Soundness of compile**: every graph the compiler emits for a random
//!   legally-placed plan verifies clean and is proven deadlock-free by the
//!   credit-flow analysis.
//! - **Sensitivity of verify**: five single mutations of a clean graph —
//!   swapped route, placement on an incapable device, dropped join-build
//!   wiring, zero credit capacity, schema break at a pipeline cut — are
//!   each rejected with the expected typed [`VerifyError`] variant.
//!
//! Seeds are deterministic per property (see `rheo::check`); failing seeds
//! land in `proptest-regressions/` and replay first on later runs.

use rheo::analysis::deadlock;
use rheo::check::{check, Gen};
use rheo::core::expr::{col, lit};
use rheo::core::logical::{AggCall, AggFn, JoinType};
use rheo::core::ops::AggMode;
use rheo::core::physical::{PhysNode, PhysicalPlan};
use rheo::core::pipeline::{EdgeKind, PipelineGraph, VerifyError, DEFAULT_QUEUE_CAPACITY};
use rheo::data::batch::batch_of;
use rheo::data::{Column, DataType, Field, Schema, SchemaRef};
use rheo::fabric::topology::DisaggregatedConfig;
use rheo::fabric::{DeviceId, Topology};

// ------------------------------------------------------- plan generation

/// Random placed plans with a guaranteed fabric cut: the source chain
/// lives on the NIC (or SSD), the stateful tip on the CPU.
struct MutGen {
    nic: DeviceId,
    ssd: DeviceId,
    cpu: DeviceId,
}

impl MutGen {
    fn new(topo: &Topology) -> MutGen {
        MutGen {
            nic: topo.expect_device("compute0.nic"),
            ssd: topo.expect_device("storage.ssd"),
            cpu: topo.expect_device("compute0.cpu"),
        }
    }

    fn base_schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("v", DataType::Int64),
            Field::new("g", DataType::Int64),
        ])
        .into_ref()
    }

    /// Streaming-side placement: NIC or SSD, both capable of filters.
    fn edge_device(&self, gen: &mut Gen) -> DeviceId {
        *gen.pick(&[self.nic, self.ssd])
    }

    fn values(&self, gen: &mut Gen, device: DeviceId) -> PhysNode {
        let rows = gen.usize_in(1, 24);
        let mut ids = Vec::with_capacity(rows);
        let mut vs = Vec::with_capacity(rows);
        let mut gs = Vec::with_capacity(rows);
        for _ in 0..rows {
            ids.push(gen.i64_in(-20, 100));
            vs.push(gen.i64_in(-1_000, 1_000));
            gs.push(gen.i64_in(0, 4));
        }
        PhysNode::Values {
            batches: vec![batch_of(vec![
                ("id", Column::from_i64(ids)),
                ("v", Column::from_i64(vs)),
                ("g", Column::from_i64(gs)),
            ])],
            schema: Self::base_schema(),
            device: Some(device),
        }
    }

    /// 0..=2 filters/identity-projects, all on the streaming device.
    fn chain(&self, gen: &mut Gen, mut node: PhysNode, device: DeviceId) -> PhysNode {
        for _ in 0..gen.usize_in(0, 2) {
            node = if gen.bool() {
                PhysNode::Filter {
                    input: Box::new(node),
                    predicate: col("id").lt(lit(gen.i64_in(-10, 90))),
                    device: Some(device),
                    use_kernel: false,
                }
            } else {
                PhysNode::Project {
                    exprs: vec![
                        (col("id"), "id".to_string()),
                        (col("v"), "v".to_string()),
                        (col("g"), "g".to_string()),
                    ],
                    schema: Self::base_schema(),
                    input: Box::new(node),
                    device: Some(device),
                }
            };
        }
        node
    }

    /// A breaker on the CPU: sort, top-k, or final aggregate.
    fn breaker(&self, gen: &mut Gen, node: PhysNode) -> PhysNode {
        match gen.usize_in(0, 2) {
            0 => PhysNode::Sort {
                input: Box::new(node),
                keys: vec![("id".into(), gen.bool()), ("v".into(), true)],
                device: Some(self.cpu),
            },
            1 => PhysNode::TopK {
                input: Box::new(node),
                keys: vec![("id".into(), gen.bool()), ("v".into(), true)],
                k: gen.usize_in(1, 12) as u64,
                device: Some(self.cpu),
            },
            _ => PhysNode::Aggregate {
                input: Box::new(node),
                group_by: vec!["g".into()],
                aggs: vec![AggCall::count_star("n"), AggCall::new(AggFn::Sum, "v", "s")],
                mode: AggMode::Final,
                final_schema: Schema::new(vec![
                    Field::new("g", DataType::Int64),
                    Field::new("n", DataType::Int64),
                    Field::new("s", DataType::Int64),
                ])
                .into_ref(),
                device: Some(self.cpu),
            },
        }
    }

    /// A hash join on the CPU whose build side streams in from the NIC.
    fn join(&self, gen: &mut Gen, probe: PhysNode) -> PhysNode {
        let rows = gen.usize_in(1, 8);
        let mut bks = Vec::with_capacity(rows);
        for _ in 0..rows {
            bks.push(gen.i64_in(-20, 100));
        }
        let build = PhysNode::Values {
            batches: vec![batch_of(vec![("bk", Column::from_i64(bks))])],
            schema: Schema::new(vec![Field::new("bk", DataType::Int64)]).into_ref(),
            device: Some(self.nic),
        };
        let mut fields: Vec<Field> = build.schema().fields().to_vec();
        fields.extend(probe.schema().fields().to_vec());
        PhysNode::HashJoin {
            build: Box::new(build),
            probe: Box::new(probe),
            on: vec![("bk".into(), "id".into())],
            join_type: JoinType::Inner,
            schema: Schema::new(fields).into_ref(),
            device: Some(self.cpu),
        }
    }

    /// A random plan with at least one fabric edge and one breaker.
    /// `with_join`: `Some(true)` always joins, `Some(false)` never,
    /// `None` joins a third of the time.
    fn plan(&self, gen: &mut Gen, with_join: Option<bool>) -> PhysicalPlan {
        let dev = self.edge_device(gen);
        let source = self.values(gen, dev);
        let mut node = self.chain(gen, source, dev);
        if with_join.unwrap_or_else(|| gen.usize_in(0, 2) == 0) {
            node = self.join(gen, node);
        }
        node = self.breaker(gen, node);
        PhysicalPlan::new(node, "verify-mutations")
    }

    fn compile(&self, gen: &mut Gen, topo: &Topology, with_join: Option<bool>) -> PipelineGraph {
        PipelineGraph::compile(
            &self.plan(gen, with_join),
            None,
            Some(topo),
            DEFAULT_QUEUE_CAPACITY,
        )
    }
}

fn has<F: Fn(&VerifyError) -> bool>(errs: &[VerifyError], f: F) -> bool {
    errs.iter().any(f)
}

// ------------------------------------------------------------ properties

#[test]
fn random_placed_plans_verify_clean_and_deadlock_free() {
    let topo = Topology::disaggregated(&DisaggregatedConfig::default());
    let gens = MutGen::new(&topo);
    check("verify-random-plans-clean", 64, |gen: &mut Gen| {
        let g = gens.compile(gen, &topo, None);
        g.verify(Some(&topo))
            .expect("compiled graph verifies clean");
        let r = deadlock::analyze(&g);
        assert!(r.is_deadlock_free(), "deadlock findings: {:?}", r.findings);
    });
}

#[test]
fn mutation_swapped_route_is_rejected() {
    let topo = Topology::disaggregated(&DisaggregatedConfig::default());
    let gens = MutGen::new(&topo);
    check("verify-mut-swapped-route", 32, |gen: &mut Gen| {
        let mut g = gens.compile(gen, &topo, None);
        // Swap in a route between two unrelated adjacent devices.
        let ssd = topo.expect_device("storage.ssd");
        let snic = topo.expect_device("storage.nic");
        let bogus = topo.route(ssd, snic).expect("ssd and its nic are adjacent");
        let fabric: Vec<usize> = g
            .edges
            .iter()
            .filter(|e| {
                matches!(e.kind, EdgeKind::Fabric { .. })
                    && !(e.from_device == Some(ssd) && e.to_device == Some(snic))
            })
            .map(|e| e.id)
            .collect();
        let victim = *gen.pick(&fabric);
        g.edges[victim].kind = EdgeKind::Fabric { route: Some(bogus) };
        let errs = g.verify(Some(&topo)).expect_err("swapped route must fail");
        assert!(
            has(
                &errs,
                |e| matches!(e, VerifyError::RouteMismatch { edge, .. } if *edge == victim)
            ),
            "expected RouteMismatch for edge {victim}, got {errs:?}"
        );
    });
}

#[test]
fn mutation_illegal_placement_is_rejected() {
    let topo = Topology::disaggregated(&DisaggregatedConfig::default());
    let gens = MutGen::new(&topo);
    check("verify-mut-illegal-placement", 32, |gen: &mut Gen| {
        let mut g = gens.compile(gen, &topo, None);
        // Move the root pipeline's breaker onto a streaming device that
        // cannot host unbounded state.
        let nic = topo.expect_device("compute0.nic");
        let root = g.root;
        let op = g.pipelines[root].ops.last_mut().expect("breaker at tip");
        op.device = Some(nic);
        let errs = g
            .verify(Some(&topo))
            .expect_err("illegal placement must fail");
        assert!(
            has(&errs, |e| matches!(e, VerifyError::IllegalPlacement { .. })),
            "expected IllegalPlacement, got {errs:?}"
        );
    });
}

#[test]
fn mutation_dropped_join_build_is_rejected() {
    let topo = Topology::disaggregated(&DisaggregatedConfig::default());
    let gens = MutGen::new(&topo);
    check("verify-mut-dropped-join-build", 32, |gen: &mut Gen| {
        let mut g = gens.compile(gen, &topo, Some(true));
        // Sever every probe's reference to its build edge.
        for p in &mut g.pipelines {
            for op in &mut p.ops {
                op.build_edge = None;
            }
        }
        let errs = g
            .verify(Some(&topo))
            .expect_err("dropped join build must fail");
        assert!(
            has(&errs, |e| matches!(e, VerifyError::MissingJoinBuild { .. })),
            "expected MissingJoinBuild, got {errs:?}"
        );
        assert!(
            has(&errs, |e| matches!(
                e,
                VerifyError::DanglingJoinBuild { .. }
            )),
            "expected DanglingJoinBuild, got {errs:?}"
        );
    });
}

#[test]
fn mutation_zero_capacity_is_rejected_by_verify_and_deadlock() {
    let topo = Topology::disaggregated(&DisaggregatedConfig::default());
    let gens = MutGen::new(&topo);
    check("verify-mut-zero-capacity", 32, |gen: &mut Gen| {
        let mut g = gens.compile(gen, &topo, None);
        let fabric: Vec<usize> = g
            .edges
            .iter()
            .filter(|e| matches!(e.kind, EdgeKind::Fabric { .. }))
            .map(|e| e.id)
            .collect();
        let victim = *gen.pick(&fabric);
        g.edges[victim].queue_capacity = 0;
        let errs = g.verify(Some(&topo)).expect_err("zero capacity must fail");
        assert!(
            has(
                &errs,
                |e| matches!(e, VerifyError::ZeroCapacity { edge } if *edge == victim)
            ),
            "expected ZeroCapacity for edge {victim}, got {errs:?}"
        );
        // The credit-flow analysis independently rejects the same graph.
        let r = deadlock::analyze(&g);
        assert!(
            r.findings.iter().any(
                |f| matches!(f, deadlock::DeadlockFinding::ZeroCapacity { edge } if *edge == victim)
            ),
            "deadlock analysis missed the zero-capacity channel: {:?}",
            r.findings
        );
    });
}

#[test]
fn mutation_broken_codec_pair_is_rejected() {
    use rheo::codec::edge::EdgeEncoding;
    use rheo::fabric::OpClass;
    let topo = Topology::disaggregated(&DisaggregatedConfig::default());
    let gens = MutGen::new(&topo);
    check("verify-mut-broken-codec-pair", 32, |gen: &mut Gen| {
        let mut g = gens.compile(gen, &topo, None);
        // Fabric edges whose endpoints can legally host the codec pair.
        let eligible: Vec<usize> = g
            .edges
            .iter()
            .filter(|e| {
                matches!(e.kind, EdgeKind::Fabric { .. })
                    && e.from_device
                        .is_some_and(|d| topo.device(d).profile.supports(OpClass::Compress))
                    && e.to_device
                        .is_some_and(|d| topo.device(d).profile.supports(OpClass::Decompress))
            })
            .map(|e| e.id)
            .collect();
        if eligible.is_empty() {
            return; // all-local placement this round; nothing to mutate
        }
        let victim = *gen.pick(&eligible);
        let encoding = *gen.pick(&[
            EdgeEncoding::Columnar,
            EdgeEncoding::Lz,
            EdgeEncoding::ColumnarLz,
        ]);
        g.set_edge_encoding(victim, encoding, 0.5);
        g.verify(Some(&topo))
            .expect("paired codec stages verify clean");
        // Break the pair one of three ways; verify must name the edge.
        match gen.usize_in(0, 2) {
            0 => g.edges[victim].decompress = None,
            1 => {
                let c = g.edges[victim].compress.as_mut().expect("compress stage");
                c.ratio = 0.25; // no longer equal to the decompress ratio
            }
            _ => g.edges[victim].encoding = EdgeEncoding::Plain,
        }
        let errs = g
            .verify(Some(&topo))
            .expect_err("broken codec pair must fail");
        assert!(
            has(
                &errs,
                |e| matches!(e, VerifyError::CodecPairingBroken { edge, .. } if *edge == victim)
            ),
            "expected CodecPairingBroken for edge {victim}, got {errs:?}"
        );
    });
}

#[test]
fn mutation_schema_break_at_cut_is_rejected() {
    let topo = Topology::disaggregated(&DisaggregatedConfig::default());
    let gens = MutGen::new(&topo);
    check("verify-mut-schema-break", 32, |gen: &mut Gen| {
        // Join-free plans: the root pipeline's first op is then always a
        // breaker fed over a cut, so a mutation target always exists.
        let mut g = gens.compile(gen, &topo, Some(false));
        // Declare a wrong input layout on the first op of some pipeline fed
        // over a cut (breakers re-declare their input schema there).
        let wrong = Schema::new(vec![Field::new("id", DataType::Float64)]).into_ref();
        use rheo::core::pipeline::OperatorSpec;
        let candidates: Vec<usize> = g
            .edges
            .iter()
            .filter(|e| {
                g.pipelines[e.to].ops.first().is_some_and(|op| {
                    matches!(
                        op.spec,
                        OperatorSpec::Sort { .. }
                            | OperatorSpec::TopK { .. }
                            | OperatorSpec::Filter { .. }
                            | OperatorSpec::Aggregate { .. }
                    )
                })
            })
            .map(|e| e.to)
            .collect();
        let victim = *gen.pick(&candidates);
        match &mut g.pipelines[victim].ops[0].spec {
            OperatorSpec::Sort { input_schema, .. }
            | OperatorSpec::TopK { input_schema, .. }
            | OperatorSpec::Filter { input_schema, .. }
            | OperatorSpec::Aggregate { input_schema, .. } => *input_schema = wrong,
            other => panic!("unexpected op {other:?}"),
        }
        let errs = g.verify(Some(&topo)).expect_err("schema break must fail");
        assert!(
            has(&errs, |e| matches!(e, VerifyError::SchemaMismatch { .. })),
            "expected SchemaMismatch, got {errs:?}"
        );
    });
}
