//! Mutation-based property tests for the pipeline-graph verifier.
//!
//! Two directions:
//!
//! - **Soundness of compile**: every graph the compiler emits for a random
//!   legally-placed plan verifies clean and is proven deadlock-free by the
//!   credit-flow analysis.
//! - **Sensitivity of verify**: five single mutations of a clean graph —
//!   swapped route, placement on an incapable device, dropped join-build
//!   wiring, zero credit capacity, schema break at a pipeline cut — are
//!   each rejected with the expected typed [`VerifyError`] variant.
//!
//! Seeds are deterministic per property (see `rheo::check`); failing seeds
//! land in `proptest-regressions/` and replay first on later runs.

use rheo::analysis::deadlock;
use rheo::check::{check, Gen};
use rheo::core::expr::{col, lit};
use rheo::core::logical::{AggCall, AggFn, JoinType};
use rheo::core::ops::AggMode;
use rheo::core::physical::{PhysNode, PhysicalPlan};
use rheo::core::pipeline::{EdgeKind, PipelineGraph, VerifyError, DEFAULT_QUEUE_CAPACITY};
use rheo::data::batch::batch_of;
use rheo::data::{Column, DataType, Field, Schema, SchemaRef};
use rheo::fabric::topology::DisaggregatedConfig;
use rheo::fabric::{DeviceId, Topology};

// ------------------------------------------------------- plan generation

/// Random placed plans with a guaranteed fabric cut: the source chain
/// lives on the NIC (or SSD), the stateful tip on the CPU.
struct MutGen {
    nic: DeviceId,
    ssd: DeviceId,
    cpu: DeviceId,
}

impl MutGen {
    fn new(topo: &Topology) -> MutGen {
        MutGen {
            nic: topo.expect_device("compute0.nic"),
            ssd: topo.expect_device("storage.ssd"),
            cpu: topo.expect_device("compute0.cpu"),
        }
    }

    fn base_schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("v", DataType::Int64),
            Field::new("g", DataType::Int64),
        ])
        .into_ref()
    }

    /// Streaming-side placement: NIC or SSD, both capable of filters.
    fn edge_device(&self, gen: &mut Gen) -> DeviceId {
        *gen.pick(&[self.nic, self.ssd])
    }

    fn values(&self, gen: &mut Gen, device: DeviceId) -> PhysNode {
        let rows = gen.usize_in(1, 24);
        let mut ids = Vec::with_capacity(rows);
        let mut vs = Vec::with_capacity(rows);
        let mut gs = Vec::with_capacity(rows);
        for _ in 0..rows {
            ids.push(gen.i64_in(-20, 100));
            vs.push(gen.i64_in(-1_000, 1_000));
            gs.push(gen.i64_in(0, 4));
        }
        PhysNode::Values {
            batches: vec![batch_of(vec![
                ("id", Column::from_i64(ids)),
                ("v", Column::from_i64(vs)),
                ("g", Column::from_i64(gs)),
            ])],
            schema: Self::base_schema(),
            device: Some(device),
        }
    }

    /// 0..=2 filters/identity-projects, all on the streaming device.
    fn chain(&self, gen: &mut Gen, mut node: PhysNode, device: DeviceId) -> PhysNode {
        for _ in 0..gen.usize_in(0, 2) {
            node = if gen.bool() {
                PhysNode::Filter {
                    input: Box::new(node),
                    predicate: col("id").lt(lit(gen.i64_in(-10, 90))),
                    device: Some(device),
                    use_kernel: false,
                }
            } else {
                PhysNode::Project {
                    exprs: vec![
                        (col("id"), "id".to_string()),
                        (col("v"), "v".to_string()),
                        (col("g"), "g".to_string()),
                    ],
                    schema: Self::base_schema(),
                    input: Box::new(node),
                    device: Some(device),
                }
            };
        }
        node
    }

    /// A breaker on the CPU: sort, top-k, or final aggregate.
    fn breaker(&self, gen: &mut Gen, node: PhysNode) -> PhysNode {
        match gen.usize_in(0, 2) {
            0 => PhysNode::Sort {
                input: Box::new(node),
                keys: vec![("id".into(), gen.bool()), ("v".into(), true)],
                device: Some(self.cpu),
            },
            1 => PhysNode::TopK {
                input: Box::new(node),
                keys: vec![("id".into(), gen.bool()), ("v".into(), true)],
                k: gen.usize_in(1, 12) as u64,
                device: Some(self.cpu),
            },
            _ => PhysNode::Aggregate {
                input: Box::new(node),
                group_by: vec!["g".into()],
                aggs: vec![AggCall::count_star("n"), AggCall::new(AggFn::Sum, "v", "s")],
                mode: AggMode::Final,
                final_schema: Schema::new(vec![
                    Field::new("g", DataType::Int64),
                    Field::new("n", DataType::Int64),
                    Field::new("s", DataType::Int64),
                ])
                .into_ref(),
                device: Some(self.cpu),
            },
        }
    }

    /// A hash join on the CPU whose build side streams in from the NIC.
    fn join(&self, gen: &mut Gen, probe: PhysNode) -> PhysNode {
        let rows = gen.usize_in(1, 8);
        let mut bks = Vec::with_capacity(rows);
        for _ in 0..rows {
            bks.push(gen.i64_in(-20, 100));
        }
        let build = PhysNode::Values {
            batches: vec![batch_of(vec![("bk", Column::from_i64(bks))])],
            schema: Schema::new(vec![Field::new("bk", DataType::Int64)]).into_ref(),
            device: Some(self.nic),
        };
        let mut fields: Vec<Field> = build.schema().fields().to_vec();
        fields.extend(probe.schema().fields().to_vec());
        PhysNode::HashJoin {
            build: Box::new(build),
            probe: Box::new(probe),
            on: vec![("bk".into(), "id".into())],
            join_type: JoinType::Inner,
            schema: Schema::new(fields).into_ref(),
            device: Some(self.cpu),
        }
    }

    /// A random plan with at least one fabric edge and one breaker.
    /// `with_join`: `Some(true)` always joins, `Some(false)` never,
    /// `None` joins a third of the time.
    fn plan(&self, gen: &mut Gen, with_join: Option<bool>) -> PhysicalPlan {
        let dev = self.edge_device(gen);
        let source = self.values(gen, dev);
        let mut node = self.chain(gen, source, dev);
        if with_join.unwrap_or_else(|| gen.usize_in(0, 2) == 0) {
            node = self.join(gen, node);
        }
        node = self.breaker(gen, node);
        PhysicalPlan::new(node, "verify-mutations")
    }

    fn compile(&self, gen: &mut Gen, topo: &Topology, with_join: Option<bool>) -> PipelineGraph {
        PipelineGraph::compile(
            &self.plan(gen, with_join),
            None,
            Some(topo),
            DEFAULT_QUEUE_CAPACITY,
        )
    }
}

fn has<F: Fn(&VerifyError) -> bool>(errs: &[VerifyError], f: F) -> bool {
    errs.iter().any(f)
}

// ------------------------------------------------------------ properties

#[test]
fn random_placed_plans_verify_clean_and_deadlock_free() {
    let topo = Topology::disaggregated(&DisaggregatedConfig::default());
    let gens = MutGen::new(&topo);
    check("verify-random-plans-clean", 64, |gen: &mut Gen| {
        let g = gens.compile(gen, &topo, None);
        g.verify(Some(&topo))
            .expect("compiled graph verifies clean");
        let r = deadlock::analyze(&g);
        assert!(r.is_deadlock_free(), "deadlock findings: {:?}", r.findings);
    });
}

#[test]
fn mutation_swapped_route_is_rejected() {
    let topo = Topology::disaggregated(&DisaggregatedConfig::default());
    let gens = MutGen::new(&topo);
    check("verify-mut-swapped-route", 32, |gen: &mut Gen| {
        let mut g = gens.compile(gen, &topo, None);
        // Swap in a route between two unrelated adjacent devices.
        let ssd = topo.expect_device("storage.ssd");
        let snic = topo.expect_device("storage.nic");
        let bogus = topo.route(ssd, snic).expect("ssd and its nic are adjacent");
        let fabric: Vec<usize> = g
            .edges
            .iter()
            .filter(|e| {
                matches!(e.kind, EdgeKind::Fabric { .. })
                    && !(e.from_device == Some(ssd) && e.to_device == Some(snic))
            })
            .map(|e| e.id)
            .collect();
        let victim = *gen.pick(&fabric);
        g.edges[victim].kind = EdgeKind::Fabric { route: Some(bogus) };
        let errs = g.verify(Some(&topo)).expect_err("swapped route must fail");
        assert!(
            has(
                &errs,
                |e| matches!(e, VerifyError::RouteMismatch { edge, .. } if *edge == victim)
            ),
            "expected RouteMismatch for edge {victim}, got {errs:?}"
        );
    });
}

#[test]
fn mutation_illegal_placement_is_rejected() {
    let topo = Topology::disaggregated(&DisaggregatedConfig::default());
    let gens = MutGen::new(&topo);
    check("verify-mut-illegal-placement", 32, |gen: &mut Gen| {
        let mut g = gens.compile(gen, &topo, None);
        // Move the root pipeline's breaker onto a streaming device that
        // cannot host unbounded state.
        let nic = topo.expect_device("compute0.nic");
        let root = g.root;
        let op = g.pipelines[root].ops.last_mut().expect("breaker at tip");
        op.device = Some(nic);
        let errs = g
            .verify(Some(&topo))
            .expect_err("illegal placement must fail");
        assert!(
            has(&errs, |e| matches!(e, VerifyError::IllegalPlacement { .. })),
            "expected IllegalPlacement, got {errs:?}"
        );
    });
}

#[test]
fn mutation_dropped_join_build_is_rejected() {
    let topo = Topology::disaggregated(&DisaggregatedConfig::default());
    let gens = MutGen::new(&topo);
    check("verify-mut-dropped-join-build", 32, |gen: &mut Gen| {
        let mut g = gens.compile(gen, &topo, Some(true));
        // Sever every probe's reference to its build edge.
        for p in &mut g.pipelines {
            for op in &mut p.ops {
                op.build_edge = None;
            }
        }
        let errs = g
            .verify(Some(&topo))
            .expect_err("dropped join build must fail");
        assert!(
            has(&errs, |e| matches!(e, VerifyError::MissingJoinBuild { .. })),
            "expected MissingJoinBuild, got {errs:?}"
        );
        assert!(
            has(&errs, |e| matches!(
                e,
                VerifyError::DanglingJoinBuild { .. }
            )),
            "expected DanglingJoinBuild, got {errs:?}"
        );
    });
}

#[test]
fn mutation_zero_capacity_is_rejected_by_verify_and_deadlock() {
    let topo = Topology::disaggregated(&DisaggregatedConfig::default());
    let gens = MutGen::new(&topo);
    check("verify-mut-zero-capacity", 32, |gen: &mut Gen| {
        let mut g = gens.compile(gen, &topo, None);
        let fabric: Vec<usize> = g
            .edges
            .iter()
            .filter(|e| matches!(e.kind, EdgeKind::Fabric { .. }))
            .map(|e| e.id)
            .collect();
        let victim = *gen.pick(&fabric);
        g.edges[victim].queue_capacity = 0;
        let errs = g.verify(Some(&topo)).expect_err("zero capacity must fail");
        assert!(
            has(
                &errs,
                |e| matches!(e, VerifyError::ZeroCapacity { edge } if *edge == victim)
            ),
            "expected ZeroCapacity for edge {victim}, got {errs:?}"
        );
        // The credit-flow analysis independently rejects the same graph.
        let r = deadlock::analyze(&g);
        assert!(
            r.findings.iter().any(
                |f| matches!(f, deadlock::DeadlockFinding::ZeroCapacity { edge } if *edge == victim)
            ),
            "deadlock analysis missed the zero-capacity channel: {:?}",
            r.findings
        );
    });
}

#[test]
fn mutation_broken_codec_pair_is_rejected() {
    use rheo::codec::edge::EdgeEncoding;
    use rheo::fabric::OpClass;
    let topo = Topology::disaggregated(&DisaggregatedConfig::default());
    let gens = MutGen::new(&topo);
    check("verify-mut-broken-codec-pair", 32, |gen: &mut Gen| {
        let mut g = gens.compile(gen, &topo, None);
        // Fabric edges whose endpoints can legally host the codec pair.
        let eligible: Vec<usize> = g
            .edges
            .iter()
            .filter(|e| {
                matches!(e.kind, EdgeKind::Fabric { .. })
                    && e.from_device
                        .is_some_and(|d| topo.device(d).profile.supports(OpClass::Compress))
                    && e.to_device
                        .is_some_and(|d| topo.device(d).profile.supports(OpClass::Decompress))
            })
            .map(|e| e.id)
            .collect();
        if eligible.is_empty() {
            return; // all-local placement this round; nothing to mutate
        }
        let victim = *gen.pick(&eligible);
        let encoding = *gen.pick(&[
            EdgeEncoding::Columnar,
            EdgeEncoding::Lz,
            EdgeEncoding::ColumnarLz,
        ]);
        g.set_edge_encoding(victim, encoding, 0.5);
        g.verify(Some(&topo))
            .expect("paired codec stages verify clean");
        // Break the pair one of three ways; verify must name the edge.
        match gen.usize_in(0, 2) {
            0 => g.edges[victim].decompress = None,
            1 => {
                let c = g.edges[victim].compress.as_mut().expect("compress stage");
                c.ratio = 0.25; // no longer equal to the decompress ratio
            }
            _ => g.edges[victim].encoding = EdgeEncoding::Plain,
        }
        let errs = g
            .verify(Some(&topo))
            .expect_err("broken codec pair must fail");
        assert!(
            has(
                &errs,
                |e| matches!(e, VerifyError::CodecPairingBroken { edge, .. } if *edge == victim)
            ),
            "expected CodecPairingBroken for edge {victim}, got {errs:?}"
        );
    });
}

#[test]
fn mutation_schema_break_at_cut_is_rejected() {
    let topo = Topology::disaggregated(&DisaggregatedConfig::default());
    let gens = MutGen::new(&topo);
    check("verify-mut-schema-break", 32, |gen: &mut Gen| {
        // Join-free plans: the root pipeline's first op is then always a
        // breaker fed over a cut, so a mutation target always exists.
        let mut g = gens.compile(gen, &topo, Some(false));
        // Declare a wrong input layout on the first op of some pipeline fed
        // over a cut (breakers re-declare their input schema there).
        let wrong = Schema::new(vec![Field::new("id", DataType::Float64)]).into_ref();
        use rheo::core::pipeline::OperatorSpec;
        let candidates: Vec<usize> = g
            .edges
            .iter()
            .filter(|e| {
                g.pipelines[e.to].ops.first().is_some_and(|op| {
                    matches!(
                        op.spec,
                        OperatorSpec::Sort { .. }
                            | OperatorSpec::TopK { .. }
                            | OperatorSpec::Filter { .. }
                            | OperatorSpec::Aggregate { .. }
                    )
                })
            })
            .map(|e| e.to)
            .collect();
        let victim = *gen.pick(&candidates);
        match &mut g.pipelines[victim].ops[0].spec {
            OperatorSpec::Sort { input_schema, .. }
            | OperatorSpec::TopK { input_schema, .. }
            | OperatorSpec::Filter { input_schema, .. }
            | OperatorSpec::Aggregate { input_schema, .. } => *input_schema = wrong,
            other => panic!("unexpected op {other:?}"),
        }
        let errs = g.verify(Some(&topo)).expect_err("schema break must fail");
        assert!(
            has(&errs, |e| matches!(e, VerifyError::SchemaMismatch { .. })),
            "expected SchemaMismatch, got {errs:?}"
        );
    });
}

// --------------------------------------------------- streaming mutations
// Sensitivity of the streaming verify rules: each single mutation of a
// clean windowed-stream graph — dropped punctuation, forged punctuation,
// a window keyed on a missing or non-timestamp column, an unbounded
// source under a blocking breaker or a join build — is rejected with the
// expected typed variant.

mod streaming {
    use super::*;
    use rheo::core::ops::AggMode;
    use rheo::core::pipeline::{EdgeRole, OperatorSpec, PipelineSource};
    use rheo::core::streaming::{windowed_stream_plan, StreamSourceSpec, WindowSpec};

    /// A random bounded windowed-stream plan with the NIC-Rx placement
    /// (source + partial window on the NIC, merge on the CPU) so the
    /// partial->merge cut is a punctuated fabric Input edge.
    fn stream_graph(gen: &mut Gen, topo: &Topology) -> PipelineGraph {
        let nic = topo.expect_device("compute0.nic");
        let cpu = topo.expect_device("compute0.cpu");
        let spec = StreamSourceSpec {
            seed: gen.u64(),
            rows_per_batch: gen.usize_in(8, 64),
            batches: Some(gen.usize_in(2, 8) as u64),
            sensors: gen.usize_in(1, 6) as u64,
            start_ts: gen.i64_in(-32, 32),
            punct_every: gen.usize_in(1, 4) as u64,
        };
        let size = gen.i64_in(8, 64);
        let window = if gen.bool() {
            WindowSpec::tumbling(size)
        } else {
            WindowSpec::sliding(size, gen.i64_in(1, size))
        };
        let plan = windowed_stream_plan(
            &spec,
            window,
            vec!["sensor".into()],
            vec![AggCall::count_star("n")],
            gen.usize_in(1, 64),
            Some(nic),
            Some(nic),
            Some(cpu),
        )
        .expect("windowed stream plan");
        PipelineGraph::compile(&plan, None, Some(topo), DEFAULT_QUEUE_CAPACITY)
    }

    #[test]
    fn random_stream_graphs_verify_clean() {
        let topo = Topology::disaggregated(&DisaggregatedConfig::default());
        check("verify-stream-clean", 32, |gen: &mut Gen| {
            let g = stream_graph(gen, &topo);
            g.verify(Some(&topo)).expect("clean streaming graph");
            let r = deadlock::analyze(&g);
            assert!(r.is_deadlock_free(), "{:?}", r.findings);
        });
    }

    #[test]
    fn mutation_dropped_punctuation_is_rejected() {
        let topo = Topology::disaggregated(&DisaggregatedConfig::default());
        check("verify-mut-dropped-punctuation", 32, |gen: &mut Gen| {
            let mut g = stream_graph(gen, &topo);
            let punctuated: Vec<usize> = g
                .edges
                .iter()
                .filter(|e| e.role == EdgeRole::Input && e.punctuated)
                .map(|e| e.id)
                .collect();
            let victim = *gen.pick(&punctuated);
            g.edges[victim].punctuated = false;
            let errs = g
                .verify(Some(&topo))
                .expect_err("dropped punctuation must fail");
            assert!(
                has(
                    &errs,
                    |e| matches!(e, VerifyError::PunctuationDropped { edge } if *edge == victim)
                ),
                "expected PunctuationDropped for edge {victim}, got {errs:?}"
            );
        });
    }

    #[test]
    fn mutation_forged_punctuation_is_rejected() {
        // Punctuation on an edge whose producer spine has no stream
        // source, or on a non-Input edge, is bookkeeping corruption.
        let topo = Topology::disaggregated(&DisaggregatedConfig::default());
        let gens = MutGen::new(&topo);
        check("verify-mut-forged-punctuation", 32, |gen: &mut Gen| {
            let mut g = gens.compile(gen, &topo, Some(true));
            let victim = *gen.pick(&g.edges.iter().map(|e| e.id).collect::<Vec<_>>());
            g.edges[victim].punctuated = true;
            let errs = g
                .verify(Some(&topo))
                .expect_err("forged punctuation must fail");
            assert!(
                has(&errs, |e| matches!(e, VerifyError::Malformed { .. })),
                "expected Malformed, got {errs:?}"
            );
        });
    }

    #[test]
    fn mutation_window_on_non_timestamp_column_is_rejected() {
        let topo = Topology::disaggregated(&DisaggregatedConfig::default());
        check(
            "verify-mut-window-without-timestamp",
            32,
            |gen: &mut Gen| {
                let mut g = stream_graph(gen, &topo);
                // "level" exists but is Utf8; "ghost" does not exist at all.
                let column = if gen.bool() { "level" } else { "ghost" };
                let mut mutated = false;
                for p in &mut g.pipelines {
                    for op in &mut p.ops {
                        if let OperatorSpec::WindowAggregate { ts_col, mode, .. } = &mut op.spec {
                            if !matches!(mode, AggMode::Merge) && !mutated {
                                *ts_col = column.to_string();
                                mutated = true;
                            }
                        }
                    }
                }
                assert!(mutated, "plan carries a partial window op");
                let errs = g
                    .verify(Some(&topo))
                    .expect_err("non-timestamp window key must fail");
                assert!(
                    has(&errs, |e| matches!(
                        e,
                        VerifyError::WindowWithoutTimestamp { column: c, .. } if c == column
                    )),
                    "expected WindowWithoutTimestamp({column}), got {errs:?}"
                );
            },
        );
    }

    #[test]
    fn mutation_unhorizoned_source_under_breaker_is_rejected() {
        // A blocking aggregate over a *bounded* stream is legal; removing
        // the horizon (the single mutation) makes it an UnboundedBreaker.
        let topo = Topology::disaggregated(&DisaggregatedConfig::default());
        let nic = topo.expect_device("compute0.nic");
        let cpu = topo.expect_device("compute0.cpu");
        check("verify-mut-unbounded-breaker", 32, |gen: &mut Gen| {
            let spec = StreamSourceSpec {
                seed: gen.u64(),
                batches: Some(gen.usize_in(1, 6) as u64),
                ..StreamSourceSpec::default()
            };
            let scan = PhysNode::StreamScan {
                spec,
                schema: StreamSourceSpec::schema(),
                device: Some(nic),
            };
            let plan = PhysicalPlan::new(
                PhysNode::Aggregate {
                    input: Box::new(scan),
                    group_by: vec!["sensor".into()],
                    aggs: vec![AggCall::count_star("n")],
                    mode: AggMode::Final,
                    final_schema: Schema::new(vec![
                        Field::new("sensor", DataType::Int64),
                        Field::nullable("n", DataType::Int64),
                    ])
                    .into_ref(),
                    device: Some(cpu),
                },
                "stream-breaker",
            );
            let mut g = PipelineGraph::compile(&plan, None, Some(&topo), DEFAULT_QUEUE_CAPACITY);
            g.verify(Some(&topo))
                .expect("bounded stream under a breaker is legal");

            for p in &mut g.pipelines {
                if let PipelineSource::Stream { spec, .. } = &mut p.source {
                    spec.batches = None;
                }
            }
            let errs = g
                .verify(Some(&topo))
                .expect_err("unbounded breaker must fail");
            assert!(
                has(&errs, |e| matches!(e, VerifyError::UnboundedBreaker { .. })),
                "expected UnboundedBreaker, got {errs:?}"
            );
        });
    }

    #[test]
    fn mutation_unhorizoned_join_build_is_rejected() {
        // An unbounded stream on a hash-join build side can never finish
        // building: StreamingUnsupported.
        let topo = Topology::disaggregated(&DisaggregatedConfig::default());
        let nic = topo.expect_device("compute0.nic");
        let cpu = topo.expect_device("compute0.cpu");
        check("verify-mut-unbounded-join-build", 32, |gen: &mut Gen| {
            let build = PhysNode::StreamScan {
                spec: StreamSourceSpec {
                    seed: gen.u64(),
                    batches: Some(gen.usize_in(1, 4) as u64),
                    ..StreamSourceSpec::default()
                },
                schema: StreamSourceSpec::schema(),
                device: Some(nic),
            };
            let probe = PhysNode::Values {
                batches: vec![batch_of(vec![(
                    "sensor_id",
                    Column::from_i64((0..gen.i64_in(1, 8)).collect()),
                )])],
                schema: Schema::new(vec![Field::new("sensor_id", DataType::Int64)]).into_ref(),
                device: Some(cpu),
            };
            let mut fields: Vec<Field> = build.schema().fields().to_vec();
            fields.extend(probe.schema().fields().to_vec());
            let plan = PhysicalPlan::new(
                PhysNode::HashJoin {
                    build: Box::new(build),
                    probe: Box::new(probe),
                    on: vec![("sensor".into(), "sensor_id".into())],
                    join_type: JoinType::Inner,
                    schema: Schema::new(fields).into_ref(),
                    device: Some(cpu),
                },
                "stream-build",
            );
            let mut g = PipelineGraph::compile(&plan, None, Some(&topo), DEFAULT_QUEUE_CAPACITY);
            g.verify(Some(&topo))
                .expect("bounded stream build is legal");

            for p in &mut g.pipelines {
                if let PipelineSource::Stream { spec, .. } = &mut p.source {
                    spec.batches = None;
                }
            }
            let errs = g
                .verify(Some(&topo))
                .expect_err("unbounded join build must fail");
            assert!(
                has(&errs, |e| matches!(
                    e,
                    VerifyError::StreamingUnsupported { .. }
                )),
                "expected StreamingUnsupported, got {errs:?}"
            );
        });
    }
}
