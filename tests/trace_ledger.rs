//! Metrics-vs-ledger consistency: the byte totals in the trace's fabric
//! link lanes must equal the movement ledger's bytes-per-link accounting.
//!
//! The ledger charges every cross-device batch to a (producer, consumer)
//! edge and maps edges onto physical links via shortest routes
//! ([`MovementLedger::per_link`]); `MovementLedger::trace_links` replays
//! the same traffic into link lanes of a tracer. Summing the `bytes=`
//! annotations per lane must reproduce `per_link` exactly — otherwise the
//! trace and the paper's headline metric disagree.

use std::collections::BTreeMap;

use rheo::bench::workload;
use rheo::core::session::Session;
use rheo::sim::Tracer;

fn session(rows: usize) -> Session {
    let s = Session::in_memory().expect("session");
    s.create_table("lineitem", &[workload::lineitem(rows, 42)])
        .expect("load lineitem");
    s.create_table("orders", &[workload::orders(rows / 4, 42)])
        .expect("load orders");
    s
}

/// Sum `bytes=` annotations per link lane in the sim timeline.
fn bytes_per_lane(tracer: &Tracer) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in tracer.sim_timeline().lines() {
        let mut cols = line.split('\t');
        let lane = cols.next().expect("lane column");
        if !lane.starts_with("link.") {
            continue;
        }
        for col in cols {
            if let Some(v) = col.strip_prefix("bytes=") {
                *out.entry(lane.to_string()).or_insert(0) += v.parse::<u64>().expect("bytes value");
            }
        }
    }
    out
}

fn assert_trace_matches_ledger(query: &str, variant: &str, rows: usize) {
    let s = session(rows);
    let logical = s.logical_plan(query).expect("parse");
    let variants = s.variants(&logical).expect("variants");
    let v = variants
        .iter()
        .find(|v| v.plan.variant == variant)
        .unwrap_or_else(|| panic!("variant {variant} not produced for {query}"));
    let result = s.execute_plan(&v.plan).expect("runs");
    assert!(
        result.ledger.cross_device_bytes() > 0,
        "{variant} moved nothing cross-device; the test would be vacuous"
    );

    let tracer = Tracer::new();
    result.ledger.trace_links(s.topology(), &tracer);
    tracer.validate().expect("replayed trace well-formed");
    let from_trace = bytes_per_lane(&tracer);

    // Rebuild the ledger's per-link view keyed by the trace's lane names.
    let topo = s.topology();
    let mut from_ledger: BTreeMap<String, u64> = BTreeMap::new();
    for (link, bytes) in result.ledger.per_link(topo) {
        let spec = topo.link(link);
        let name = format!(
            "link.{}-{}.{}",
            topo.device(spec.a).name,
            topo.device(spec.b).name,
            spec.tech.name()
        );
        *from_ledger.entry(name).or_insert(0) += bytes;
    }

    assert_eq!(
        from_trace, from_ledger,
        "{variant} on {query}: trace link bytes diverge from the ledger"
    );
    assert_eq!(result.ledger.unroutable_bytes(topo), 0);
}

/// E2's shape: a selective pushed-down scan — traffic flows storage → CPU.
#[test]
fn e2_pushdown_trace_bytes_match_ledger() {
    assert_trace_matches_ledger(
        "SELECT l_orderkey FROM lineitem WHERE l_orderkey < 500",
        "storage-pushdown",
        20_000,
    );
}

/// E2's baseline: the CPU-centric plan ships whole columns up.
#[test]
fn e2_cpu_only_trace_bytes_match_ledger() {
    assert_trace_matches_ledger(
        "SELECT l_orderkey FROM lineitem WHERE l_orderkey < 500",
        "cpu-only",
        20_000,
    );
}

/// E5's shape: a join whose build and probe sides cross the fabric.
#[test]
fn e5_join_trace_bytes_match_ledger() {
    assert_trace_matches_ledger(
        "SELECT o_priority, COUNT(*) AS n FROM orders \
         JOIN lineitem ON o_orderkey = l_orderkey \
         WHERE l_quantity > 40 GROUP BY o_priority",
        "cpu-only",
        8_000,
    );
}
