//! Property tests for the serving layer's fair-share credit scheduler.
//!
//! Run with the in-tree deterministic harness (`rheo::check`): seeds are
//! derived from each property's name, and any failing seed is pinned under
//! `proptest-regressions/` so failures replay bit-for-bit.
//!
//! Properties:
//! - under permanent backlog, per-tenant credit shares converge to the
//!   weight vector within a bounded measurement window;
//! - no tenant starves: every backlogged tenant receives a grant within a
//!   bounded number of credit dispensations, whatever the weights;
//! - arbitrary valid operation interleavings (grant/use/complete/yield/
//!   finish) leave the credit ledger balanced once every query finishes.

use rheo::check::check;
use rheo::serve::sched::{FairScheduler, QueryId};
use rheo::serve::tenant::TenantSpec;

/// Build a scheduler with `slots` permanently backlogged queries per
/// tenant — enough for any one tenant to fill the whole device, so shares
/// are decided by the scheduler, not by per-query concurrency limits (a
/// query runs one batch at a time).
fn backlogged(weights: &[u32], slots: u64, quantum: u64) -> (FairScheduler, Vec<QueryId>) {
    let mut sched = FairScheduler::new(slots, quantum);
    let mut queries = Vec::new();
    for (i, &w) in weights.iter().enumerate() {
        let t = sched.register_tenant(TenantSpec::new(format!("t{i}"), w));
        for _ in 0..slots.max(1) {
            queries.push(sched.begin_query(t));
        }
    }
    for &q in &queries {
        sched.request(q);
    }
    (sched, queries)
}

/// Drive `rounds` batch completions while keeping every tenant backlogged.
/// Batch starts and completions interleave deterministically (round-robin
/// over the in-flight set), so only the scheduler decides who advances.
fn drive(sched: &mut FairScheduler, queries: &[QueryId], rounds: usize) {
    let n = queries.len();
    for round in 0..rounds {
        for &q in queries {
            if sched.held(q) > 0 && !sched.in_flight(q) {
                sched.use_credit(q);
                // Rejoin the queue immediately: permanent backlog.
                sched.request(q);
            }
        }
        for k in 0..n {
            let q = queries[(round + k) % n];
            if sched.in_flight(q) {
                sched.complete_batch(q);
                break;
            }
        }
    }
}

#[test]
fn shares_converge_to_weights_under_backlog() {
    check("serve-fair-share-converges", 32, |g| {
        let tenants = g.usize_in(2, 5);
        let weights: Vec<u32> = g.vec_of(tenants, |g| g.usize_in(1, 8) as u32);
        let slots = g.usize_in(1, 4) as u64;
        let quantum = g.usize_in(1, 3) as u64;
        let (mut sched, queries) = backlogged(&weights, slots, quantum);

        // Warm up past the initial transient, then measure over a window.
        drive(&mut sched, &queries, 300);
        let before = sched.granted_by_tenant();
        let window = 3_000usize;
        drive(&mut sched, &queries, window);
        let after = sched.granted_by_tenant();

        let deltas: Vec<u64> = (0..tenants)
            .map(|i| {
                let name = format!("t{i}");
                after[&name] - before[&name]
            })
            .collect();
        let total: u64 = deltas.iter().sum();
        let weight_total: u32 = weights.iter().sum();
        assert!(total > 0, "scheduler made no progress");
        for (i, (&d, &w)) in deltas.iter().zip(&weights).enumerate() {
            let got = d as f64 / total as f64;
            let want = f64::from(w) / f64::from(weight_total);
            assert!(
                (got - want).abs() < 0.05,
                "tenant t{i} (weight {w}): share {got:.3} vs {want:.3} \
                 (weights {weights:?}, slots {slots}, quantum {quantum})"
            );
        }

        for &q in &queries {
            sched.finish_query(q);
        }
        assert!(sched.ledger().check_balanced().is_ok());
    });
}

#[test]
fn no_tenant_starves() {
    check("serve-no-starvation", 32, |g| {
        let tenants = g.usize_in(2, 6);
        // Adversarial weights: one heavy tenant dwarfing the rest.
        let mut weights: Vec<u32> = g.vec_of(tenants, |g| g.usize_in(1, 2) as u32);
        weights[0] = g.usize_in(50, 500) as u32;
        let slots = g.usize_in(1, 3) as u64;
        let (mut sched, queries) = backlogged(&weights, slots, 1);

        drive(&mut sched, &queries, 100);
        let before = sched.granted_by_tenant();
        // A weight-1 tenant among total weight W must be served within
        // ~W credits; give the window 4x slack.
        let weight_total: u32 = weights.iter().sum();
        let window = (weight_total as usize) * 4;
        drive(&mut sched, &queries, window);
        let after = sched.granted_by_tenant();

        for i in 0..tenants {
            let name = format!("t{i}");
            assert!(
                after[&name] > before[&name],
                "tenant {name} (weight {}) starved over a {window}-credit \
                 window (weights {weights:?}, slots {slots})",
                weights[i]
            );
        }

        for &q in &queries {
            sched.finish_query(q);
        }
        assert!(sched.ledger().check_balanced().is_ok());
    });
}

#[test]
fn arbitrary_interleavings_conserve_credits() {
    check("serve-ledger-conservation", 64, |g| {
        let tenants = g.usize_in(1, 4);
        let mut sched = FairScheduler::new(g.usize_in(1, 6) as u64, g.usize_in(1, 3) as u64);
        let ids: Vec<_> = (0..tenants)
            .map(|i| {
                sched.register_tenant(
                    TenantSpec::new(format!("t{i}"), g.usize_in(1, 8) as u32)
                        .with_priority(g.usize_in(0, 2) as u8),
                )
            })
            .collect();
        let mut live: Vec<QueryId> = Vec::new();
        for _ in 0..g.usize_in(20, 200) {
            match g.usize_in(0, 5) {
                0 => {
                    let t = *g.pick(&ids);
                    let q = sched.begin_query(t);
                    sched.request(q);
                    live.push(q);
                }
                1 => {
                    if let Some(&q) = live.first() {
                        sched.request(q);
                    }
                }
                2 => {
                    if let Some(&q) = live
                        .iter()
                        .find(|&&q| sched.held(q) > 0 && !sched.in_flight(q))
                    {
                        sched.use_credit(q);
                    }
                }
                3 => {
                    if let Some(&q) = live.iter().find(|&&q| sched.in_flight(q)) {
                        sched.complete_batch(q);
                    }
                }
                4 => {
                    if let Some(&q) = live.iter().find(|&&q| sched.held(q) > 0) {
                        sched.yield_credits(q);
                        sched.request(q);
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let idx = g.usize_in(0, live.len() - 1);
                        let q = live.swap_remove(idx);
                        sched.finish_query(q);
                    }
                }
            }
        }
        for q in live {
            sched.finish_query(q);
        }
        assert!(
            sched.ledger().check_balanced().is_ok(),
            "interleaving left the ledger unbalanced: {:?}",
            sched.ledger().check_balanced()
        );
        assert_eq!(sched.ledger().total_outstanding(), 0);
    });
}
