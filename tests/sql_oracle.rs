//! Randomized SQL correctness against an independent oracle.
//!
//! The [`rheo::check`] harness generates filter/aggregate queries; the
//! expected answer is computed by plain Rust iteration over the raw rows
//! (no engine code in the oracle path). Every query runs through the full
//! stack — parser, rewrites, placement, smart storage, push executor —
//! with the *best* variant the optimizer picked, so pushdown correctness
//! is continuously cross-checked.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use rheo::check::{check, Gen};
use rheo::core::session::Session;
use rheo::data::batch::batch_of;
use rheo::data::{Column, Scalar};

const ROWS: usize = 777;

/// Raw row model the oracle iterates over.
#[derive(Clone)]
struct RawRow {
    a: i64,
    b: Option<i64>,
    g: String,
    f: f64,
}

fn raw_rows() -> Vec<RawRow> {
    (0..ROWS as i64)
        .map(|i| RawRow {
            a: i,
            b: if i % 10 == 3 { None } else { Some(i % 50) },
            g: format!("g{}", i % 7),
            f: (i % 13) as f64 * 0.5,
        })
        .collect()
}

fn shared_session() -> &'static Session {
    static SESSION: OnceLock<Session> = OnceLock::new();
    SESSION.get_or_init(|| {
        let rows = raw_rows();
        let batch = batch_of(vec![
            ("a", Column::from_i64(rows.iter().map(|r| r.a).collect())),
            (
                "b",
                Column::from_opt_i64(&rows.iter().map(|r| r.b).collect::<Vec<_>>()),
            ),
            (
                "g",
                Column::from_strs(&rows.iter().map(|r| r.g.clone()).collect::<Vec<_>>()),
            ),
            ("f", Column::from_f64(rows.iter().map(|r| r.f).collect())),
        ]);
        let session = Session::in_memory().expect("session");
        session.create_table("t", &[batch]).expect("load");
        session
    })
}

#[derive(Debug, Clone, Copy)]
enum WherePred {
    ALt(i64),
    ABetween(i64, i64),
    BGe(i64),
    GEq(usize),
    BNotNull,
}

impl WherePred {
    fn arbitrary(g: &mut Gen) -> WherePred {
        match g.usize_in(0, 4) {
            0 => WherePred::ALt(g.i64_in(0, 799)),
            1 => {
                let lo = g.i64_in(0, 799);
                WherePred::ABetween(lo, lo + g.i64_in(0, 199))
            }
            2 => WherePred::BGe(g.i64_in(0, 54)),
            3 => WherePred::GEq(g.usize_in(0, 7)),
            _ => WherePred::BNotNull,
        }
    }

    fn sql(&self) -> String {
        match self {
            WherePred::ALt(x) => format!("a < {x}"),
            WherePred::ABetween(lo, hi) => format!("a BETWEEN {lo} AND {hi}"),
            WherePred::BGe(x) => format!("b >= {x}"),
            WherePred::GEq(i) => format!("g = 'g{i}'"),
            WherePred::BNotNull => "b IS NOT NULL".to_string(),
        }
    }

    fn matches(&self, row: &RawRow) -> bool {
        match self {
            WherePred::ALt(x) => row.a < *x,
            WherePred::ABetween(lo, hi) => row.a >= *lo && row.a <= *hi,
            WherePred::BGe(x) => row.b.is_some_and(|b| b >= *x),
            WherePred::GEq(i) => row.g == format!("g{i}"),
            WherePred::BNotNull => row.b.is_some(),
        }
    }
}

#[test]
fn filtered_count_matches_oracle() {
    check("filtered_count_matches_oracle", 48, |g| {
        let p1 = WherePred::arbitrary(g);
        let p2 = WherePred::arbitrary(g);
        let session = shared_session();
        let query = format!(
            "SELECT COUNT(*) AS n FROM t WHERE {} AND {}",
            p1.sql(),
            p2.sql()
        );
        let result = session
            .sql(&query)
            .unwrap_or_else(|e| panic!("{query}: {e}"));
        let expected = raw_rows()
            .iter()
            .filter(|r| p1.matches(r) && p2.matches(r))
            .count() as i64;
        assert_eq!(
            result.batch.row(0)[0].clone(),
            Scalar::Int(expected),
            "{query}"
        );
    });
}

#[test]
fn grouped_aggregates_match_oracle() {
    check("grouped_aggregates_match_oracle", 48, |g| {
        let p = WherePred::arbitrary(g);
        let session = shared_session();
        let query = format!(
            "SELECT g, COUNT(*) AS n, SUM(b) AS sb, MIN(a) AS lo, MAX(a) AS hi, \
             AVG(f) AS af FROM t WHERE {} GROUP BY g",
            p.sql()
        );
        let result = session
            .sql(&query)
            .unwrap_or_else(|e| panic!("{query}: {e}"));

        // Oracle: group manually.
        #[derive(Default)]
        struct Acc {
            n: i64,
            sb: Option<i64>,
            lo: Option<i64>,
            hi: Option<i64>,
            fsum: f64,
            fcount: i64,
        }
        let mut groups: BTreeMap<String, Acc> = BTreeMap::new();
        for r in raw_rows().iter().filter(|r| p.matches(r)) {
            let acc = groups.entry(r.g.clone()).or_default();
            acc.n += 1;
            if let Some(b) = r.b {
                acc.sb = Some(acc.sb.unwrap_or(0) + b);
            }
            acc.lo = Some(acc.lo.map_or(r.a, |lo: i64| lo.min(r.a)));
            acc.hi = Some(acc.hi.map_or(r.a, |hi: i64| hi.max(r.a)));
            acc.fsum += r.f;
            acc.fcount += 1;
        }

        assert_eq!(result.batch.rows(), groups.len(), "{query}");
        for row_idx in 0..result.batch.rows() {
            let row = result.batch.row(row_idx);
            let g_name = row[0].as_str().expect("group name").to_string();
            let acc = groups
                .get(&g_name)
                .unwrap_or_else(|| panic!("{query}: extra group {g_name}"));
            assert_eq!(row[1].clone(), Scalar::Int(acc.n), "count for {g_name}");
            let expect_sb = acc.sb.map_or(Scalar::Null, Scalar::Int);
            assert_eq!(row[2].clone(), expect_sb, "sum for {g_name}");
            assert_eq!(
                row[3].clone(),
                acc.lo.map_or(Scalar::Null, Scalar::Int),
                "min"
            );
            assert_eq!(
                row[4].clone(),
                acc.hi.map_or(Scalar::Null, Scalar::Int),
                "max"
            );
            let avg = row[5].as_float_lossy().expect("avg is numeric");
            let expect_avg = acc.fsum / acc.fcount as f64;
            assert!(
                (avg - expect_avg).abs() < 1e-9,
                "avg for {g_name}: {avg} vs {expect_avg}"
            );
        }
    });
}

#[test]
fn topk_matches_oracle() {
    check("topk_matches_oracle", 48, |g| {
        let p = WherePred::arbitrary(g);
        let k = g.i64_in(1, 39) as u64;
        let asc = g.bool();
        let session = shared_session();
        let dir = if asc { "ASC" } else { "DESC" };
        let query = format!(
            "SELECT a, f FROM t WHERE {} ORDER BY f {dir}, a ASC LIMIT {k}",
            p.sql()
        );
        let result = session
            .sql(&query)
            .unwrap_or_else(|e| panic!("{query}: {e}"));

        let mut rows: Vec<(f64, i64)> = raw_rows()
            .iter()
            .filter(|r| p.matches(r))
            .map(|r| (r.f, r.a))
            .collect();
        rows.sort_by(|x, y| {
            let ord = x.0.total_cmp(&y.0);
            let ord = if asc { ord } else { ord.reverse() };
            ord.then(x.1.cmp(&y.1))
        });
        rows.truncate(k as usize);

        assert_eq!(result.batch.rows(), rows.len(), "{query}");
        for (i, (f, a)) in rows.iter().enumerate() {
            assert_eq!(result.batch.row(i)[0].clone(), Scalar::Int(*a), "{query}");
            assert_eq!(result.batch.row(i)[1].clone(), Scalar::Float(*f), "{query}");
        }
    });
}

#[test]
fn projection_arithmetic_matches_oracle() {
    check("projection_arithmetic_matches_oracle", 48, |g| {
        let p = WherePred::arbitrary(g);
        let m = g.i64_in(1, 9);
        let session = shared_session();
        let query = format!(
            "SELECT a * {m} + 1 AS x FROM t WHERE {} ORDER BY x LIMIT 20",
            p.sql()
        );
        let result = session
            .sql(&query)
            .unwrap_or_else(|e| panic!("{query}: {e}"));
        let mut expected: Vec<i64> = raw_rows()
            .iter()
            .filter(|r| p.matches(r))
            .map(|r| r.a * m + 1)
            .collect();
        expected.sort_unstable();
        expected.truncate(20);
        let got: Vec<i64> = (0..result.batch.rows())
            .map(|i| result.batch.row(i)[0].as_int().unwrap())
            .collect();
        assert_eq!(got, expected, "{query}");
    });
}
